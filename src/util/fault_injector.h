// Deterministic fault injection for exercising error paths.
//
// Error-handling code is only as honest as its tests, and most of the error
// paths in this library (budget trips, allocation limits, I/O failures) are
// hard to reach organically. The FaultInjector lets a test arm exactly one
// failure — "fail the 3rd budget check with DeadlineExceeded" — and drive a
// full evaluation through it deterministically.
//
// The injector is compiled in always and is a no-op unless armed: probe
// sites guard on FaultInjector::AnyArmed(), a single relaxed atomic load,
// before taking the locked slow path. Production code never arms it.
//
// Usage in tests (RAII, disarms on scope exit):
//
//   ScopedFault fault(kFaultSiteIoRead, /*nth=*/3, Status::IOError("boom"));
//   auto graph = ReadGraphFromString(text);   // 3rd line read fails
//   EXPECT_TRUE(graph.status().IsIOError());
//
// Several sites can be armed concurrently (one configuration per site, kept
// in a map): the chaos harness arms `service.swap` alongside `io.read` and
// both fire independently at their own nth probes. Arm(site) replaces only
// that site's configuration; Disarm(site) retires one site, Disarm()
// everything.
//
// Probes are counted per site while armed, so tests can also assert how far
// an evaluation got before the injected failure.

#ifndef MRPA_UTIL_FAULT_INJECTOR_H_
#define MRPA_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace mrpa {

// Canonical probe-site names. Sites are plain strings so subsystems can add
// their own without touching this header.
inline constexpr std::string_view kFaultSiteBudgetCheck = "exec.budget_check";
inline constexpr std::string_view kFaultSiteAlloc = "exec.alloc_probe";
inline constexpr std::string_view kFaultSiteIoRead = "io.read";

class FaultInjector {
 public:
  // The process-wide injector used by all probe sites.
  static FaultInjector& Global();

  // True iff any injector is armed. The fast-path guard: relaxed atomic
  // load, no lock.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Arms `site`: the `nth` (1-based) probe of `site` after this call
  // returns `status`; earlier and later probes return OK. Other sites keep
  // their own configurations — arming a second site does not disturb the
  // first. Re-arming a site replaces its configuration and resets its hit
  // counter (other sites' counters are untouched).
  void Arm(std::string_view site, uint64_t nth, Status status);

  // Disarms every site and resets all hit counters.
  void Disarm();

  // Disarms just `site` (its hit counter included); other armed sites and
  // their counters are untouched. Retiring the last armed site resets the
  // whole census. No-op when `site` is not armed.
  void Disarm(std::string_view site);

  // Number of currently armed sites.
  size_t ArmedSites() const;

  // Returns OK, or the armed status when this probe is the nth hit at the
  // armed site. Called via the AnyArmed() guard; see MRPA_FAULT_PROBE.
  Status Probe(std::string_view site);

  // Probes observed at `site` since the injector was last armed.
  uint64_t Hits(std::string_view site) const;

 private:
  FaultInjector() = default;

  // One armed configuration. `hits` counts probes at the site since it was
  // (re-)armed; sites probed while armed but never armed themselves are
  // counted in hits_ below, so the census covers both.
  struct ArmedSite {
    uint64_t nth = 0;
    Status status;
  };

  static std::atomic<int> armed_count_;

  mutable std::mutex mu_;
  std::map<std::string, ArmedSite, std::less<>> armed_;
  std::map<std::string, uint64_t, std::less<>> hits_;
};

// The probe expression placed in guarded code: free unless armed.
inline Status FaultProbe(std::string_view site) {
  if (!FaultInjector::AnyArmed()) return Status::OK();
  return FaultInjector::Global().Probe(site);
}

// Arms one site on the global injector for the lifetime of the scope.
// Scopes compose: each disarms only its own site, so two ScopedFaults arm
// two sites concurrently. Tests only.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, uint64_t nth, Status status)
      : site_(site) {
    FaultInjector::Global().Arm(site_, nth, std::move(status));
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace mrpa

#endif  // MRPA_UTIL_FAULT_INJECTOR_H_
