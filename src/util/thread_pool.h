// A small work-stealing thread pool for the parallel traversal layer.
//
// Each worker owns a deque: it pops tasks from its own front and, when
// empty, steals from the back of a victim's deque (scanning from its right
// neighbor), so an uneven shard — a hub vertex's whole out-universe, say —
// ends up shared instead of serializing the level. Submission round-robins
// across the deques to seed the initial spread.
//
// ParallelFor(n, fn) is the structured entry point the traversal engine
// uses: it submits one task per index and blocks until all have run, with
// the calling thread draining queued tasks while it waits, so a pool is
// never idle just because its owner is. Tasks must not throw (this
// codebase reports failure through Status values, and the shard ledgers of
// traversal_parallel.cc carry per-shard trip information).
//
// Determinism note: the pool makes no ordering promises — parallel callers
// get determinism from their merge discipline (canonical shard order plus
// the accounting replay of DESIGN.md's "Parallel traversal" section), never
// from scheduling. A pool of one worker still exercises the full
// submit/steal machinery, which is what the thread-count-1 leg of the
// differential harness relies on.

#ifndef MRPA_UTIL_THREAD_POOL_H_
#define MRPA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mrpa {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns `num_threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues one task (round-robin across worker deques). Fire-and-forget;
  // use ParallelFor for structured fork/join.
  void Submit(Task task);

  // Invokes fn(i) for every i in [0, n), distributing across the workers
  // with stealing, and returns once every invocation has finished. The
  // calling thread participates in execution while it waits. Safe to call
  // from multiple threads; must not be called from inside a pool task of
  // this same pool (the nested wait could consume unrelated tasks but the
  // worker count would be down one — it still completes, just slower).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // A process-wide pool sized to the hardware, for callers that do not
  // manage their own. Created on first use.
  static ThreadPool& Shared();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  // Pops a task — own front first, then victims' backs — and runs it.
  // `home` indexes the preferred deque. Returns false if every deque was
  // empty at the time of the scan.
  bool RunOneTask(size_t home);

  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake machinery: `pending_` counts queued-but-unclaimed tasks and
  // is guarded by `idle_mu_` (not atomic — every transition already takes
  // the lock to publish the condition).
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;
  bool stopping_ = false;

  size_t next_queue_ = 0;  // Guarded by idle_mu_; round-robin cursor.
};

}  // namespace mrpa

#endif  // MRPA_UTIL_THREAD_POOL_H_
