#include "util/exec_context.h"

#include <string>

namespace mrpa {

const Status& ExecContext::TripStepBudget() {
  return Trip(Status::ResourceExhausted("step budget exceeded (" +
                                        std::to_string(max_steps_) +
                                        " steps)"));
}

const Status& ExecContext::TripPathBudget() {
  return Trip(Status::ResourceExhausted("path budget exceeded (" +
                                        std::to_string(max_paths_) +
                                        " paths)"));
}

const Status& ExecContext::TripByteBudget() {
  return Trip(Status::ResourceExhausted("memory budget exceeded (" +
                                        std::to_string(max_bytes_) +
                                        " bytes)"));
}

const Status& ExecContext::Poll() {
  if (token_.CancelRequested()) {
    return Trip(Status::Cancelled("evaluation cancelled by caller"));
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    return Trip(Status::DeadlineExceeded("evaluation deadline exceeded"));
  }
  return limit_status_;
}

}  // namespace mrpa
