#include "util/exec_context.h"

#include <string>

#include "obs/obs.h"

namespace mrpa {

static_assert(ExecContext::kNoObsSpan == obs::kNoSpan,
              "ExecContext's span sentinel must match obs::kNoSpan");

std::vector<ExecLimits> ExecLimits::SplitAcross(size_t n) const {
  if (n == 0) n = 1;
  std::vector<ExecLimits> shares(n);
  // Per-dimension: share i gets floor(k/n), plus one unit if i < k % n.
  // Sum over i is exactly k for every n, including n > k (where floor is 0
  // and only the first k shares get their remainder unit).
  auto divide = [n, &shares](std::optional<size_t> ExecLimits::* dim,
                             const std::optional<size_t>& budget) {
    if (!budget.has_value()) return;  // Unlimited stays unlimited.
    const size_t base = *budget / n;
    const size_t extra = *budget % n;
    for (size_t i = 0; i < n; ++i) {
      shares[i].*dim = base + (i < extra ? 1 : 0);
    }
  };
  divide(&ExecLimits::max_paths, max_paths);
  divide(&ExecLimits::max_steps, max_steps);
  divide(&ExecLimits::max_bytes, max_bytes);
  for (size_t i = 0; i < n; ++i) shares[i].timeout = timeout;
  return shares;
}

const Status& ExecContext::TripStepBudget() {
  Trip(Status::ResourceExhausted("step budget exceeded (" +
                                 std::to_string(max_steps_) + " steps)"));
  RecordTripObs(TripKind::kStepBudget);
  return limit_status_;
}

const Status& ExecContext::TripPathBudget() {
  Trip(Status::ResourceExhausted("path budget exceeded (" +
                                 std::to_string(max_paths_) + " paths)"));
  RecordTripObs(TripKind::kPathBudget);
  return limit_status_;
}

const Status& ExecContext::TripByteBudget() {
  Trip(Status::ResourceExhausted("memory budget exceeded (" +
                                 std::to_string(max_bytes_) + " bytes)"));
  RecordTripObs(TripKind::kByteBudget);
  return limit_status_;
}

const Status& ExecContext::TripFault(Status injected) {
  Trip(std::move(injected));
  RecordTripObs(TripKind::kFault);
  return limit_status_;
}

const Status& ExecContext::Poll() {
  if (token_.CancelRequested()) {
    Trip(Status::Cancelled("evaluation cancelled by caller"));
    RecordTripObs(TripKind::kCancelled);
    return limit_status_;
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    Trip(Status::DeadlineExceeded("evaluation deadline exceeded"));
    RecordTripObs(TripKind::kDeadline);
    return limit_status_;
  }
  return limit_status_;
}

void ExecContext::RecordTripObs(TripKind kind) {
  if (obs_ == nullptr) return;
  obs::Metric metric;
  switch (kind) {
    case TripKind::kStepBudget:
      metric = obs::Metric::kExecTripsStepBudget;
      break;
    case TripKind::kPathBudget:
      metric = obs::Metric::kExecTripsPathBudget;
      break;
    case TripKind::kByteBudget:
      metric = obs::Metric::kExecTripsByteBudget;
      break;
    case TripKind::kDeadline:
      metric = obs::Metric::kExecTripsDeadline;
      break;
    case TripKind::kCancelled:
      metric = obs::Metric::kExecTripsCancelled;
      break;
    case TripKind::kFault:
      metric = obs::Metric::kExecTripsFault;
      break;
    default:
      return;
  }
  obs_->Add(metric, 1);
  obs_->AnnotateSpan(obs_span_, limit_status_.message());
}

ExecSpan::ExecSpan(ExecContext& ctx, std::string_view name, int64_t level,
                   int64_t shard) {
  obs::ObsRegistry* registry = ctx.observer();
  if (registry == nullptr) return;
  ctx_ = &ctx;
  prev_ = ctx.obs_span();
  id_ = registry->BeginSpan(name, prev_, level, shard);
  ctx.set_obs_span(id_);
}

ExecSpan::~ExecSpan() {
  if (ctx_ == nullptr) return;
  ctx_->set_obs_span(prev_);
  obs::ObsRegistry* registry = ctx_->observer();
  if (registry != nullptr) registry->EndSpan(id_);
}

void AddExecStatsDelta(obs::ObsRegistry& registry, const ExecStats& before,
                       const ExecStats& after) {
  registry.Add(obs::Metric::kExecStepsExpanded,
               after.steps_expanded - before.steps_expanded);
  registry.Add(obs::Metric::kExecPathsYielded,
               after.paths_yielded - before.paths_yielded);
  registry.Add(obs::Metric::kExecBytesCharged,
               after.bytes_charged - before.bytes_charged);
}

}  // namespace mrpa
