#include "util/exec_context.h"

#include <string>

namespace mrpa {

std::vector<ExecLimits> ExecLimits::SplitAcross(size_t n) const {
  if (n == 0) n = 1;
  std::vector<ExecLimits> shares(n);
  // Per-dimension: share i gets floor(k/n), plus one unit if i < k % n.
  // Sum over i is exactly k for every n, including n > k (where floor is 0
  // and only the first k shares get their remainder unit).
  auto divide = [n, &shares](std::optional<size_t> ExecLimits::* dim,
                             const std::optional<size_t>& budget) {
    if (!budget.has_value()) return;  // Unlimited stays unlimited.
    const size_t base = *budget / n;
    const size_t extra = *budget % n;
    for (size_t i = 0; i < n; ++i) {
      shares[i].*dim = base + (i < extra ? 1 : 0);
    }
  };
  divide(&ExecLimits::max_paths, max_paths);
  divide(&ExecLimits::max_steps, max_steps);
  divide(&ExecLimits::max_bytes, max_bytes);
  for (size_t i = 0; i < n; ++i) shares[i].timeout = timeout;
  return shares;
}

const Status& ExecContext::TripStepBudget() {
  return Trip(Status::ResourceExhausted("step budget exceeded (" +
                                        std::to_string(max_steps_) +
                                        " steps)"));
}

const Status& ExecContext::TripPathBudget() {
  return Trip(Status::ResourceExhausted("path budget exceeded (" +
                                        std::to_string(max_paths_) +
                                        " paths)"));
}

const Status& ExecContext::TripByteBudget() {
  return Trip(Status::ResourceExhausted("memory budget exceeded (" +
                                        std::to_string(max_bytes_) +
                                        " bytes)"));
}

const Status& ExecContext::Poll() {
  if (token_.CancelRequested()) {
    return Trip(Status::Cancelled("evaluation cancelled by caller"));
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    return Trip(Status::DeadlineExceeded("evaluation deadline exceeded"));
  }
  return limit_status_;
}

}  // namespace mrpa
