#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "storage/crc32c.h"

namespace mrpa::net {

namespace {

constexpr uint8_t kMagic[4] = {'M', 'R', 'P', 'W'};
constexpr size_t kCrcOffset = 12;

void PutU8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutBytes(std::vector<uint8_t>& out, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

// Optional u64 as (present, value) — nullopt travels as (0, 0).
void PutOptU64(std::vector<uint8_t>& out, const std::optional<uint64_t>& v) {
  PutU8(out, v.has_value() ? 1 : 0);
  PutU64(out, v.value_or(0));
}

// Sequential little-endian reader over a payload span. Every Read* returns
// false on underrun without touching the output; decoders translate a false
// into kCorruption. Nothing here allocates — allocation happens in the
// decoders, and only AFTER the relevant count has been validated against
// remaining().
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  bool ReadU8(uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool ReadOptU64(std::optional<uint64_t>& v) {
    uint8_t has = 0;
    uint64_t raw = 0;
    if (!ReadU8(has) || !ReadU64(raw)) return false;
    if (has > 1) return false;  // Non-canonical presence byte: hostile.
    if (has == 1) {
      v = raw;
    } else {
      if (raw != 0) return false;  // Absent fields travel as zero.
      v = std::nullopt;
    }
    return true;
  }
  // Validates `n` against remaining() and copies into `out` (which the
  // CALLER sizes only after this returns true via a prior remaining()
  // check; here the copy target is a string we resize ourselves, but only
  // once the bytes are known to be present).
  bool ReadString(size_t n, std::string& out) {
    if (remaining() < n) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("wire: ") + what);
}

// --- Status codes on the wire ----------------------------------------------

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kCancelled);
}

// Decodes (code, message) into `out`; the return value reports whether the
// pair itself was well-formed (Result<Status> would be ambiguous, hence the
// out-parameter).
Status MakeStatus(uint8_t code, std::string message, Status& out) {
  const StatusCode c = static_cast<StatusCode>(code);
  switch (c) {
    case StatusCode::kOk:
      if (!message.empty()) return Corrupt("OK status with a message");
      out = Status::OK();
      return Status::OK();
    case StatusCode::kInvalidArgument:
      out = Status::InvalidArgument(std::move(message));
      return Status::OK();
    case StatusCode::kNotFound:
      out = Status::NotFound(std::move(message));
      return Status::OK();
    case StatusCode::kOutOfRange:
      out = Status::OutOfRange(std::move(message));
      return Status::OK();
    case StatusCode::kAlreadyExists:
      out = Status::AlreadyExists(std::move(message));
      return Status::OK();
    case StatusCode::kResourceExhausted:
      out = Status::ResourceExhausted(std::move(message));
      return Status::OK();
    case StatusCode::kUnimplemented:
      out = Status::Unimplemented(std::move(message));
      return Status::OK();
    case StatusCode::kIOError:
      out = Status::IOError(std::move(message));
      return Status::OK();
    case StatusCode::kCorruption:
      out = Status::Corruption(std::move(message));
      return Status::OK();
    case StatusCode::kInternal:
      out = Status::Internal(std::move(message));
      return Status::OK();
    case StatusCode::kDeadlineExceeded:
      out = Status::DeadlineExceeded(std::move(message));
      return Status::OK();
    case StatusCode::kCancelled:
      out = Status::Cancelled(std::move(message));
      return Status::OK();
  }
  return Corrupt("unknown status code");
}

Status PutStatus(std::vector<uint8_t>& out, const Status& status) {
  if (status.message().size() > kMaxStatusMessageBytes) {
    return Status::InvalidArgument("wire: status message exceeds cap");
  }
  PutU8(out, static_cast<uint8_t>(status.code()));
  PutU32(out, static_cast<uint32_t>(status.message().size()));
  PutBytes(out, status.message().data(), status.message().size());
  return Status::OK();
}

Status ReadStatus(Reader& r, Status& out) {
  uint8_t code = 0;
  uint32_t len = 0;
  if (!r.ReadU8(code) || !r.ReadU32(len)) return Corrupt("status underrun");
  if (!ValidStatusCode(code)) return Corrupt("unknown status code");
  if (len > kMaxStatusMessageBytes) return Corrupt("status message over cap");
  std::string message;
  if (!r.ReadString(len, message)) return Corrupt("status message underrun");
  return MakeStatus(code, std::move(message), out);
}

// --- IdConstraint / EdgePattern ---------------------------------------------

constexpr uint8_t kConstraintPresent = 1;
constexpr uint8_t kConstraintNegated = 2;

Status PutConstraint(std::vector<uint8_t>& out, const IdConstraint& c) {
  uint8_t flags = 0;
  if (!c.IsUnconstrained()) flags |= kConstraintPresent;
  if (c.negated()) flags |= kConstraintNegated;
  PutU8(out, flags);
  if (c.IsUnconstrained()) return Status::OK();
  const std::vector<uint32_t>& ids = *c.ids();
  if (ids.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("wire: constraint id set too large");
  }
  PutU32(out, static_cast<uint32_t>(ids.size()));
  for (uint32_t id : ids) PutU32(out, id);
  return Status::OK();
}

Result<IdConstraint> ReadConstraint(Reader& r) {
  uint8_t flags = 0;
  if (!r.ReadU8(flags)) return Corrupt("constraint underrun");
  if ((flags & ~(kConstraintPresent | kConstraintNegated)) != 0) {
    return Corrupt("constraint flags");
  }
  const bool negated = (flags & kConstraintNegated) != 0;
  if ((flags & kConstraintPresent) == 0) {
    if (negated) return Corrupt("negated unconstrained position");
    return IdConstraint();
  }
  uint32_t count = 0;
  if (!r.ReadU32(count)) return Corrupt("constraint count underrun");
  // The fail-closed gate: a lying count is rejected against the bytes that
  // are actually present BEFORE the id vector is allocated.
  if (static_cast<size_t>(count) * 4 > r.remaining()) {
    return Corrupt("constraint count exceeds payload");
  }
  std::vector<uint32_t> ids(count);
  for (uint32_t& id : ids) {
    if (!r.ReadU32(id)) return Corrupt("constraint ids underrun");
  }
  return IdConstraint(std::move(ids), negated);
}

// --- ExecLimits -------------------------------------------------------------

void PutLimits(std::vector<uint8_t>& out, const ExecLimits& limits) {
  std::optional<uint64_t> timeout;
  if (limits.timeout.has_value()) {
    timeout = static_cast<uint64_t>(
        std::max<int64_t>(0, limits.timeout->count()));
  }
  PutOptU64(out, timeout);
  PutOptU64(out, limits.max_paths);
  PutOptU64(out, limits.max_steps);
  PutOptU64(out, limits.max_bytes);
}

Result<ExecLimits> ReadLimits(Reader& r) {
  std::optional<uint64_t> timeout, paths, steps, bytes;
  if (!r.ReadOptU64(timeout) || !r.ReadOptU64(paths) ||
      !r.ReadOptU64(steps) || !r.ReadOptU64(bytes)) {
    return Corrupt("limits underrun");
  }
  ExecLimits limits;
  if (timeout.has_value()) {
    if (*timeout > static_cast<uint64_t>(
                       std::numeric_limits<int64_t>::max())) {
      return Corrupt("timeout overflows");
    }
    limits.timeout = std::chrono::nanoseconds(static_cast<int64_t>(*timeout));
  }
  auto size_limit = [](const std::optional<uint64_t>& v,
                       std::optional<size_t>& out_limit) {
    if (v.has_value()) out_limit = static_cast<size_t>(*v);
  };
  size_limit(paths, limits.max_paths);
  size_limit(steps, limits.max_steps);
  size_limit(bytes, limits.max_bytes);
  return limits;
}

// --- Framing ----------------------------------------------------------------

Result<std::vector<uint8_t>> SealFrame(FrameType type,
                                       std::vector<uint8_t> frame,
                                       size_t max_frame_bytes) {
  // `frame` arrives with kFrameHeaderBytes of zeros reserved up front.
  if (frame.size() > max_frame_bytes) {
    return Status::ResourceExhausted(
        "wire: frame of " + std::to_string(frame.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte cap");
  }
  const size_t payload = frame.size() - kFrameHeaderBytes;
  std::memcpy(frame.data(), kMagic, 4);
  frame[4] = kWireVersion;
  frame[5] = static_cast<uint8_t>(type);
  frame[6] = 0;
  frame[7] = 0;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<uint8_t>(payload >> (8 * i));
  }
  // CRC over the whole frame with the CRC field itself zeroed (it is).
  const uint32_t crc = storage::Crc32c(frame.data(), frame.size());
  for (int i = 0; i < 4; ++i) {
    frame[kCrcOffset + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return frame;
}

}  // namespace

ExtractResult ExtractFrame(std::span<const uint8_t> buffer,
                           size_t max_frame_bytes) {
  ExtractResult result;
  // Validate the fixed prefix byte-by-byte as it arrives, so a hostile
  // stream is rejected at the earliest byte that cannot be a frame.
  const size_t prefix = std::min(buffer.size(), size_t{4});
  for (size_t i = 0; i < prefix; ++i) {
    if (buffer[i] != kMagic[i]) {
      result.state = FrameState::kError;
      result.error = Corrupt("bad magic");
      return result;
    }
  }
  if (buffer.size() >= 5 && buffer[4] != kWireVersion) {
    result.state = FrameState::kError;
    result.error = Corrupt("unsupported wire version");
    return result;
  }
  if (buffer.size() >= 6 &&
      buffer[5] != static_cast<uint8_t>(FrameType::kRequest) &&
      buffer[5] != static_cast<uint8_t>(FrameType::kResponse)) {
    result.state = FrameState::kError;
    result.error = Corrupt("unknown frame type");
    return result;
  }
  if (buffer.size() >= 8 && (buffer[6] != 0 || buffer[7] != 0)) {
    result.state = FrameState::kError;
    result.error = Corrupt("reserved flags set");
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes) {
    result.state = FrameState::kNeedMore;
    return result;
  }
  uint32_t payload = 0;
  for (int i = 0; i < 4; ++i) {
    payload |= static_cast<uint32_t>(buffer[8 + i]) << (8 * i);
  }
  // The length gate fires with only the header present: an attacker cannot
  // make the peer buffer (or allocate) more than the cap.
  if (static_cast<uint64_t>(payload) + kFrameHeaderBytes > max_frame_bytes) {
    result.state = FrameState::kError;
    result.error = Corrupt("frame length exceeds cap");
    return result;
  }
  const size_t frame_bytes = kFrameHeaderBytes + payload;
  if (buffer.size() < frame_bytes) {
    result.state = FrameState::kNeedMore;
    return result;
  }
  uint32_t declared = 0;
  for (int i = 0; i < 4; ++i) {
    declared |= static_cast<uint32_t>(buffer[kCrcOffset + i]) << (8 * i);
  }
  // Re-derive the CRC with the checksum field zeroed, without copying the
  // frame: CRC the prefix, extend over four zero bytes, extend over the
  // rest.
  uint32_t crc = storage::Crc32c(buffer.data(), kCrcOffset);
  const uint8_t zeros[4] = {0, 0, 0, 0};
  crc = storage::Crc32cExtend(crc, zeros, 4);
  crc = storage::Crc32cExtend(crc, buffer.data() + kFrameHeaderBytes,
                              frame_bytes - kFrameHeaderBytes);
  if (crc != declared) {
    result.state = FrameState::kError;
    result.error = Corrupt("frame checksum mismatch");
    return result;
  }
  result.state = FrameState::kFrame;
  result.header.type = static_cast<FrameType>(buffer[5]);
  result.header.payload_bytes = payload;
  result.frame_bytes = frame_bytes;
  return result;
}

Result<std::vector<uint8_t>> EncodeRequestFrame(const WireRequest& request,
                                                size_t max_frame_bytes) {
  if (request.tenant.size() > kMaxTenantBytes) {
    return Status::InvalidArgument("wire: tenant name exceeds cap");
  }
  if (request.steps.size() > kMaxWireSteps) {
    return Status::InvalidArgument("wire: step chain exceeds cap");
  }
  if (static_cast<uint8_t>(request.kind) >
      static_cast<uint8_t>(service::QueryKind::kChainBackward)) {
    return Status::InvalidArgument("wire: unknown query kind");
  }
  if (static_cast<uint8_t>(request.mode) >
      static_cast<uint8_t>(AnswerMode::kExists)) {
    return Status::InvalidArgument("wire: unknown answer mode");
  }
  std::vector<uint8_t> frame(kFrameHeaderBytes, 0);
  PutU8(frame, static_cast<uint8_t>(request.kind));
  PutU8(frame, static_cast<uint8_t>(request.mode));
  PutU8(frame, request.priority);
  PutU32(frame, static_cast<uint32_t>(request.tenant.size()));
  PutBytes(frame, request.tenant.data(), request.tenant.size());
  PutOptU64(frame, request.deadline_micros);
  PutLimits(frame, request.limits);
  PutU16(frame, static_cast<uint16_t>(request.steps.size()));
  for (const EdgePattern& step : request.steps) {
    MRPA_RETURN_IF_ERROR(PutConstraint(frame, step.tail()));
    MRPA_RETURN_IF_ERROR(PutConstraint(frame, step.label()));
    MRPA_RETURN_IF_ERROR(PutConstraint(frame, step.head()));
  }
  return SealFrame(FrameType::kRequest, std::move(frame), max_frame_bytes);
}

Result<WireRequest> DecodeRequestPayload(std::span<const uint8_t> payload) {
  Reader r(payload);
  WireRequest request;
  uint8_t kind = 0, mode = 0;
  if (!r.ReadU8(kind) || !r.ReadU8(mode) || !r.ReadU8(request.priority)) {
    return Corrupt("request prologue underrun");
  }
  if (kind > static_cast<uint8_t>(service::QueryKind::kChainBackward)) {
    return Corrupt("unknown query kind");
  }
  if (mode > static_cast<uint8_t>(AnswerMode::kExists)) {
    return Corrupt("unknown answer mode");
  }
  request.kind = static_cast<service::QueryKind>(kind);
  request.mode = static_cast<AnswerMode>(mode);
  uint32_t tenant_len = 0;
  if (!r.ReadU32(tenant_len)) return Corrupt("tenant length underrun");
  if (tenant_len > kMaxTenantBytes) return Corrupt("tenant name over cap");
  if (!r.ReadString(tenant_len, request.tenant)) {
    return Corrupt("tenant underrun");
  }
  if (!r.ReadOptU64(request.deadline_micros)) {
    return Corrupt("deadline underrun");
  }
  Result<ExecLimits> limits = ReadLimits(r);
  if (!limits.ok()) return limits.status();
  request.limits = *limits;
  uint16_t num_steps = 0;
  if (!r.ReadU16(num_steps)) return Corrupt("step count underrun");
  if (num_steps > kMaxWireSteps) return Corrupt("step chain over cap");
  // Cheapest possible step is 3 one-byte unconstrained positions.
  if (static_cast<size_t>(num_steps) * 3 > r.remaining()) {
    return Corrupt("step count exceeds payload");
  }
  request.steps.reserve(num_steps);
  for (size_t i = 0; i < num_steps; ++i) {
    Result<IdConstraint> tail = ReadConstraint(r);
    if (!tail.ok()) return tail.status();
    Result<IdConstraint> label = ReadConstraint(r);
    if (!label.ok()) return label.status();
    Result<IdConstraint> head = ReadConstraint(r);
    if (!head.ok()) return head.status();
    request.steps.emplace_back(std::move(*tail), std::move(*label),
                               std::move(*head));
  }
  if (!r.exhausted()) return Corrupt("trailing bytes after request");
  return request;
}

Result<std::vector<uint8_t>> EncodeResponseFrame(const WireResponse& response,
                                                 size_t max_frame_bytes) {
  std::vector<uint8_t> frame(kFrameHeaderBytes, 0);
  MRPA_RETURN_IF_ERROR(PutStatus(frame, response.outcome));
  if (response.outcome.ok()) {
    if (static_cast<uint8_t>(response.mode) >
        static_cast<uint8_t>(AnswerMode::kExists)) {
      return Status::InvalidArgument("wire: unknown answer mode");
    }
    PutU8(frame, response.truncated ? 1 : 0);
    MRPA_RETURN_IF_ERROR(PutStatus(frame, response.limit));
    PutU64(frame, response.snapshot_version);
    PutU64(frame, response.attempts);
    PutU64(frame, response.stats.paths_yielded);
    PutU64(frame, response.stats.steps_expanded);
    PutU64(frame, response.stats.bytes_charged);
    PutU64(frame, static_cast<uint64_t>(response.stats.elapsed_nanos));
    PutU8(frame, response.stats.truncated ? 1 : 0);
    PutU8(frame, static_cast<uint8_t>(response.mode));
    switch (response.mode) {
      case AnswerMode::kPaths: {
        if (response.paths.size() > std::numeric_limits<uint32_t>::max()) {
          return Status::ResourceExhausted("wire: path set too large");
        }
        PutU32(frame, static_cast<uint32_t>(response.paths.size()));
        for (const Path& path : response.paths) {
          if (path.length() > std::numeric_limits<uint32_t>::max()) {
            return Status::ResourceExhausted("wire: path too long");
          }
          PutU32(frame, static_cast<uint32_t>(path.length()));
          for (const Edge& e : path) {
            PutU32(frame, e.tail);
            PutU32(frame, e.label);
            PutU32(frame, e.head);
          }
        }
        break;
      }
      case AnswerMode::kCount:
        PutU64(frame, response.count);
        break;
      case AnswerMode::kExists:
        PutU8(frame, response.exists ? 1 : 0);
        break;
    }
  }
  return SealFrame(FrameType::kResponse, std::move(frame), max_frame_bytes);
}

Result<WireResponse> DecodeResponsePayload(std::span<const uint8_t> payload) {
  Reader r(payload);
  WireResponse response;
  MRPA_RETURN_IF_ERROR(ReadStatus(r, response.outcome));
  if (!response.outcome.ok()) {
    if (!r.exhausted()) return Corrupt("trailing bytes after error response");
    return response;
  }
  uint8_t truncated = 0;
  if (!r.ReadU8(truncated)) return Corrupt("response underrun");
  if (truncated > 1) return Corrupt("non-boolean truncation flag");
  response.truncated = truncated == 1;
  MRPA_RETURN_IF_ERROR(ReadStatus(r, response.limit));
  uint64_t paths_yielded = 0, steps_expanded = 0, bytes_charged = 0;
  uint64_t elapsed = 0;
  uint8_t stats_truncated = 0, mode = 0;
  if (!r.ReadU64(response.snapshot_version) || !r.ReadU64(response.attempts) ||
      !r.ReadU64(paths_yielded) || !r.ReadU64(steps_expanded) ||
      !r.ReadU64(bytes_charged) || !r.ReadU64(elapsed) ||
      !r.ReadU8(stats_truncated) || !r.ReadU8(mode)) {
    return Corrupt("response underrun");
  }
  if (stats_truncated > 1) return Corrupt("non-boolean stats flag");
  response.stats.paths_yielded = static_cast<size_t>(paths_yielded);
  response.stats.steps_expanded = static_cast<size_t>(steps_expanded);
  response.stats.bytes_charged = static_cast<size_t>(bytes_charged);
  response.stats.elapsed_nanos = static_cast<int64_t>(elapsed);
  response.stats.truncated = stats_truncated == 1;
  if (mode > static_cast<uint8_t>(AnswerMode::kExists)) {
    return Corrupt("unknown answer mode");
  }
  response.mode = static_cast<AnswerMode>(mode);
  switch (response.mode) {
    case AnswerMode::kPaths: {
      uint32_t num_paths = 0;
      if (!r.ReadU32(num_paths)) return Corrupt("path count underrun");
      // Cheapest possible path on the wire is its 4-byte length prefix.
      if (static_cast<size_t>(num_paths) * 4 > r.remaining()) {
        return Corrupt("path count exceeds payload");
      }
      std::vector<Path> paths;
      paths.reserve(num_paths);
      for (size_t i = 0; i < num_paths; ++i) {
        uint32_t len = 0;
        if (!r.ReadU32(len)) return Corrupt("path length underrun");
        if (static_cast<size_t>(len) * 12 > r.remaining()) {
          return Corrupt("path length exceeds payload");
        }
        std::vector<Edge> edges(len);
        for (Edge& e : edges) {
          if (!r.ReadU32(e.tail) || !r.ReadU32(e.label) ||
              !r.ReadU32(e.head)) {
            return Corrupt("edge underrun");
          }
        }
        Path path(std::move(edges));
        // Canonical order is part of the contract (it is what the
        // differential harness byte-compares); a peer violating it is
        // hostile, not merely unsorted.
        if (!paths.empty() && !(paths.back() < path)) {
          return Corrupt("paths out of canonical order");
        }
        paths.push_back(std::move(path));
      }
      response.paths = PathSet::FromSortedUnique(std::move(paths));
      response.count = response.paths.size();
      response.exists = !response.paths.empty();
      break;
    }
    case AnswerMode::kCount: {
      if (!r.ReadU64(response.count)) return Corrupt("count underrun");
      response.exists = response.count > 0;
      break;
    }
    case AnswerMode::kExists: {
      uint8_t exists = 0;
      if (!r.ReadU8(exists)) return Corrupt("exists underrun");
      if (exists > 1) return Corrupt("non-boolean exists flag");
      response.exists = exists == 1;
      response.count = exists;
      break;
    }
  }
  if (!r.exhausted()) return Corrupt("trailing bytes after response");
  return response;
}

WireResponse MakeWireResponse(const service::QueryResponse& response,
                              AnswerMode mode) {
  WireResponse wire;
  wire.truncated = response.result.truncated;
  wire.limit = response.result.limit;
  wire.snapshot_version = response.snapshot_version;
  wire.attempts = response.attempts;
  wire.stats = response.result.stats;
  wire.mode = mode;
  wire.exists = !response.result.paths.empty();
  // The count is mode-faithful: kExists ships one bit, so the projected
  // count collapses with it — what this helper returns is exactly what a
  // client decodes after the round trip.
  wire.count =
      mode == AnswerMode::kExists ? (wire.exists ? 1 : 0)
                                  : response.result.paths.size();
  if (mode == AnswerMode::kPaths) wire.paths = response.result.paths;
  return wire;
}

WireResponse DegradedWireResponse(Status status, AnswerMode mode,
                                  uint64_t attempts) {
  WireResponse wire;
  wire.truncated = true;
  wire.stats.truncated = true;
  wire.limit = std::move(status);
  wire.mode = mode;
  wire.attempts = attempts;
  return wire;
}

}  // namespace mrpa::net
