#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace mrpa::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string("net: ") + what + ": " +
                         std::strerror(errno));
}

// True for the shed shape QueryService (and DegradedWireResponse) emits:
// truncated-empty, limit kResourceExhausted, and — the discriminator from a
// budget trip, which also reports kResourceExhausted — snapshot_version 0:
// the request never reached a snapshot, so re-admitting can succeed.
bool IsRetryableShed(const WireResponse& response) {
  return response.outcome.ok() && response.truncated &&
         response.snapshot_version == 0 &&
         response.limit.IsResourceExhausted();
}

}  // namespace

QueryClient::QueryClient(std::string host, uint16_t port, Options options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      rng_(options_.retry_seed) {
  if (options_.retry.max_attempts == 0) options_.retry.max_attempts = 1;
}

QueryClient::~QueryClient() { Close(); }

Status QueryClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  in_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad host address " + host_);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status QueryClient::SetIoTimeout(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  auto budget = std::chrono::duration_cast<std::chrono::microseconds>(
      options_.io_timeout);
  if (deadline.has_value()) {
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        *deadline - std::chrono::steady_clock::now());
    budget = std::min(budget, std::max(std::chrono::microseconds(1), left));
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(budget.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(budget.count() % 1000000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(timeout)");
  }
  return Status::OK();
}

Status QueryClient::SendAll(const std::vector<uint8_t>& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<WireResponse> QueryClient::Attempt(
    const WireRequest& request,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  MRPA_RETURN_IF_ERROR(Connect());
  MRPA_RETURN_IF_ERROR(SetIoTimeout(deadline));
  Result<std::vector<uint8_t>> frame =
      EncodeRequestFrame(request, options_.max_frame_bytes);
  if (!frame.ok()) return frame.status();  // Caller error; not retryable.
  MRPA_RETURN_IF_ERROR(SendAll(*frame));

  uint8_t chunk[16 * 1024];
  for (;;) {
    const ExtractResult extracted =
        ExtractFrame(in_, options_.max_frame_bytes);
    if (extracted.state == FrameState::kError) {
      // The server wrote something that is not a frame: fail closed. This
      // is data corruption, not a transient — no retry.
      Close();
      return extracted.error;
    }
    if (extracted.state == FrameState::kFrame) {
      if (extracted.header.type != FrameType::kResponse) {
        Close();
        return Status::Corruption("wire: unexpected frame type in response");
      }
      Result<WireResponse> response = DecodeResponsePayload(
          std::span<const uint8_t>(in_).subspan(
              kFrameHeaderBytes, extracted.frame_bytes - kFrameHeaderBytes));
      if (!response.ok()) {
        Close();
        return response.status();
      }
      in_.erase(in_.begin(),
                in_.begin() + static_cast<ptrdiff_t>(extracted.frame_bytes));
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      Close();
      return Status::IOError("net: connection closed mid-response");
    }
    Status status = (errno == EAGAIN || errno == EWOULDBLOCK)
                        ? Status::IOError("net: receive timed out")
                        : Errno("recv");
    Close();
    return status;
  }
}

Result<WireResponse> QueryClient::Execute(const WireRequest& request,
                                          size_t* attempts_out) {
  // The caller's budget, fixed once: retries and backoffs spend it.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (request.deadline_micros.has_value()) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(*request.deadline_micros);
  }
  auto set_attempts = [attempts_out](size_t n) {
    if (attempts_out != nullptr) *attempts_out = n;
  };

  Status last_transport;
  Result<WireResponse> last_shed = Status::Internal("net: unreachable");
  bool last_was_shed = false;
  for (size_t attempt = 1;; ++attempt) {
    WireRequest wire = request;
    if (deadline.has_value()) {
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        set_attempts(attempt - 1);
        return DegradedWireResponse(
            Status::DeadlineExceeded("net: deadline passed before attempt " +
                                     std::to_string(attempt)),
            request.mode, attempt - 1);
      }
      wire.deadline_micros = static_cast<uint64_t>(left.count());
    }

    Result<WireResponse> response = Attempt(wire, deadline);
    bool retryable = false;
    if (response.ok()) {
      if (!IsRetryableShed(*response)) {
        set_attempts(attempt);
        return response;  // Complete answers, budget trips, deadline/cancel,
      }                   // and error outcomes alike: terminal.
      last_shed = std::move(response);
      last_was_shed = true;
      retryable = true;
    } else {
      if (!service::RetryPolicy::IsRetryableExecution(response.status())) {
        set_attempts(attempt);
        return response.status();  // Corrupt frame, caller error, ...
      }
      last_transport = response.status();
      last_was_shed = false;
      retryable = true;
    }

    if (!retryable || attempt >= options_.retry.max_attempts) {
      set_attempts(attempt);
      // Out of attempts. A final shed degrades like the in-process service;
      // an unhealable transport surfaces as the error it is.
      if (last_was_shed) return last_shed;
      return last_transport;
    }
    const std::chrono::nanoseconds backoff =
        options_.retry.BackoffFor(attempt, rng_);
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() + backoff >= *deadline) {
      set_attempts(attempt);
      return DegradedWireResponse(
          Status::DeadlineExceeded(
              "net: retry backoff does not fit the deadline"),
          request.mode, attempt);
    }
    std::this_thread::sleep_for(backoff);
  }
}

}  // namespace mrpa::net
