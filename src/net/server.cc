#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mrpa::net {

namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;

Status Errno(const char* what) {
  return Status::IOError(std::string("net: ") + what + ": " +
                         std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

QueryServer::QueryServer(service::QueryService& service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.dispatch_threads == 0) options_.dispatch_threads = 1;
  if (options_.max_pending_requests == 0) options_.max_pending_requests = 1;
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Count(obs::Metric m, uint64_t n) const {
  if (options_.obs != nullptr) options_.obs->Add(m, n);
}

void QueryServer::Record(obs::Hist h, uint64_t v) const {
  if (options_.obs != nullptr) options_.obs->Record(h, v);
}

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("net: server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("net: bad bind address " +
                                   options_.bind_address);
  }
  auto fail = [this](const char* what) {
    Status status = Errno(what);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return status;
  };
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_)) return fail("fcntl");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(wake)");
  }

  draining_.store(false, std::memory_order_release);
  drain_started_ = false;
  stop_workers_ = false;
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  workers_.reserve(options_.dispatch_threads);
  for (size_t i = 0; i < options_.dispatch_threads; ++i) {
    workers_.emplace_back([this] { DispatchWorker(); });
  }
  return Status::OK();
}

void QueryServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  done_.clear();
  work_.clear();
  running_.store(false, std::memory_order_release);
}

// --- Dispatch workers -------------------------------------------------------

void QueryServer::DispatchWorker() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return stop_workers_ || !work_.empty(); });
      if (work_.empty()) return;  // stop_workers_ and the queue is drained.
      item = std::move(work_.front());
      work_.pop_front();
    }

    service::QueryRequest request;
    request.kind = item.request.kind;
    request.steps = std::move(item.request.steps);
    request.limits = item.request.limits;
    if (item.request.deadline_micros.has_value()) {
      // The wire carries REMAINING micros at client send time; re-root the
      // window at frame receipt so server-side queueing counts against it.
      request.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::microseconds(*item.request.deadline_micros));
    }

    Result<service::QueryResponse> executed =
        service_.Execute(item.request.tenant, request);
    Count(obs::Metric::kNetRequestsDispatched);

    WireResponse response;
    if (executed.ok()) {
      response = MakeWireResponse(*executed, item.request.mode);
    } else {
      response.outcome = executed.status();
      response.mode = item.request.mode;
    }
    Result<std::vector<uint8_t>> frame =
        EncodeResponseFrame(response, options_.max_frame_bytes);
    if (!frame.ok()) {
      // The answer outgrew the frame cap: degrade at the sender. The error
      // outcome is still a small, well-formed frame.
      WireResponse oversized;
      oversized.outcome = frame.status();
      oversized.mode = item.request.mode;
      frame = EncodeResponseFrame(oversized, options_.max_frame_bytes);
    }
    Record(obs::Hist::kNetRequestNanos,
           static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - item.received)
                   .count()));

    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(Completion{item.conn_id, std::move(*frame)});
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

// --- Event loop -------------------------------------------------------------

void QueryServer::EventLoop() {
  std::vector<epoll_event> events(64);
  for (;;) {
    if (draining_.load(std::memory_order_acquire) && !drain_started_) {
      drain_started_ = true;
      drain_deadline_ = std::chrono::steady_clock::now() +
                        options_.drain_timeout;
      // Refuse new connections at the kernel: the listen socket goes away.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      // Stop reading everywhere — no new requests — and close connections
      // with nothing in flight. Collect ids first: CloseConnection erases.
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (auto& [id, conn] : conns_) {
        conn.paused = true;
        UpdateInterest(conn);
        ids.push_back(id);
      }
      for (uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end() && it->second.pending() == 0 &&
            it->second.out_pos >= it->second.out.size()) {
          CloseConnection(id);
        }
      }
    }
    if (drain_started_) {
      if (conns_.empty()) return;
      if (std::chrono::steady_clock::now() >= drain_deadline_) {
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (uint64_t id : ids) CloseConnection(id);
        return;
      }
    }

    int timeout_ms = 100;
    if (drain_started_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline_ - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(
          std::max<int64_t>(0, std::min<int64_t>(left.count(), 100)));
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself failed; nothing recoverable.
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (fd == listen_fd_ && listen_fd_ >= 0) {
        HandleAccept();
        continue;
      }
      auto id_it = fd_to_id_.find(fd);
      if (id_it == fd_to_id_.end()) continue;  // Closed earlier this batch.
      const uint64_t id = id_it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((mask & EPOLLIN) != 0) {
        auto it = conns_.find(id);
        if (it != conns_.end()) HandleReadable(it->second);
      }
      if ((mask & EPOLLOUT) != 0) {
        auto it = conns_.find(id);
        if (it != conns_.end()) HandleWritable(it->second);
      }
    }
  }
}

void QueryServer::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept failure.
    if (conns_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      Count(obs::Metric::kNetConnectionsRefused);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      Count(obs::Metric::kNetConnectionsRefused);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    fd_to_id_[fd] = id;
    conn_count_.store(conns_.size(), std::memory_order_release);
    Count(obs::Metric::kNetConnectionsAccepted);
  }
}

void QueryServer::HandleReadable(Connection& conn) {
  uint8_t chunk[kReadChunkBytes];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      if (!ParseAndDispatch(conn)) return;  // Connection closed.
      if (conn.paused) return;  // Backpressure: leave the rest in the kernel.
      continue;
    }
    if (n == 0) {  // Peer closed. The protocol is strictly request/response;
      CloseConnection(conn.id);  // a half-closed peer has nothing to wait for.
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn.id);
    return;
  }
}

bool QueryServer::ParseAndDispatch(Connection& conn) {
  size_t consumed = 0;
  // Parse while under the pending cap; bytes beyond it stay buffered (and
  // the cap also stops further reads below).
  while (conn.pending() < options_.max_pending_requests) {
    const std::span<const uint8_t> rest(conn.in.data() + consumed,
                                        conn.in.size() - consumed);
    const ExtractResult extracted =
        ExtractFrame(rest, options_.max_frame_bytes);
    if (extracted.state == FrameState::kNeedMore) break;
    if (extracted.state == FrameState::kError ||
        extracted.header.type != FrameType::kRequest) {
      Count(obs::Metric::kNetProtocolErrors);
      CloseConnection(conn.id);
      return false;
    }
    Result<WireRequest> request = DecodeRequestPayload(
        rest.subspan(kFrameHeaderBytes,
                     extracted.frame_bytes - kFrameHeaderBytes));
    if (!request.ok()) {
      Count(obs::Metric::kNetProtocolErrors);
      CloseConnection(conn.id);
      return false;
    }
    Count(obs::Metric::kNetFramesRead);
    Record(obs::Hist::kNetFrameBytes, extracted.frame_bytes);
    conn.requests.push_back(std::move(*request));
    consumed += extracted.frame_bytes;
  }
  if (consumed > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(consumed));
  }
  MaybeDispatch(conn);
  const bool should_pause =
      conn.pending() >= options_.max_pending_requests ||
      drain_started_;
  if (should_pause && !conn.paused) {
    conn.paused = true;
    if (!drain_started_) Count(obs::Metric::kNetBackpressurePauses);
    UpdateInterest(conn);
  }
  return true;
}

void QueryServer::MaybeDispatch(Connection& conn) {
  if (conn.in_dispatch || conn.requests.empty()) return;
  WorkItem item;
  item.conn_id = conn.id;
  item.request = std::move(conn.requests.front());
  conn.requests.pop_front();
  item.received = std::chrono::steady_clock::now();
  conn.in_dispatch = true;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.push_back(std::move(item));
  }
  work_cv_.notify_one();
}

void QueryServer::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // Closed while the query ran.
    Connection& conn = it->second;
    Count(obs::Metric::kNetFramesWritten);
    Record(obs::Hist::kNetFrameBytes, done.frame.size());
    conn.out.insert(conn.out.end(), done.frame.begin(), done.frame.end());
    conn.in_dispatch = false;
    MaybeDispatch(conn);
    // Room freed: resume reading (never during drain).
    if (conn.paused && !drain_started_ &&
        conn.pending() < options_.max_pending_requests) {
      conn.paused = false;
      // Bytes may have queued in conn.in while paused; parse them now.
      if (!ParseAndDispatch(conn)) continue;
    }
    auto again = conns_.find(done.conn_id);
    if (again == conns_.end()) continue;
    HandleWritable(again->second);  // Opportunistic flush before epoll.
  }
}

void QueryServer::HandleWritable(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn.id);
    return;
  }
  if (conn.out_pos >= conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
    if (drain_started_ && conn.pending() == 0) {
      // Fully drained: every received request is answered and flushed.
      CloseConnection(conn.id);
      return;
    }
  }
  UpdateInterest(conn);
}

void QueryServer::UpdateInterest(Connection& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.paused) ev.events |= EPOLLIN;
  if (conn.out_pos < conn.out.size()) ev.events |= EPOLLOUT;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void QueryServer::CloseConnection(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  fd_to_id_.erase(fd);
  conns_.erase(it);
  conn_count_.store(conns_.size(), std::memory_order_release);
}

}  // namespace mrpa::net
