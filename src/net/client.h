// QueryClient: a blocking wire-protocol client with the PR 6 retry
// taxonomy applied across the network boundary.
//
// The client owns one connection and runs one request at a time (the
// protocol correlates by byte order, so concurrency belongs in more
// clients, not more in-flight frames). Execute() is where the retry
// taxonomy meets the wire:
//
//   retryable, with deterministic jittered backoff (RetryPolicy):
//     * transport failures — connect/send/recv errors, a connection the
//       server closed mid-exchange — surface as kIOError; the query is an
//       idempotent read, so the client reconnects and re-sends;
//     * admission sheds — an OK response in the shed shape (truncated,
//       empty, limit kResourceExhausted, snapshot_version == 0); capacity
//       frees as other tenants drain, exactly the in-process case.
//
//   terminal, returned as-is:
//     * budget trips — truncated responses with snapshot_version > 0: the
//       partial answer IS the answer (the version field is the wire's
//       shed-vs-trip discriminator);
//     * kDeadlineExceeded / kCancelled outcomes, and every non-OK outcome
//       (unknown tenant, corrupt state): more attempts cannot help.
//
// Deadline propagation: the caller's budget is fixed once at Execute()
// entry (now + deadline_micros) and every retry attempt re-encodes the
// REMAINING window — backoff sleeps and dead attempts spend the caller's
// budget, they never extend it. A backoff that does not fit the remaining
// window short-circuits to the same degraded kDeadlineExceeded shape
// QueryService uses, so callers see one contract with or without a network
// in between.

#ifndef MRPA_NET_CLIENT_H_
#define MRPA_NET_CLIENT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/retry.h"
#include "util/random.h"
#include "util/status.h"

namespace mrpa::net {

class QueryClient {
 public:
  struct Options {
    service::RetryPolicy retry;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    // Per-socket-operation timeout when the request carries no deadline
    // (a deadline tightens it further). Guards against a hung server.
    std::chrono::milliseconds io_timeout{5000};
    // Seeds the backoff jitter stream (deterministic given seed and call
    // order).
    uint64_t retry_seed = 0xc11e4785ULL;
  };

  QueryClient(std::string host, uint16_t port)
      : QueryClient(std::move(host), port, Options()) {}
  QueryClient(std::string host, uint16_t port, Options options);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  // Connects eagerly. Optional — Execute() connects on demand.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One governed query, retries included. Non-OK only for hard failures
  // (transport exhausted its retry budget, a malformed response, an error
  // outcome from the server); every governance outcome — including sheds
  // that outlived max_attempts and deadlines that could not fit another
  // attempt — returns OK in the degraded truncated shape, mirroring
  // QueryService::Execute. `attempts_out`, when non-null, receives the
  // number of wire attempts this call consumed.
  Result<WireResponse> Execute(const WireRequest& request,
                               size_t* attempts_out = nullptr);

 private:
  // One encode → send → receive → decode exchange on the live connection.
  Result<WireResponse> Attempt(
      const WireRequest& request,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  Status SendAll(const std::vector<uint8_t>& frame);
  Status SetIoTimeout(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  std::string host_;
  uint16_t port_;
  Options options_;
  Rng rng_;
  int fd_ = -1;
  std::vector<uint8_t> in_;  // Bytes received beyond the last frame.
};

}  // namespace mrpa::net

#endif  // MRPA_NET_CLIENT_H_
