// The MRPA wire protocol: length-prefixed, CRC-guarded binary frames
// carrying governed queries and their degradation-contract answers.
//
// PR 6 built the serving substrate (admission → governed execute →
// truncated-partial-result contract) but every tenant was an in-process
// caller. This codec is the network half of ROADMAP item 2: a versioned
// frame format a server and client can speak over any byte stream, designed
// around two rules:
//
//   1. FAIL CLOSED BEFORE ALLOCATING. Every frame and every variable-length
//      field inside a payload is validated against what is actually present
//      (and against hard caps) before a single byte is reserved for it. A
//      lying length field, a truncated stream, or a flipped bit yields
//      kCorruption (or "need more bytes"), never an allocation sized by the
//      attacker and never UB — the hostile-input sweep in
//      tests/net_wire_test.cc flips every byte and truncates at every
//      prefix to prove it.
//
//   2. ANSWERS ARE SUMMARIES WHEN THE CALLER WANTS SUMMARIES. A response
//      carries the full degradation contract (outcome Status, truncation
//      flag, limit Status, snapshot version, ExecStats) plus a payload in
//      one of three answer modes: kPaths materializes the governed PathSet
//      on the wire; kCount and kExists travel as eight and one byte(s) —
//      the compact answer shapes "Representing Paths in Graph Database
//      Pattern Matching" argues a path engine should serve, carried here so
//      a count query over a million-path result costs a constant-size
//      frame. The truncation framing survives all three modes: a truncated
//      count is labeled partial exactly like a truncated path set.
//
// Frame layout (all integers little-endian at fixed offsets):
//
//   [0..3]   magic 'M''R''P''W'
//   [4]      wire version (kWireVersion)
//   [5]      frame type (FrameType)
//   [6..7]   flags, must be zero (reserved)
//   [8..11]  payload length in bytes
//   [12..15] CRC-32C over the header (with this field zeroed) + payload —
//            any single-bit flip anywhere in the frame is caught.
//
// The codec is transport-agnostic: ExtractFrame consumes an accumulation
// buffer and reports complete-frame / need-more / error, so the epoll
// server (server.h) and the blocking client (client.h) share one parser.

#ifndef MRPA_NET_WIRE_H_
#define MRPA_NET_WIRE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/edge_pattern.h"
#include "core/path_set.h"
#include "service/query_service.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa::net {

inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
// Default whole-frame cap (header + payload). Both endpoints reject frames
// beyond their configured cap BEFORE buffering the payload.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;
// Field caps, enforced on encode and decode alike: a frame within the byte
// cap still may not smuggle an absurd tenant name or step chain.
inline constexpr size_t kMaxTenantBytes = 256;
inline constexpr size_t kMaxWireSteps = 128;
inline constexpr size_t kMaxStatusMessageBytes = 4096;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// How the answer travels (see the file comment).
enum class AnswerMode : uint8_t {
  kPaths = 0,
  kCount = 1,
  kExists = 2,
};

// One query as it crosses the wire. Mirrors service::QueryRequest, plus the
// transport-only fields: the answer mode, a priority byte (carried for
// forward compatibility — admission priority is a tenant property today),
// and the deadline as REMAINING microseconds at send time (absolute clocks
// do not travel between machines; each retry attempt re-derives the
// remaining window from the caller's deadline).
struct WireRequest {
  std::string tenant;
  service::QueryKind kind = service::QueryKind::kTraversal;
  AnswerMode mode = AnswerMode::kPaths;
  uint8_t priority = 0;
  std::vector<EdgePattern> steps;
  // The caller's budgets (timeout encoded as nanoseconds).
  ExecLimits limits;
  std::optional<uint64_t> deadline_micros;
};

// One answer. `outcome` mirrors QueryService::Execute's Result status: OK
// means every other field is meaningful (including degraded answers — a
// shed or a budget trip is an OK response with `truncated` set); a non-OK
// outcome (unknown tenant, no snapshot, corrupt state) carries only the
// status and message.
struct WireResponse {
  Status outcome;
  bool truncated = false;
  Status limit;
  uint64_t snapshot_version = 0;
  uint64_t attempts = 1;
  ExecStats stats;
  AnswerMode mode = AnswerMode::kPaths;
  // kPaths: the governed result paths in canonical order (decode verifies
  // the order and fails closed on an unsorted or duplicated stream).
  PathSet paths;
  // kCount / kExists: the summary. For kPaths, `count` mirrors
  // paths.size() so callers can branch on one field.
  uint64_t count = 0;
  bool exists = false;
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint32_t payload_bytes = 0;
};

// Streaming extraction over an accumulation buffer.
enum class FrameState : uint8_t {
  kFrame,     // A whole, CRC-verified frame starts at buffer[0].
  kNeedMore,  // The prefix is valid so far; more bytes are required.
  kError,     // The stream is hostile or corrupt; the connection is dead.
};

struct ExtractResult {
  FrameState state = FrameState::kNeedMore;
  FrameHeader header;
  // Whole-frame size (header + payload) when state == kFrame; the payload
  // is buffer[kFrameHeaderBytes .. frame_bytes).
  size_t frame_bytes = 0;
  Status error;  // Set when state == kError.
};

// Validates as much of `buffer` as is present: the fixed header fields
// (magic, version, zero flags, type, length cap) are checked as soon as the
// first 16 bytes exist — a hostile length field is rejected BEFORE any
// payload is buffered — and the CRC as soon as the whole frame is present.
ExtractResult ExtractFrame(std::span<const uint8_t> buffer,
                           size_t max_frame_bytes = kDefaultMaxFrameBytes);

// Encoders. Fail (kInvalidArgument / kResourceExhausted) instead of
// emitting a frame that violates the field caps or `max_frame_bytes` —
// an over-cap answer must degrade at the sender, not explode the peer.
Result<std::vector<uint8_t>> EncodeRequestFrame(
    const WireRequest& request,
    size_t max_frame_bytes = kDefaultMaxFrameBytes);
Result<std::vector<uint8_t>> EncodeResponseFrame(
    const WireResponse& response,
    size_t max_frame_bytes = kDefaultMaxFrameBytes);

// Payload decoders (the bytes BETWEEN the header and the frame end, i.e.
// buffer[16..frame_bytes) of an extracted frame). Fail closed: every count
// is bounds-checked against the bytes actually present before its storage
// is allocated.
Result<WireRequest> DecodeRequestPayload(std::span<const uint8_t> payload);
Result<WireResponse> DecodeResponsePayload(std::span<const uint8_t> payload);

// The response QueryService hands back, projected into `mode`. kCount and
// kExists drop the materialized paths (the summary plus the full
// degradation contract travel; the path flood does not).
WireResponse MakeWireResponse(const service::QueryResponse& response,
                              AnswerMode mode);

// A client-side degraded answer in the exact shape QueryService uses for
// sheds and infeasible deadlines: OK outcome, truncated-empty result,
// `status` in limit, snapshot_version 0.
WireResponse DegradedWireResponse(Status status, AnswerMode mode,
                                  uint64_t attempts);

}  // namespace mrpa::net

#endif  // MRPA_NET_WIRE_H_
