// QueryServer: the epoll front door over QueryService.
//
// One event-loop thread owns every socket; a small pool of dispatch workers
// owns every QueryService::Execute call. The split exists because Execute
// legitimately BLOCKS — admission queues park the caller, retry backoffs
// sleep — and a blocked event loop would stall every other connection. The
// loop therefore never executes a query: it parses frames, hands decoded
// requests to the workers, and flushes the response frames the workers
// encode, with an eventfd as the workers' doorbell.
//
// Per-connection discipline:
//
//   * Bounded buffers. The read buffer can hold at most one maximum-size
//     frame beyond what has been parsed (ExtractFrame rejects oversized
//     declared lengths from the header alone, so a hostile length field
//     never grows the buffer). Decoded-but-undispatched requests queue up
//     to Options::max_pending_requests; at the cap the connection's
//     EPOLLIN interest is dropped — backpressure, counted in
//     net.backpressure_pauses — and TCP flow control pushes back on the
//     client. Reading resumes as responses drain.
//   * FIFO responses. Requests on one connection dispatch one at a time,
//     in arrival order, so responses come back in request order — the
//     protocol has no correlation ids, byte order IS the correlation.
//   * Fail closed. A hostile byte stream (bad magic, lying length, CRC
//     mismatch, malformed payload) closes the connection immediately; no
//     best-effort resynchronization, no error frame a confused peer could
//     misparse mid-stream. Counted in net.protocol_errors.
//
// Shutdown() is a graceful drain: the listen socket closes first (new
// connections are refused by the kernel), reading stops everywhere (no new
// requests), every already-received request runs to completion and its
// response frame is flushed, and only then do connections close. A drain
// deadline (Options::drain_timeout) bounds the wait; connections still
// alive at the deadline are force-closed.

#ifndef MRPA_NET_SERVER_H_
#define MRPA_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "obs/obs.h"
#include "service/query_service.h"
#include "util/status.h"

namespace mrpa::net {

class QueryServer {
 public:
  struct Options {
    // 0 asks the kernel for an ephemeral port; read it back via port().
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    // Accepted connections beyond this are closed immediately (counted in
    // net.connections_refused).
    size_t max_connections = 64;
    // Whole-frame cap enforced on both directions.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    // Decoded requests a connection may have queued or executing before
    // the server stops reading from it.
    size_t max_pending_requests = 8;
    // Threads running QueryService::Execute. They block in admission
    // queues and backoff sleeps, so this is a concurrency cap on queries,
    // not on sockets.
    size_t dispatch_threads = 2;
    // Graceful-drain bound: connections still busy this long after
    // Shutdown() begins are force-closed.
    std::chrono::milliseconds drain_timeout{5000};
    // Metrics sink for the net.* counters and histograms. May be null.
    obs::ObsRegistry* obs = nullptr;
  };

  // The service must outlive the server.
  QueryServer(service::QueryService& service, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, and spawns the event loop + dispatch workers.
  // kIOError on socket failures; kAlreadyExists if already running.
  Status Start();

  // Graceful drain (see the file comment). Idempotent; blocks until the
  // loop and every worker have joined.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  // Live connection count, for tests and operators.
  size_t active_connections() const {
    return conn_count_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> in;   // Unparsed bytes off the socket.
    std::vector<uint8_t> out;  // Encoded response bytes not yet written.
    size_t out_pos = 0;        // Prefix of `out` already written.
    std::deque<WireRequest> requests;  // Decoded, awaiting dispatch.
    bool in_dispatch = false;  // One request is with the workers.
    bool paused = false;       // EPOLLIN dropped (backpressure or drain).
    // Requests received but not yet answered on the wire.
    size_t pending() const {
      return requests.size() + (in_dispatch ? 1 : 0);
    }
  };

  struct WorkItem {
    uint64_t conn_id = 0;
    WireRequest request;
    std::chrono::steady_clock::time_point received;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> frame;
  };

  void EventLoop();
  void DispatchWorker();

  // Event-loop-thread helpers.
  void HandleAccept();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  // Parses complete frames out of conn.in (respecting the pending cap) and
  // dispatches; returns false when the stream turned hostile and the
  // connection was closed.
  bool ParseAndDispatch(Connection& conn);
  void MaybeDispatch(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(uint64_t id);
  void DrainCompletions();
  void BeginDrainLocked();

  void Count(obs::Metric m, uint64_t n = 1) const;
  void Record(obs::Hist h, uint64_t v) const;

  service::QueryService& service_;
  Options options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool drain_started_ = false;  // Event-loop thread only.
  std::chrono::steady_clock::time_point drain_deadline_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Loop-thread-owned connection table; only the atomic count below is
  // visible to other threads.
  std::unordered_map<uint64_t, Connection> conns_;
  std::atomic<size_t> conn_count_{0};
  std::unordered_map<int, uint64_t> fd_to_id_;
  uint64_t next_conn_id_ = 1;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;
  bool stop_workers_ = false;

  std::mutex done_mu_;
  std::deque<Completion> done_;
};

}  // namespace mrpa::net

#endif  // MRPA_NET_SERVER_H_
