#include "graph/weighted_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace mrpa {

WeightedBinaryGraph WeightedBinaryGraph::FromArcs(
    uint32_t num_vertices,
    std::vector<std::tuple<VertexId, VertexId, double>> arcs) {
  std::sort(arcs.begin(), arcs.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });

  WeightedBinaryGraph g(num_vertices);
  g.arcs_.reserve(arcs.size());
  std::vector<size_t> counts(num_vertices + 1, 0);
  for (size_t i = 0; i < arcs.size();) {
    const VertexId from = std::get<0>(arcs[i]);
    const VertexId to = std::get<1>(arcs[i]);
    double weight = 0.0;
    while (i < arcs.size() && std::get<0>(arcs[i]) == from &&
           std::get<1>(arcs[i]) == to) {
      weight += std::get<2>(arcs[i]);
      ++i;
    }
    g.arcs_.push_back({to, weight});
    ++counts[from + 1];
  }
  for (uint32_t v = 0; v < num_vertices; ++v) counts[v + 1] += counts[v];
  g.offsets_ = std::move(counts);
  return g;
}

double WeightedBinaryGraph::OutWeight(VertexId v) const {
  double total = 0.0;
  for (const WeightedArc& arc : OutArcs(v)) total += arc.weight;
  return total;
}

BinaryGraph WeightedBinaryGraph::Structure() const {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(num_arcs());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const WeightedArc& arc : OutArcs(v)) arcs.emplace_back(v, arc.target);
  }
  return BinaryGraph::FromArcs(num_vertices_, std::move(arcs));
}

Result<std::vector<double>> DijkstraDistances(const WeightedBinaryGraph& graph,
                                              VertexId source) {
  const uint32_t n = graph.num_vertices();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  if (source >= n) return dist;

  for (VertexId v = 0; v < n; ++v) {
    for (const WeightedArc& arc : graph.OutArcs(v)) {
      if (arc.weight < 0.0) {
        return Status::InvalidArgument("Dijkstra requires non-negative "
                                       "weights");
      }
    }
  }

  using Entry = std::pair<double, VertexId>;  // (distance, vertex).
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;  // Stale entry.
    for (const WeightedArc& arc : graph.OutArcs(v)) {
      const double candidate = d + arc.weight;
      if (candidate < dist[arc.target]) {
        dist[arc.target] = candidate;
        queue.push({candidate, arc.target});
      }
    }
  }
  return dist;
}

Result<std::vector<double>> WeightedPageRank(
    const WeightedBinaryGraph& graph,
    const WeightedPageRankOptions& options) {
  const uint32_t n = graph.num_vertices();
  if (n == 0) return std::vector<double>{};
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must lie in [0, 1)");
  }
  // Pre-compute out-weights; vertices with zero out-weight are dangling.
  std::vector<double> out_weight(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    for (const WeightedArc& arc : graph.OutArcs(v)) {
      if (arc.weight < 0.0) {
        return Status::InvalidArgument(
            "weighted PageRank requires non-negative weights");
      }
      out_weight[v] += arc.weight;
    }
  }

  const double uniform = 1.0 / n;
  std::vector<double> rank(n, uniform), next(n);
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (out_weight[v] == 0.0) dangling += rank[v];
    }
    const double base = (1.0 - options.damping) * uniform +
                        options.damping * dangling * uniform;
    std::fill(next.begin(), next.end(), base);
    for (VertexId v = 0; v < n; ++v) {
      if (out_weight[v] == 0.0) continue;
      const double scale = options.damping * rank[v] / out_weight[v];
      for (const WeightedArc& arc : graph.OutArcs(v)) {
        next[arc.target] += scale * arc.weight;
      }
    }
    double delta = 0.0;
    for (uint32_t i = 0; i < n; ++i) delta += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < options.tolerance) return rank;
  }
  return Status::ResourceExhausted(
      "weighted PageRank did not converge within " +
      std::to_string(options.max_iterations) + " iterations");
}

}  // namespace mrpa
