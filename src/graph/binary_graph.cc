#include "graph/binary_graph.h"

#include <algorithm>
#include <cassert>

namespace mrpa {

BinaryGraph BinaryGraph::FromArcs(
    uint32_t num_vertices, std::vector<std::pair<VertexId, VertexId>> arcs) {
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  BinaryGraph g(num_vertices);
  g.targets_.reserve(arcs.size());
  for (const auto& [from, to] : arcs) {
    assert(from < num_vertices && to < num_vertices);
    ++g.offsets_[from + 1];
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  for (const auto& [from, to] : arcs) {
    (void)from;
    g.targets_.push_back(to);
  }
  return g;
}

bool BinaryGraph::HasArc(VertexId from, VertexId to) const {
  std::span<const VertexId> succ = OutNeighbors(from);
  return std::binary_search(succ.begin(), succ.end(), to);
}

BinaryGraph BinaryGraph::Reversed() const {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(num_arcs());
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    for (VertexId to : OutNeighbors(v)) arcs.emplace_back(to, v);
  }
  return FromArcs(num_vertices_, std::move(arcs));
}

BinaryGraph BinaryGraph::Symmetrized() const {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(num_arcs() * 2);
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    for (VertexId to : OutNeighbors(v)) {
      arcs.emplace_back(v, to);
      arcs.emplace_back(to, v);
    }
  }
  return FromArcs(num_vertices_, std::move(arcs));
}

std::vector<std::pair<VertexId, VertexId>> BinaryGraph::Arcs() const {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(num_arcs());
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    for (VertexId to : OutNeighbors(v)) arcs.emplace_back(v, to);
  }
  return arcs;
}

}  // namespace mrpa
