// MultiRelationalGraph: the canonical in-memory store for G = (V, E) with
// E ⊆ (V × Ω × V).
//
// Construction goes through MultiGraphBuilder (mutable, hash-backed); the
// finished graph is an immutable CSR-style snapshot:
//   * edges_      — every edge, sorted by (tail, label, head); E is a set,
//                   so duplicates inserted into the builder collapse.
//   * out_offsets_ — CSR offsets: OutEdges(v) is edges_[out_offsets_[v] ..
//                   out_offsets_[v+1]).
//   * in_index_ / in_offsets_ — per-head lists of edge indices.
//   * label_index_ / label_offsets_ — per-label lists of edge indices.
//
// Vertices and labels optionally carry string names through interning
// dictionaries, so examples can write g.AddEdge("marko", "knows", "peter")
// while the algebra sees dense ids.

#ifndef MRPA_GRAPH_MULTI_GRAPH_H_
#define MRPA_GRAPH_MULTI_GRAPH_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/edge.h"
#include "core/edge_universe.h"
#include "core/ids.h"
#include "util/status.h"

namespace mrpa {

// Bidirectional string <-> dense id interner shared by vertex and label
// namespaces.
class Dictionary {
 public:
  // Returns the id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  // Returns the id for `name` if present.
  std::optional<uint32_t> Find(std::string_view name) const;

  // The name for `id`; empty string for ids created without names.
  const std::string& NameOf(uint32_t id) const;

  // Grows the namespace to cover ids [0, count) with empty names.
  void EnsureSize(uint32_t count);

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

class MultiRelationalGraph;

// Accumulates vertices and edges, then Build()s the immutable snapshot.
class MultiGraphBuilder {
 public:
  MultiGraphBuilder() = default;

  // Named interface (examples, I/O).
  VertexId AddVertex(std::string_view name);
  LabelId AddLabel(std::string_view name);
  void AddEdge(std::string_view tail, std::string_view label,
               std::string_view head);

  // Id interface (generators, benches). Ids need not be pre-declared; the
  // vertex/label spaces grow to cover the maximum id seen.
  void AddEdge(VertexId tail, LabelId label, VertexId head);
  void AddEdge(const Edge& e) { AddEdge(e.tail, e.label, e.head); }

  // Ensures the built graph has at least this many vertices / labels even if
  // some have no incident edges.
  void ReserveVertices(uint32_t count);
  void ReserveLabels(uint32_t count);

  size_t num_staged_edges() const { return edges_.size(); }

  // Produces the snapshot; the builder may be reused afterwards (it keeps
  // its contents).
  MultiRelationalGraph Build() const;

 private:
  Dictionary vertices_;
  Dictionary labels_;
  std::vector<Edge> edges_;
  uint32_t min_vertices_ = 0;
  uint32_t min_labels_ = 0;
};

class MultiRelationalGraph final : public EdgeUniverse {
 public:
  // An empty graph (no vertices, labels, or edges).
  MultiRelationalGraph() = default;

  MultiRelationalGraph(const MultiRelationalGraph&) = default;
  MultiRelationalGraph& operator=(const MultiRelationalGraph&) = default;
  MultiRelationalGraph(MultiRelationalGraph&&) noexcept = default;
  MultiRelationalGraph& operator=(MultiRelationalGraph&&) noexcept = default;

  // --- EdgeUniverse -------------------------------------------------------
  uint32_t num_vertices() const override { return num_vertices_; }
  uint32_t num_labels() const override { return num_labels_; }
  size_t num_edges() const override { return edges_.size(); }
  std::span<const Edge> AllEdges() const override { return edges_; }
  std::span<const Edge> OutEdges(VertexId v) const override;
  std::span<const EdgeIndex> InEdgeIndices(VertexId v) const override;
  std::span<const EdgeIndex> LabelEdgeIndices(LabelId l) const override;

  // --- Degrees ------------------------------------------------------------
  size_t OutDegree(VertexId v) const { return OutEdges(v).size(); }
  size_t InDegree(VertexId v) const { return InEdgeIndices(v).size(); }

  // --- Names --------------------------------------------------------------
  std::optional<VertexId> FindVertex(std::string_view name) const {
    return vertex_names_.Find(name);
  }
  std::optional<LabelId> FindLabel(std::string_view name) const {
    return label_names_.Find(name);
  }
  const std::string& VertexName(VertexId v) const {
    return vertex_names_.NameOf(v);
  }
  const std::string& LabelName(LabelId l) const {
    return label_names_.NameOf(l);
  }

  // Renders an edge with names when available: "marko -knows-> peter".
  std::string DescribeEdge(const Edge& e) const;

 private:
  friend class MultiGraphBuilder;

  uint32_t num_vertices_ = 0;
  uint32_t num_labels_ = 0;
  std::vector<Edge> edges_;            // Sorted (tail, label, head), unique.
  std::vector<size_t> out_offsets_;    // Size num_vertices_ + 1.
  std::vector<EdgeIndex> in_index_;    // Grouped by head.
  std::vector<size_t> in_offsets_;     // Size num_vertices_ + 1.
  std::vector<EdgeIndex> label_index_; // Grouped by label.
  std::vector<size_t> label_offsets_;  // Size num_labels_ + 1.
  Dictionary vertex_names_;
  Dictionary label_names_;
};

}  // namespace mrpa

#endif  // MRPA_GRAPH_MULTI_GRAPH_H_
