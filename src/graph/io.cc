#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace mrpa {

Result<MultiRelationalGraph> ReadGraphText(std::istream& in) {
  MultiGraphBuilder builder;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string_view> fields = SplitWhitespace(trimmed);
    if (fields.size() != 3) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected 3 fields, got " +
                                std::to_string(fields.size()));
    }
    builder.AddEdge(fields[0], fields[1], fields[2]);
  }
  if (in.bad()) return Status::IOError("stream read failure");
  return builder.Build();
}

Result<MultiRelationalGraph> ReadGraphFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadGraphText(in);
}

Result<MultiRelationalGraph> ReadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return ReadGraphText(in);
}

namespace {

std::string TokenFor(const std::string& name, uint32_t id) {
  return name.empty() ? "@" + std::to_string(id) : name;
}

}  // namespace

Status WriteGraphText(const MultiRelationalGraph& graph, std::ostream& out) {
  out << "# mrpa multi-relational graph: " << graph.num_vertices()
      << " vertices, " << graph.num_labels() << " labels, "
      << graph.num_edges() << " edges\n";
  for (const Edge& e : graph.AllEdges()) {
    out << TokenFor(graph.VertexName(e.tail), e.tail) << '\t'
        << TokenFor(graph.LabelName(e.label), e.label) << '\t'
        << TokenFor(graph.VertexName(e.head), e.head) << '\n';
  }
  if (!out) return Status::IOError("stream write failure");
  return Status::OK();
}

Status WriteGraphFile(const MultiRelationalGraph& graph,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return WriteGraphText(graph, out);
}

namespace {

// DOT identifiers with special characters must be quoted; quotes escaped.
std::string DotQuote(const std::string& token) {
  std::string quoted = "\"";
  for (char c : token) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Status WriteDot(const MultiRelationalGraph& graph, std::ostream& out) {
  out << "digraph mrpa {\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out << "  " << v;
    const std::string& name = graph.VertexName(v);
    if (!name.empty()) out << " [label=" << DotQuote(name) << "]";
    out << ";\n";
  }
  for (const Edge& e : graph.AllEdges()) {
    out << "  " << e.tail << " -> " << e.head << " [label="
        << DotQuote(TokenFor(graph.LabelName(e.label), e.label)) << "];\n";
  }
  out << "}\n";
  if (!out) return Status::IOError("stream write failure");
  return Status::OK();
}

std::string SummarizeGraph(const MultiRelationalGraph& graph) {
  std::ostringstream os;
  os << "vertices: " << graph.num_vertices() << "\n"
     << "labels:   " << graph.num_labels() << "\n"
     << "edges:    " << graph.num_edges() << "\n";
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    os << "  relation '"
       << TokenFor(graph.LabelName(l), l) << "': "
       << graph.LabelEdgeIndices(l).size() << " edges\n";
  }
  size_t max_out = 0, max_in = 0;
  VertexId argmax_out = 0, argmax_in = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > max_out) {
      max_out = graph.OutDegree(v);
      argmax_out = v;
    }
    if (graph.InDegree(v) > max_in) {
      max_in = graph.InDegree(v);
      argmax_in = v;
    }
  }
  if (graph.num_vertices() > 0) {
    os << "max out-degree: " << max_out << " (vertex "
       << TokenFor(graph.VertexName(argmax_out), argmax_out) << ")\n"
       << "max in-degree:  " << max_in << " (vertex "
       << TokenFor(graph.VertexName(argmax_in), argmax_in) << ")\n";
    const double denominator = static_cast<double>(graph.num_vertices()) *
                               graph.num_vertices() *
                               std::max<uint32_t>(graph.num_labels(), 1);
    os << "density (|E| / |V|²|Ω|): "
       << static_cast<double>(graph.num_edges()) / denominator << "\n";
  }
  return os.str();
}

}  // namespace mrpa
