#include "graph/io.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>

#include "util/fault_injector.h"
#include "util/string_util.h"

namespace mrpa {

namespace {

// Reads one line without buffering past the cap: a hostile overlong line
// is flagged after max_bytes + 1 characters, not after the whole line is
// in memory. Returns false at EOF with nothing read.
bool ReadBoundedLine(std::istream& in, std::string& line, size_t max_bytes,
                     bool& overlong) {
  line.clear();
  overlong = false;
  bool read_any = false;
  char c;
  while (in.get(c)) {
    read_any = true;
    if (c == '\n') return true;
    if (line.size() >= max_bytes) {
      overlong = true;
      return true;
    }
    line.push_back(c);
  }
  return read_any;
}

// Validates '@NNN' numeric-id tokens (WriteGraphText's encoding for
// unnamed vertices/labels): a non-digit tail or an id past the cap marks
// the input corrupt instead of silently interning a fresh name.
Status ValidateNumericToken(std::string_view token, uint32_t max_numeric_id,
                            size_t line_number) {
  if (token.size() < 2 || token.front() != '@') return Status::OK();
  uint64_t value = 0;
  for (char c : token.substr(1)) {
    if (c < '0' || c > '9') {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": malformed numeric token '" +
                                std::string(token) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > max_numeric_id) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": numeric id out of range in '" +
                                std::string(token) + "'");
    }
  }
  return Status::OK();
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

// Percent-decodes a token in place of `out`. Tokens without '%' are the
// common case and copy through untouched; a '%' not followed by two hex
// digits is corruption, never silently passed along.
Status DecodeToken(std::string_view raw, std::string& out,
                   size_t line_number) {
  out.assign(raw);
  if (raw.find('%') == std::string_view::npos) return Status::OK();
  out.clear();
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '%') {
      out.push_back(raw[i]);
      continue;
    }
    const int hi = i + 1 < raw.size() ? HexValue(raw[i + 1]) : -1;
    const int lo = i + 2 < raw.size() ? HexValue(raw[i + 2]) : -1;
    if (hi < 0 || lo < 0) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": malformed percent escape in '" +
                                std::string(raw) + "'");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return Status::OK();
}

}  // namespace

Result<MultiRelationalGraph> ReadGraphText(std::istream& in,
                                           const GraphReadLimits& limits) {
  MultiGraphBuilder builder;
  std::string line;
  size_t line_number = 0;
  size_t edges = 0;
  bool overlong = false;
  while (ReadBoundedLine(in, line, limits.max_line_bytes, overlong)) {
    ++line_number;
    MRPA_RETURN_IF_ERROR(FaultProbe(kFaultSiteIoRead));
    if (limits.exec != nullptr) {
      MRPA_RETURN_IF_ERROR(limits.exec->CheckStep());
      MRPA_RETURN_IF_ERROR(limits.exec->ChargeBytes(line.size() + 1));
    }
    if (overlong) {
      return Status::Corruption(
          "line " + std::to_string(line_number) +
          " exceeds max_line_bytes = " + std::to_string(limits.max_line_bytes));
    }
    if (limits.max_lines && line_number > *limits.max_lines) {
      return Status::ResourceExhausted(
          "input exceeds max_lines = " + std::to_string(*limits.max_lines));
    }
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string_view> fields = SplitWhitespace(trimmed);
    if (fields.size() != 3) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected 3 fields, got " +
                                std::to_string(fields.size()));
    }
    std::array<std::string, 3> decoded;
    for (size_t i = 0; i < 3; ++i) {
      // Numeric-token validation sees the raw token: escaped names can
      // never start with '@', so a raw leading '@' always means an id.
      MRPA_RETURN_IF_ERROR(
          ValidateNumericToken(fields[i], limits.max_numeric_id, line_number));
      MRPA_RETURN_IF_ERROR(DecodeToken(fields[i], decoded[i], line_number));
    }
    if (limits.max_edges && ++edges > *limits.max_edges) {
      return Status::ResourceExhausted(
          "input exceeds max_edges = " + std::to_string(*limits.max_edges));
    }
    builder.AddEdge(decoded[0], decoded[1], decoded[2]);
  }
  if (in.bad()) return Status::IOError("stream read failure");
  return builder.Build();
}

Result<MultiRelationalGraph> ReadGraphText(std::istream& in) {
  return ReadGraphText(in, GraphReadLimits{});
}

Result<MultiRelationalGraph> ReadGraphFromString(const std::string& text,
                                                 const GraphReadLimits& limits) {
  std::istringstream in(text);
  return ReadGraphText(in, limits);
}

Result<MultiRelationalGraph> ReadGraphFromString(const std::string& text) {
  return ReadGraphFromString(text, GraphReadLimits{});
}

Result<MultiRelationalGraph> ReadGraphFile(const std::string& path,
                                           const GraphReadLimits& limits) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return ReadGraphText(in, limits);
}

Result<MultiRelationalGraph> ReadGraphFile(const std::string& path) {
  return ReadGraphFile(path, GraphReadLimits{});
}

namespace {

std::string TokenFor(const std::string& name, uint32_t id) {
  return name.empty() ? "@" + std::to_string(id) : name;
}

bool NeedsEscape(unsigned char c) {
  return c <= 0x20 || c == 0x7F || c == '%' || c == '#';
}

// Escapes a name so it survives tokenization: whitespace/controls, '%',
// '#', and a leading '@' become %XX. Everything else (including non-ASCII
// bytes) passes through raw.
std::string EscapeToken(const std::string& name) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    if (NeedsEscape(c) || (i == 0 && c == '@')) {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    } else {
      out.push_back(name[i]);
    }
  }
  return out;
}

std::string EscapedTokenFor(const std::string& name, uint32_t id) {
  return name.empty() ? "@" + std::to_string(id) : EscapeToken(name);
}

}  // namespace

Status WriteGraphText(const MultiRelationalGraph& graph, std::ostream& out) {
  out << "# mrpa multi-relational graph: " << graph.num_vertices()
      << " vertices, " << graph.num_labels() << " labels, "
      << graph.num_edges() << " edges\n";
  for (const Edge& e : graph.AllEdges()) {
    out << EscapedTokenFor(graph.VertexName(e.tail), e.tail) << '\t'
        << EscapedTokenFor(graph.LabelName(e.label), e.label) << '\t'
        << EscapedTokenFor(graph.VertexName(e.head), e.head) << '\n';
  }
  if (!out) return Status::IOError("stream write failure");
  return Status::OK();
}

Status WriteGraphFile(const MultiRelationalGraph& graph,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return WriteGraphText(graph, out);
}

namespace {

// DOT identifiers with special characters must be quoted; quotes escaped.
std::string DotQuote(const std::string& token) {
  std::string quoted = "\"";
  for (char c : token) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Status WriteDot(const MultiRelationalGraph& graph, std::ostream& out) {
  out << "digraph mrpa {\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out << "  " << v;
    const std::string& name = graph.VertexName(v);
    if (!name.empty()) out << " [label=" << DotQuote(name) << "]";
    out << ";\n";
  }
  for (const Edge& e : graph.AllEdges()) {
    out << "  " << e.tail << " -> " << e.head << " [label="
        << DotQuote(TokenFor(graph.LabelName(e.label), e.label)) << "];\n";
  }
  out << "}\n";
  if (!out) return Status::IOError("stream write failure");
  return Status::OK();
}

std::string SummarizeGraph(const MultiRelationalGraph& graph) {
  std::ostringstream os;
  os << "vertices: " << graph.num_vertices() << "\n"
     << "labels:   " << graph.num_labels() << "\n"
     << "edges:    " << graph.num_edges() << "\n";
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    os << "  relation '"
       << TokenFor(graph.LabelName(l), l) << "': "
       << graph.LabelEdgeIndices(l).size() << " edges\n";
  }
  size_t max_out = 0, max_in = 0;
  VertexId argmax_out = 0, argmax_in = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > max_out) {
      max_out = graph.OutDegree(v);
      argmax_out = v;
    }
    if (graph.InDegree(v) > max_in) {
      max_in = graph.InDegree(v);
      argmax_in = v;
    }
  }
  if (graph.num_vertices() > 0) {
    os << "max out-degree: " << max_out << " (vertex "
       << TokenFor(graph.VertexName(argmax_out), argmax_out) << ")\n"
       << "max in-degree:  " << max_in << " (vertex "
       << TokenFor(graph.VertexName(argmax_in), argmax_in) << ")\n";
    const double denominator = static_cast<double>(graph.num_vertices()) *
                               graph.num_vertices() *
                               std::max<uint32_t>(graph.num_labels(), 1);
    os << "density (|E| / |V|²|Ω|): "
       << static_cast<double>(graph.num_edges()) / denominator << "\n";
  }
  return os.str();
}

}  // namespace mrpa
