// DynamicMultiGraph: a mutable multi-relational graph with cheap edge
// insertion/removal, directly usable everywhere an EdgeUniverse is
// accepted.
//
// Cost model (the reason this exists next to the immutable snapshot):
//   * AddEdge / RemoveEdge        O(out-degree) — sorted insert into the
//                                 tail vertex's adjacency vector
//   * OutEdges / OutEdgesWithLabel  always fast; served straight from the
//                                 per-vertex vectors, never stale
//   * AllEdges / InEdgeIndices / LabelEdgeIndices
//                                 lazily rebuilt after a mutation burst
//                                 (O(|E| log |E|) once, then cached)
//
// A traversal engine alternates mutation phases and query phases; this
// layout makes each phase pay only for what it touches. Snapshot() freezes
// the current state into an immutable MultiRelationalGraph (names carried
// over when constructed from one).
//
// Thread-compatibility: like a standard container — concurrent const
// queries are safe (the lazy cache rebuild is internally synchronized with
// a mutex + atomic dirty flag, so many readers may race to the first
// AllEdges()/InEdgeIndices()/LabelEdgeIndices() after a mutation burst),
// but a mutation requires exclusive access: no concurrent reads or writes.
// Freeze to a Snapshot() for shared access concurrent with further
// mutation.

#ifndef MRPA_GRAPH_DYNAMIC_GRAPH_H_
#define MRPA_GRAPH_DYNAMIC_GRAPH_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "core/edge_universe.h"
#include "graph/multi_graph.h"
#include "util/status.h"

namespace mrpa {

class DynamicMultiGraph final : public EdgeUniverse {
 public:
  // An empty graph over the given spaces (both may grow via AddEdge).
  explicit DynamicMultiGraph(uint32_t num_vertices = 0,
                             uint32_t num_labels = 0);

  // Thaws an immutable snapshot (O(|E|)).
  explicit DynamicMultiGraph(const MultiRelationalGraph& snapshot);

  // --- Mutation ------------------------------------------------------------
  // Inserts e; grows the vertex/label spaces to cover its ids. Fails with
  // AlreadyExists when e ∈ E (E is a set).
  Status AddEdge(const Edge& e);

  // Removes e; fails with NotFound when e ∉ E.
  Status RemoveEdge(const Edge& e);

  // --- EdgeUniverse ----------------------------------------------------------
  uint32_t num_vertices() const override { return num_vertices_; }
  uint32_t num_labels() const override { return num_labels_; }
  size_t num_edges() const override { return num_edges_; }
  std::span<const Edge> OutEdges(VertexId v) const override;
  std::span<const Edge> AllEdges() const override;
  std::span<const EdgeIndex> InEdgeIndices(VertexId v) const override;
  std::span<const EdgeIndex> LabelEdgeIndices(LabelId l) const override;
  bool HasEdge(const Edge& e) const override;

  // Freezes into an immutable CSR snapshot.
  MultiRelationalGraph Snapshot() const;

  // True when the next AllEdges()/In/Label query will pay a rebuild.
  bool IndexesDirty() const {
    return dirty_.load(std::memory_order_acquire);
  }

 private:
  void EnsureVertex(VertexId v);
  void EnsureLabel(LabelId l);
  // Rebuilds if dirty, double-checked under cache_mu_: the unlocked acquire
  // load keeps clean-cache queries mutex-free; losing racers re-test under
  // the lock and find the rebuild already done.
  void EnsureCaches() const;
  void RebuildCaches() const;

  uint32_t num_vertices_ = 0;
  uint32_t num_labels_ = 0;
  size_t num_edges_ = 0;
  // out_[v]: sorted by (label, head) — the same order a snapshot's run has.
  std::vector<std::vector<Edge>> out_;

  // Lazy caches mirroring MultiRelationalGraph's derived indices. dirty_'s
  // release store at rebuild end pairs with the acquire load in
  // EnsureCaches()/IndexesDirty(), publishing the cache vectors to readers
  // that skip the mutex.
  mutable std::mutex cache_mu_;
  mutable std::atomic<bool> dirty_{true};
  mutable std::vector<Edge> all_edges_;
  mutable std::vector<EdgeIndex> in_index_;
  mutable std::vector<size_t> in_offsets_;
  mutable std::vector<EdgeIndex> label_index_;
  mutable std::vector<size_t> label_offsets_;
};

}  // namespace mrpa

#endif  // MRPA_GRAPH_DYNAMIC_GRAPH_H_
