#include "graph/projection.h"

#include <utility>

#include "core/traversal.h"
#include "frontier/bitmap.h"
#include "util/fault_injector.h"

namespace mrpa {

namespace {

// Reachability-only derivation of E_{α1...αk}: the projection discards
// everything about a path except its endpoints, so enumerating paths (the
// LabeledTraversal route, combinatorial in the worst case) is wasted work —
// per source vertex, one bitmap frontier stepped through the label sequence
// visits each (vertex, level) at most once and never touches a PathArena.
// Each step is itself adaptive: a narrow frontier walks per-vertex label
// sub-runs (sparse), a wide one sweeps the label's whole edge run testing
// tail bits (dense — the boolean matrix-row step of the linear-algebra
// view). Output is identical to the enumeration route because
// BinaryGraph::FromArcs dedups: both compute { (i, j) | some α-sequence
// path i → j }.
BinaryGraph DeriveByReachability(const MultiRelationalGraph& graph,
                                 const std::vector<LabelId>& labels) {
  const uint32_t n = graph.num_vertices();
  std::vector<std::pair<VertexId, VertexId>> arcs;
  frontier::BitmapFrontier cur(n);
  frontier::BitmapFrontier next(n);
  for (VertexId i = 0; i < n; ++i) {
    // Seed {i} and step through the sequence; bail as soon as the frontier
    // dies — most sources reach nothing for a selective sequence.
    cur.ClearAll();
    cur.Set(i);
    uint64_t count = 1;
    for (LabelId label : labels) {
      next.ClearAll();
      const std::span<const EdgeIndex> run = graph.LabelEdgeIndices(label);
      // Dense sweep when the frontier covers enough of V that per-vertex
      // sub-run lookups would touch most of the label run anyway; the sweep
      // reads the run once, sequentially, with one bit probe per edge.
      if (count >= n / 8 + 1) {
        for (EdgeIndex idx : run) {
          const Edge& e = graph.EdgeAt(idx);
          if (cur.Test(e.tail)) next.Set(e.head);
        }
      } else {
        cur.ForEachSet([&](VertexId v) {
          for (const Edge& e : graph.OutEdgesWithLabel(v, label)) {
            next.Set(e.head);
          }
        });
      }
      std::swap(cur, next);
      count = cur.Count();
      if (count == 0) break;
    }
    if (count == 0) continue;
    cur.ForEachSet([&](VertexId j) { arcs.emplace_back(i, j); });
  }
  return BinaryGraph::FromArcs(n, std::move(arcs));
}

}  // namespace

BinaryGraph FlattenIgnoringLabels(const MultiRelationalGraph& graph) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(graph.num_edges());
  for (const Edge& e : graph.AllEdges()) arcs.emplace_back(e.tail, e.head);
  return BinaryGraph::FromArcs(graph.num_vertices(), std::move(arcs));
}

BinaryGraph ExtractLabelRelation(const MultiRelationalGraph& graph,
                                 LabelId label) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  for (EdgeIndex idx : graph.LabelEdgeIndices(label)) {
    const Edge& e = graph.EdgeAt(idx);
    arcs.emplace_back(e.tail, e.head);
  }
  return BinaryGraph::FromArcs(graph.num_vertices(), std::move(arcs));
}

BinaryGraph ProjectPaths(const PathSet& paths, uint32_t num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(paths.size());
  for (const Path& p : paths) {
    if (p.empty()) continue;
    arcs.emplace_back(p.Tail(), p.Head());
  }
  return BinaryGraph::FromArcs(num_vertices, std::move(arcs));
}

Result<BinaryGraph> DeriveLabelSequenceRelation(
    const MultiRelationalGraph& graph, const std::vector<LabelId>& labels,
    const PathSetLimits& limits) {
  // The reachability fast path never counts paths and never probes fault
  // sites, so it only applies when neither is observable: no max_paths (its
  // hard-error semantics hinge on the path COUNT the fast path never
  // computes) and no armed injector (the enumeration route probes
  // per-extension sites a deterministic number of times). Length-1
  // sequences stay on the enumeration route too: E_α is one label-run copy
  // there, while per-source frontier resets alone would cost O(|V|²/64).
  // E22 measures the gap against the enumeration route below.
  if (labels.size() >= 2 && !limits.max_paths.has_value() &&
      !FaultInjector::AnyArmed()) {
    return DeriveByReachability(graph, labels);
  }
  std::vector<std::vector<LabelId>> steps;
  steps.reserve(labels.size());
  for (LabelId l : labels) steps.push_back({l});
  Result<PathSet> paths = LabeledTraversal(graph, steps, limits);
  if (!paths.ok()) return paths.status();
  return ProjectPaths(paths.value(), graph.num_vertices());
}

Result<BinaryGraph> DeriveRelation(const MultiRelationalGraph& graph,
                                   const PathExpr& expr,
                                   const EvalOptions& options) {
  Result<PathSet> paths = expr.Evaluate(graph, options);
  if (!paths.ok()) return paths.status();
  return ProjectPaths(paths.value(), graph.num_vertices());
}

}  // namespace mrpa
