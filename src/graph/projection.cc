#include "graph/projection.h"

#include <utility>

#include "core/traversal.h"

namespace mrpa {

BinaryGraph FlattenIgnoringLabels(const MultiRelationalGraph& graph) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(graph.num_edges());
  for (const Edge& e : graph.AllEdges()) arcs.emplace_back(e.tail, e.head);
  return BinaryGraph::FromArcs(graph.num_vertices(), std::move(arcs));
}

BinaryGraph ExtractLabelRelation(const MultiRelationalGraph& graph,
                                 LabelId label) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  for (EdgeIndex idx : graph.LabelEdgeIndices(label)) {
    const Edge& e = graph.EdgeAt(idx);
    arcs.emplace_back(e.tail, e.head);
  }
  return BinaryGraph::FromArcs(graph.num_vertices(), std::move(arcs));
}

BinaryGraph ProjectPaths(const PathSet& paths, uint32_t num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(paths.size());
  for (const Path& p : paths) {
    if (p.empty()) continue;
    arcs.emplace_back(p.Tail(), p.Head());
  }
  return BinaryGraph::FromArcs(num_vertices, std::move(arcs));
}

Result<BinaryGraph> DeriveLabelSequenceRelation(
    const MultiRelationalGraph& graph, const std::vector<LabelId>& labels,
    const PathSetLimits& limits) {
  std::vector<std::vector<LabelId>> steps;
  steps.reserve(labels.size());
  for (LabelId l : labels) steps.push_back({l});
  Result<PathSet> paths = LabeledTraversal(graph, steps, limits);
  if (!paths.ok()) return paths.status();
  return ProjectPaths(paths.value(), graph.num_vertices());
}

Result<BinaryGraph> DeriveRelation(const MultiRelationalGraph& graph,
                                   const PathExpr& expr,
                                   const EvalOptions& options) {
  Result<PathSet> paths = expr.Evaluate(graph, options);
  if (!paths.ok()) return paths.status();
  return ProjectPaths(paths.value(), graph.num_vertices());
}

}  // namespace mrpa
