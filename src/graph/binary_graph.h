// BinaryGraph: a single-relational (unlabeled, directed) graph
// G¨ = (V¨, E¨ ⊆ V¨ × V¨) in CSR form.
//
// This is the *output* side of §IV-C: path projections over the
// multi-relational graph produce binary edge sets (e.g. E_α, E_αβ), and the
// single-relational algorithm library (src/algorithms/) consumes this type.

#ifndef MRPA_GRAPH_BINARY_GRAPH_H_
#define MRPA_GRAPH_BINARY_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/ids.h"

namespace mrpa {

class BinaryGraph {
 public:
  // An empty graph over `num_vertices` isolated vertices.
  explicit BinaryGraph(uint32_t num_vertices = 0)
      : num_vertices_(num_vertices), offsets_(num_vertices + 1, 0) {}

  // Builds from an arbitrary (possibly duplicated) arc list; duplicates
  // collapse (E¨ is a set). Vertex ids must be < num_vertices.
  static BinaryGraph FromArcs(
      uint32_t num_vertices,
      std::vector<std::pair<VertexId, VertexId>> arcs);

  uint32_t num_vertices() const { return num_vertices_; }
  size_t num_arcs() const { return targets_.size(); }

  // Successors of v, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    if (v >= num_vertices_) return {};
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  size_t OutDegree(VertexId v) const { return OutNeighbors(v).size(); }

  bool HasArc(VertexId from, VertexId to) const;

  // The reversed graph (arc (i,j) becomes (j,i)); used by algorithms that
  // need predecessor access.
  BinaryGraph Reversed() const;

  // The symmetric closure: every arc plus its reverse. Several classical
  // centralities are defined over undirected graphs.
  BinaryGraph Symmetrized() const;

  // All arcs as pairs, in CSR order.
  std::vector<std::pair<VertexId, VertexId>> Arcs() const;

  friend bool operator==(const BinaryGraph&, const BinaryGraph&) = default;

 private:
  uint32_t num_vertices_ = 0;
  std::vector<size_t> offsets_;    // Size num_vertices_ + 1.
  std::vector<VertexId> targets_;  // Sorted within each vertex's run.
};

}  // namespace mrpa

#endif  // MRPA_GRAPH_BINARY_GRAPH_H_
