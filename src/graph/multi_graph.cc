#include "graph/multi_graph.h"

#include <algorithm>
#include <cassert>

namespace mrpa {

uint32_t Dictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::NameOf(uint32_t id) const {
  static const std::string kEmpty;
  return id < names_.size() ? names_[id] : kEmpty;
}

void Dictionary::EnsureSize(uint32_t count) {
  while (names_.size() < count) names_.emplace_back();
}

VertexId MultiGraphBuilder::AddVertex(std::string_view name) {
  return vertices_.Intern(name);
}

LabelId MultiGraphBuilder::AddLabel(std::string_view name) {
  return labels_.Intern(name);
}

void MultiGraphBuilder::AddEdge(std::string_view tail, std::string_view label,
                                std::string_view head) {
  // Intern in tail, label, head order explicitly — doing it inside the
  // AddEdge call would leave id assignment to the compiler's argument
  // evaluation order, breaking cross-platform determinism.
  VertexId tail_id = vertices_.Intern(tail);
  LabelId label_id = labels_.Intern(label);
  VertexId head_id = vertices_.Intern(head);
  AddEdge(tail_id, label_id, head_id);
}

void MultiGraphBuilder::AddEdge(VertexId tail, LabelId label, VertexId head) {
  assert(tail != kInvalidVertex && head != kInvalidVertex &&
         label != kInvalidLabel);
  edges_.emplace_back(tail, label, head);
  min_vertices_ = std::max({min_vertices_, tail + 1, head + 1});
  min_labels_ = std::max(min_labels_, label + 1);
}

void MultiGraphBuilder::ReserveVertices(uint32_t count) {
  min_vertices_ = std::max(min_vertices_, count);
}

void MultiGraphBuilder::ReserveLabels(uint32_t count) {
  min_labels_ = std::max(min_labels_, count);
}

MultiRelationalGraph MultiGraphBuilder::Build() const {
  MultiRelationalGraph g;
  g.num_vertices_ = std::max(min_vertices_, vertices_.size());
  g.num_labels_ = std::max(min_labels_, labels_.size());
  g.vertex_names_ = vertices_;
  g.label_names_ = labels_;
  g.vertex_names_.EnsureSize(g.num_vertices_);
  g.label_names_.EnsureSize(g.num_labels_);

  // Canonicalize E as a set.
  g.edges_ = edges_;
  std::sort(g.edges_.begin(), g.edges_.end());
  g.edges_.erase(std::unique(g.edges_.begin(), g.edges_.end()),
                 g.edges_.end());

  const size_t num_edges = g.edges_.size();
  const uint32_t num_vertices = g.num_vertices_;
  const uint32_t num_labels = g.num_labels_;

  // Out-adjacency offsets: counting sort over the already-sorted edge array.
  g.out_offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : g.edges_) ++g.out_offsets_[e.tail + 1];
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }

  // In-index: edge positions grouped by head.
  g.in_offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : g.edges_) ++g.in_offsets_[e.head + 1];
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_index_.assign(num_edges, 0);
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(),
                               g.in_offsets_.end() - 1);
    for (size_t i = 0; i < num_edges; ++i) {
      g.in_index_[cursor[g.edges_[i].head]++] = static_cast<EdgeIndex>(i);
    }
  }

  // Label index: edge positions grouped by label.
  g.label_offsets_.assign(num_labels + 1, 0);
  for (const Edge& e : g.edges_) ++g.label_offsets_[e.label + 1];
  for (uint32_t l = 0; l < num_labels; ++l) {
    g.label_offsets_[l + 1] += g.label_offsets_[l];
  }
  g.label_index_.assign(num_edges, 0);
  {
    std::vector<size_t> cursor(g.label_offsets_.begin(),
                               g.label_offsets_.end() - 1);
    for (size_t i = 0; i < num_edges; ++i) {
      g.label_index_[cursor[g.edges_[i].label]++] = static_cast<EdgeIndex>(i);
    }
  }

  return g;
}

std::span<const Edge> MultiRelationalGraph::OutEdges(VertexId v) const {
  if (v >= num_vertices_) return {};
  return std::span<const Edge>(edges_.data() + out_offsets_[v],
                               out_offsets_[v + 1] - out_offsets_[v]);
}

std::span<const EdgeIndex> MultiRelationalGraph::InEdgeIndices(
    VertexId v) const {
  if (v >= num_vertices_) return {};
  return std::span<const EdgeIndex>(in_index_.data() + in_offsets_[v],
                                    in_offsets_[v + 1] - in_offsets_[v]);
}

std::span<const EdgeIndex> MultiRelationalGraph::LabelEdgeIndices(
    LabelId l) const {
  if (l >= num_labels_) return {};
  return std::span<const EdgeIndex>(
      label_index_.data() + label_offsets_[l],
      label_offsets_[l + 1] - label_offsets_[l]);
}

std::string MultiRelationalGraph::DescribeEdge(const Edge& e) const {
  const std::string& tail = VertexName(e.tail);
  const std::string& label = LabelName(e.label);
  const std::string& head = VertexName(e.head);
  std::string out = tail.empty() ? std::to_string(e.tail) : tail;
  out += " -";
  out += label.empty() ? std::to_string(e.label) : label;
  out += "-> ";
  out += head.empty() ? std::to_string(e.head) : head;
  return out;
}

}  // namespace mrpa
