// §IV-C: constructing "semantically rich" single-relational graphs from a
// multi-relational graph.
//
// The paper describes three methods of feeding a multi-relational graph to
// single-relational algorithms; all three are implemented so experiment E8
// can compare them:
//
//   1. FlattenIgnoringLabels — ignore edge labels (and collapse repeated
//      edges between the same vertex pair). The paper's "loss of meaning"
//      method.
//   2. ExtractLabelRelation  — E_α = {(γ−(e), γ+(e)) | e ∈ E ∧ ω(e) = α}:
//      pull out a single relation by label.
//   3. ProjectPaths / DeriveRelation — E_αβ = ⋃_{a ∈ A ⋈◦ B} (γ−(a), γ+(a)):
//      derive *implicit* edges from paths, either from an explicit label
//      sequence (αβ-paths) or from any PathExpr via the regular path
//      generator.

#ifndef MRPA_GRAPH_PROJECTION_H_
#define MRPA_GRAPH_PROJECTION_H_

#include <vector>

#include "core/expr.h"
#include "core/path_set.h"
#include "graph/binary_graph.h"
#include "graph/multi_graph.h"
#include "util/status.h"

namespace mrpa {

// Method 1: the label-ignoring flattening. Every (i, α, j) becomes (i, j).
BinaryGraph FlattenIgnoringLabels(const MultiRelationalGraph& graph);

// Method 2: E_α — the single relation named by `label`.
BinaryGraph ExtractLabelRelation(const MultiRelationalGraph& graph,
                                 LabelId label);

// Endpoint projection ⋃_{a ∈ paths} (γ−(a), γ+(a)). Paths must be non-ε to
// contribute (ε has no endpoints); ε paths are skipped.
BinaryGraph ProjectPaths(const PathSet& paths, uint32_t num_vertices);

// Method 3a: E_{α1...αk} — endpoints of all joint paths whose path label is
// exactly the given sequence (the paper's E_αβ generalized to length k).
Result<BinaryGraph> DeriveLabelSequenceRelation(
    const MultiRelationalGraph& graph, const std::vector<LabelId>& labels,
    const PathSetLimits& limits = {});

// Method 3b: the general form — endpoints of all paths denoted by `expr`
// (a regular path generator feeds this; see regex/generator.h).
Result<BinaryGraph> DeriveRelation(const MultiRelationalGraph& graph,
                                   const PathExpr& expr,
                                   const EvalOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_GRAPH_PROJECTION_H_
