// WeightedBinaryGraph: a single-relational graph with per-arc weights.
//
// §IV-C derives *relations* from paths; its natural refinement derives
// *weighted* relations — the weight of arc (u, v) being, e.g., the number
// of witnessing paths (see regex/derived_relations.h). This type carries
// such weights into weighted consumers: Dijkstra and weighted PageRank.

#ifndef MRPA_GRAPH_WEIGHTED_GRAPH_H_
#define MRPA_GRAPH_WEIGHTED_GRAPH_H_

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "core/ids.h"
#include "graph/binary_graph.h"
#include "util/status.h"

namespace mrpa {

struct WeightedArc {
  VertexId target;
  double weight;

  friend bool operator==(const WeightedArc&, const WeightedArc&) = default;
};

class WeightedBinaryGraph {
 public:
  explicit WeightedBinaryGraph(uint32_t num_vertices = 0)
      : num_vertices_(num_vertices), offsets_(num_vertices + 1, 0) {}

  // Builds from (from, to, weight) triples. Duplicate (from, to) pairs
  // combine by summing weights (the natural semantics for witness counts).
  static WeightedBinaryGraph FromArcs(
      uint32_t num_vertices,
      std::vector<std::tuple<VertexId, VertexId, double>> arcs);

  uint32_t num_vertices() const { return num_vertices_; }
  size_t num_arcs() const { return arcs_.size(); }

  std::span<const WeightedArc> OutArcs(VertexId v) const {
    if (v >= num_vertices_) return {};
    return std::span<const WeightedArc>(arcs_.data() + offsets_[v],
                                        offsets_[v + 1] - offsets_[v]);
  }

  // Total weight leaving v.
  double OutWeight(VertexId v) const;

  // The unweighted skeleton.
  BinaryGraph Structure() const;

 private:
  uint32_t num_vertices_ = 0;
  std::vector<size_t> offsets_;
  std::vector<WeightedArc> arcs_;  // Sorted by target within each vertex.
};

// Dijkstra single-source shortest paths over non-negative arc weights.
// Fails with InvalidArgument on any negative weight. Unreachable vertices
// get +infinity.
Result<std::vector<double>> DijkstraDistances(const WeightedBinaryGraph& graph,
                                              VertexId source);

// PageRank where the walker follows arcs with probability proportional to
// weight. Dangling mass redistributes uniformly; scores sum to 1.
struct WeightedPageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 200;
  double tolerance = 1e-12;
};
Result<std::vector<double>> WeightedPageRank(
    const WeightedBinaryGraph& graph,
    const WeightedPageRankOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_GRAPH_WEIGHTED_GRAPH_H_
