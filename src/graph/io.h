// Text I/O for multi-relational graphs.
//
// Format ("MRG-TSV"): one edge per line, three tab- (or whitespace-)
// separated fields `tail label head`. Fields are arbitrary tokens, interned
// as names. Lines starting with '#' and blank lines are ignored.
//
//   # a tiny social network
//   marko   knows     peter
//   marko   created   mrpa
//   peter   created   mrpa

#ifndef MRPA_GRAPH_IO_H_
#define MRPA_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/multi_graph.h"
#include "util/status.h"

namespace mrpa {

// Parses MRG-TSV from a stream / string / file.
Result<MultiRelationalGraph> ReadGraphText(std::istream& in);
Result<MultiRelationalGraph> ReadGraphFromString(const std::string& text);
Result<MultiRelationalGraph> ReadGraphFile(const std::string& path);

// Writes MRG-TSV. Vertices or labels without names are written as numeric
// ids prefixed with '@' (e.g. "@17"); ReadGraphText treats such tokens as
// ordinary names, so write→read round-trips are stable but not id-preserving.
Status WriteGraphText(const MultiRelationalGraph& graph, std::ostream& out);
Status WriteGraphFile(const MultiRelationalGraph& graph,
                      const std::string& path);

// Graphviz DOT export: one digraph, edge labels from Ω, vertex names when
// present. For eyeballing small graphs (`dot -Tsvg`).
Status WriteDot(const MultiRelationalGraph& graph, std::ostream& out);

// Shape summary: sizes, per-label edge counts, degree extremes. One line
// per fact, used by mrpa_shell's :summary and handy in logs.
std::string SummarizeGraph(const MultiRelationalGraph& graph);

}  // namespace mrpa

#endif  // MRPA_GRAPH_IO_H_
