// Text I/O for multi-relational graphs.
//
// Format ("MRG-TSV"): one edge per line, three tab- (or whitespace-)
// separated fields `tail label head`. Fields are arbitrary tokens, interned
// as names. Lines starting with '#' and blank lines are ignored.
//
//   # a tiny social network
//   marko   knows     peter
//   marko   created   mrpa
//   peter   created   mrpa
//
// Names are arbitrary byte strings, so tokens carry a minimal percent
// escape: WriteGraphText encodes as %XX (uppercase hex) every byte that
// would break tokenization or collide with syntax — bytes <= 0x20
// (whitespace, controls), 0x7F, '%' itself, '#', and a *leading* '@' (so a
// real name can never be mistaken for a '@NNN' numeric-id token).
// ReadGraphText first applies the numeric-token check to the raw token,
// then percent-decodes it; a '%' not followed by two hex digits is
// kCorruption. Tokens without '%' pass through unchanged, so hand-written
// files are unaffected unless they contain literal '%'.

#ifndef MRPA_GRAPH_IO_H_
#define MRPA_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/multi_graph.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

// Bounds for reading untrusted MRG-TSV input. The reader consumes the
// stream one character at a time against these limits, so a hostile input
// trips a clean error instead of ballooning memory or spinning unbounded:
//
//   * an overlong line is kCorruption after max_line_bytes + 1 characters,
//     before the rest of the line is buffered;
//   * line/edge caps trip kResourceExhausted;
//   * '@NNN' numeric-id tokens (WriteGraphText's encoding for unnamed
//     vertices/labels) must parse and stay ≤ max_numeric_id, otherwise
//     kCorruption — a truncated or bit-flipped id is caught instead of
//     being silently interned as a fresh name;
//   * an attached ExecContext is charged one step per line and the line's
//     bytes, so deadlines/cancellation interrupt large reads.
//
// Reads also pass a kFaultSiteIoRead probe per line, so tests can inject
// deterministic I/O failures mid-file.
struct GraphReadLimits {
  // Longest accepted input line, in bytes (excluding the newline).
  size_t max_line_bytes = 1 << 20;
  // Caps on total input lines / accepted edges. nullopt = unlimited.
  std::optional<size_t> max_lines;
  std::optional<size_t> max_edges;
  // Largest id accepted in '@NNN' tokens.
  uint32_t max_numeric_id = 100'000'000;
  // Optional execution guard. Not owned; may be null (unguarded).
  ExecContext* exec = nullptr;
};

// Parses MRG-TSV from a stream / string / file. The unbounded overloads
// use default GraphReadLimits — generous, but still hostile-input safe.
Result<MultiRelationalGraph> ReadGraphText(std::istream& in);
Result<MultiRelationalGraph> ReadGraphText(std::istream& in,
                                           const GraphReadLimits& limits);
Result<MultiRelationalGraph> ReadGraphFromString(const std::string& text);
Result<MultiRelationalGraph> ReadGraphFromString(
    const std::string& text, const GraphReadLimits& limits);
Result<MultiRelationalGraph> ReadGraphFile(const std::string& path);
Result<MultiRelationalGraph> ReadGraphFile(const std::string& path,
                                           const GraphReadLimits& limits);

// Writes MRG-TSV. Vertices or labels without names are written as numeric
// ids prefixed with '@' (e.g. "@17"); ReadGraphText treats such tokens as
// ordinary names, so write→read round-trips are stable but not id-preserving.
// Names are percent-escaped (see the format note above), so write→read
// preserves the exact name bytes — including tabs, newlines, '#', and
// leading '@' — for every edge (proved by the round-trip fuzz in
// tests/io_test.cc).
Status WriteGraphText(const MultiRelationalGraph& graph, std::ostream& out);
Status WriteGraphFile(const MultiRelationalGraph& graph,
                      const std::string& path);

// Graphviz DOT export: one digraph, edge labels from Ω, vertex names when
// present. For eyeballing small graphs (`dot -Tsvg`).
Status WriteDot(const MultiRelationalGraph& graph, std::ostream& out);

// Shape summary: sizes, per-label edge counts, degree extremes. One line
// per fact, used by mrpa_shell's :summary and handy in logs.
std::string SummarizeGraph(const MultiRelationalGraph& graph);

}  // namespace mrpa

#endif  // MRPA_GRAPH_IO_H_
