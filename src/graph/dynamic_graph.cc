#include "graph/dynamic_graph.h"

#include <algorithm>

namespace mrpa {

namespace {

// The per-vertex order: (label, head), matching a snapshot's out-run.
bool OutOrder(const Edge& a, const Edge& b) {
  return std::tie(a.label, a.head) < std::tie(b.label, b.head);
}

}  // namespace

DynamicMultiGraph::DynamicMultiGraph(uint32_t num_vertices,
                                     uint32_t num_labels)
    : num_vertices_(num_vertices),
      num_labels_(num_labels),
      out_(num_vertices) {}

DynamicMultiGraph::DynamicMultiGraph(const MultiRelationalGraph& snapshot)
    : DynamicMultiGraph(snapshot.num_vertices(), snapshot.num_labels()) {
  for (VertexId v = 0; v < snapshot.num_vertices(); ++v) {
    auto run = snapshot.OutEdges(v);
    out_[v].assign(run.begin(), run.end());  // Already (label, head)-sorted.
  }
  num_edges_ = snapshot.num_edges();
}

void DynamicMultiGraph::EnsureVertex(VertexId v) {
  if (v >= num_vertices_) {
    num_vertices_ = v + 1;
    out_.resize(num_vertices_);
  }
}

void DynamicMultiGraph::EnsureLabel(LabelId l) {
  if (l >= num_labels_) num_labels_ = l + 1;
}

Status DynamicMultiGraph::AddEdge(const Edge& e) {
  EnsureVertex(e.tail);
  EnsureVertex(e.head);
  EnsureLabel(e.label);
  std::vector<Edge>& run = out_[e.tail];
  auto it = std::lower_bound(run.begin(), run.end(), e, OutOrder);
  if (it != run.end() && *it == e) {
    return Status::AlreadyExists("edge " + e.ToString() + " already in E");
  }
  run.insert(it, e);
  ++num_edges_;
  dirty_.store(true, std::memory_order_release);
  return Status::OK();
}

Status DynamicMultiGraph::RemoveEdge(const Edge& e) {
  if (e.tail >= num_vertices_) {
    return Status::NotFound("edge " + e.ToString() + " not in E");
  }
  std::vector<Edge>& run = out_[e.tail];
  auto it = std::lower_bound(run.begin(), run.end(), e, OutOrder);
  if (it == run.end() || !(*it == e)) {
    return Status::NotFound("edge " + e.ToString() + " not in E");
  }
  run.erase(it);
  --num_edges_;
  dirty_.store(true, std::memory_order_release);
  return Status::OK();
}

std::span<const Edge> DynamicMultiGraph::OutEdges(VertexId v) const {
  if (v >= num_vertices_) return {};
  return out_[v];
}

bool DynamicMultiGraph::HasEdge(const Edge& e) const {
  if (e.tail >= num_vertices_) return false;
  const std::vector<Edge>& run = out_[e.tail];
  auto it = std::lower_bound(run.begin(), run.end(), e, OutOrder);
  return it != run.end() && *it == e;
}

void DynamicMultiGraph::EnsureCaches() const {
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (dirty_.load(std::memory_order_relaxed)) RebuildCaches();
}

// Must be called with cache_mu_ held (EnsureCaches).
void DynamicMultiGraph::RebuildCaches() const {
  all_edges_.clear();
  all_edges_.reserve(num_edges_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    all_edges_.insert(all_edges_.end(), out_[v].begin(), out_[v].end());
  }
  // Per-vertex runs are (label, head)-sorted and vertices ascend, so
  // all_edges_ is already in canonical (tail, label, head) order.

  in_offsets_.assign(num_vertices_ + 1, 0);
  for (const Edge& e : all_edges_) ++in_offsets_[e.head + 1];
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    in_offsets_[v + 1] += in_offsets_[v];
  }
  in_index_.assign(all_edges_.size(), 0);
  {
    std::vector<size_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (size_t i = 0; i < all_edges_.size(); ++i) {
      in_index_[cursor[all_edges_[i].head]++] = static_cast<EdgeIndex>(i);
    }
  }

  label_offsets_.assign(num_labels_ + 1, 0);
  for (const Edge& e : all_edges_) ++label_offsets_[e.label + 1];
  for (uint32_t l = 0; l < num_labels_; ++l) {
    label_offsets_[l + 1] += label_offsets_[l];
  }
  label_index_.assign(all_edges_.size(), 0);
  {
    std::vector<size_t> cursor(label_offsets_.begin(),
                               label_offsets_.end() - 1);
    for (size_t i = 0; i < all_edges_.size(); ++i) {
      label_index_[cursor[all_edges_[i].label]++] =
          static_cast<EdgeIndex>(i);
    }
  }
  dirty_.store(false, std::memory_order_release);
}

std::span<const Edge> DynamicMultiGraph::AllEdges() const {
  EnsureCaches();
  return all_edges_;
}

std::span<const EdgeIndex> DynamicMultiGraph::InEdgeIndices(
    VertexId v) const {
  if (v >= num_vertices_) return {};
  EnsureCaches();
  return std::span<const EdgeIndex>(in_index_.data() + in_offsets_[v],
                                    in_offsets_[v + 1] - in_offsets_[v]);
}

std::span<const EdgeIndex> DynamicMultiGraph::LabelEdgeIndices(
    LabelId l) const {
  if (l >= num_labels_) return {};
  EnsureCaches();
  return std::span<const EdgeIndex>(
      label_index_.data() + label_offsets_[l],
      label_offsets_[l + 1] - label_offsets_[l]);
}

MultiRelationalGraph DynamicMultiGraph::Snapshot() const {
  MultiGraphBuilder builder;
  builder.ReserveVertices(num_vertices_);
  builder.ReserveLabels(num_labels_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const Edge& e : out_[v]) builder.AddEdge(e);
  }
  return builder.Build();
}

}  // namespace mrpa
