#include "service/admission.h"

#include <algorithm>
#include <thread>

#include "util/fault_injector.h"

namespace mrpa::service {

namespace {

std::optional<size_t> MinLimit(const std::optional<size_t>& a,
                               const std::optional<size_t>& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return std::min(*a, *b);
}

double BucketCapacity(const TenantQuota& quota) {
  if (quota.burst >= 1.0) return quota.burst;
  return std::max(1.0, quota.qps);
}

}  // namespace

ExecLimits IntersectLimits(const ExecLimits& a, const ExecLimits& b) {
  ExecLimits out;
  out.max_paths = MinLimit(a.max_paths, b.max_paths);
  out.max_steps = MinLimit(a.max_steps, b.max_steps);
  out.max_bytes = MinLimit(a.max_bytes, b.max_bytes);
  if (!a.timeout.has_value()) {
    out.timeout = b.timeout;
  } else if (!b.timeout.has_value()) {
    out.timeout = a.timeout;
  } else {
    out.timeout = std::min(*a.timeout, *b.timeout);
  }
  return out;
}

AdmissionController::AdmissionController(Options options)
    : obs_(options.obs), clock_(std::move(options.clock)) {
  global_max_in_flight_ = options.global_max_in_flight;
  if (global_max_in_flight_ == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    global_max_in_flight_ = std::max<size_t>(2, 2 * std::max<size_t>(1, hw));
  }
  global_max_queued_ = options.global_max_queued;
  if (global_max_queued_ == 0) global_max_queued_ = 4 * global_max_in_flight_;
  if (!clock_) clock_ = [] { return Clock::now(); };
}

Status AdmissionController::RegisterTenant(std::string_view name,
                                           const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.find(name) != tenants_.end()) {
    return Status::AlreadyExists("tenant '" + std::string(name) +
                                 "' is already registered");
  }
  Tenant& tenant = tenants_[std::string(name)];
  tenant.quota = quota;
  tenant.tokens = BucketCapacity(quota);  // A fresh tenant starts full.
  tenant.last_refill = clock_();
  return Status::OK();
}

Status AdmissionController::UpdateQuota(std::string_view name,
                                        const TenantQuota& quota) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("tenant '" + std::string(name) +
                              "' is not registered");
    }
    Tenant& tenant = it->second;
    RefillLocked(tenant, clock_());
    tenant.quota = quota;
    tenant.tokens = std::min(tenant.tokens, BucketCapacity(quota));
    GrantLocked();  // A raised cap may free queued work.
  }
  cv_.notify_all();
  return Status::OK();
}

Result<TenantQuota> AdmissionController::GetQuota(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + std::string(name) +
                            "' is not registered");
  }
  return it->second.quota;
}

void AdmissionController::RefillLocked(Tenant& tenant, Clock::time_point now) {
  if (tenant.quota.qps <= 0) return;
  const auto elapsed = now - tenant.last_refill;
  if (elapsed <= Clock::duration::zero()) return;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  tenant.tokens = std::min(tenant.tokens + seconds * tenant.quota.qps,
                           BucketCapacity(tenant.quota));
  tenant.last_refill = now;
}

void AdmissionController::GrantLocked() {
  bool granted_any = false;
  while (global_in_flight_ < global_max_in_flight_) {
    // The oldest eligible waiter of the highest priority: FIFO within a
    // tenant (only fronts are candidates), priority-then-age across
    // tenants.
    Tenant* best_tenant = nullptr;
    Waiter* best = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.queue.empty()) continue;
      if (tenant.in_flight >= tenant.quota.max_in_flight) continue;
      Waiter* front = tenant.queue.front();
      if (best == nullptr || front->priority > best->priority ||
          (front->priority == best->priority && front->seq < best->seq)) {
        best_tenant = &tenant;
        best = front;
      }
    }
    if (best == nullptr) break;
    best_tenant->queue.pop_front();
    --total_queued_;
    best->state = Waiter::State::kGranted;
    ++best_tenant->in_flight;
    ++global_in_flight_;
    granted_any = true;
  }
  if (granted_any) cv_.notify_all();
}

void AdmissionController::RemoveWaiterLocked(Tenant& tenant, Waiter* waiter) {
  auto it = std::find(tenant.queue.begin(), tenant.queue.end(), waiter);
  if (it != tenant.queue.end()) {
    tenant.queue.erase(it);
    --total_queued_;
  }
}

void AdmissionController::CountShed() const {
  if (obs_ != nullptr) obs_->Add(obs::Metric::kServiceShed, 1);
}

void AdmissionController::CountRejected() const {
  if (obs_ != nullptr) obs_->Add(obs::Metric::kServiceRejected, 1);
}

uint64_t AdmissionController::EstimatedQueryCostNanos() const {
  if (obs_ == nullptr) return 0;
  const obs::HistogramSnapshot hist =
      obs_->SnapshotHistogram(obs::Hist::kServiceExecNanos);
  if (hist.count == 0) return 0;
  return hist.sum / hist.count;
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_in_flight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const AdmitRequest& request) {
  {
    Status fault = FaultProbe(kFaultSiteServiceAdmit);
    if (!fault.ok()) {
      if (fault.IsResourceExhausted()) {
        CountShed();
      } else {
        CountRejected();
      }
      return fault;
    }
  }

  // The cost estimate reads the (thread-safe) registry; keep it outside the
  // controller lock.
  const uint64_t estimated_cost = EstimatedQueryCostNanos();
  const auto wait_start = Clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(request.tenant);
  if (it == tenants_.end()) {
    CountRejected();
    return Status::NotFound("tenant '" + std::string(request.tenant) +
                            "' is not registered");
  }
  Tenant& tenant = it->second;
  const std::string tenant_name(request.tenant);
  const auto now = clock_();

  // Reject-fast when the deadline cannot fit the estimated cost: cheaper
  // for everyone than admitting work that is doomed to trip mid-run.
  if (request.deadline.has_value() && estimated_cost > 0) {
    const auto remaining = *request.deadline - now;
    if (remaining < std::chrono::nanoseconds(estimated_cost)) {
      CountRejected();
      return Status::DeadlineExceeded(
          "admission rejected: remaining deadline is below the estimated "
          "query cost of " +
          std::to_string(estimated_cost) + "ns");
    }
  }

  RefillLocked(tenant, now);
  if (tenant.quota.qps > 0) {
    if (tenant.tokens < 1.0) {
      CountShed();
      return Status::ResourceExhausted("shed: tenant '" + tenant_name +
                                       "' exceeded its rate quota");
    }
    tenant.tokens -= 1.0;
  }

  // Fast path: a free slot and nobody queued ahead.
  if (tenant.queue.empty() &&
      tenant.in_flight < tenant.quota.max_in_flight &&
      global_in_flight_ < global_max_in_flight_) {
    ++tenant.in_flight;
    ++global_in_flight_;
    if (obs_ != nullptr) obs_->Add(obs::Metric::kServiceAdmitted, 1);
    return Ticket(this, tenant_name);
  }

  // Queue behind the caps — bounded, or shed.
  if (tenant.queue.size() >= tenant.quota.max_queued) {
    CountShed();
    return Status::ResourceExhausted("shed: tenant '" + tenant_name +
                                     "' queue is full");
  }
  if (total_queued_ >= global_max_queued_) {
    // Priority shedding: evict the youngest waiter of the strictly lowest
    // priority below ours, else shed the newcomer.
    Tenant* victim_tenant = nullptr;
    Waiter* victim = nullptr;
    for (auto& [name, t] : tenants_) {
      for (Waiter* w : t.queue) {
        if (victim == nullptr || w->priority < victim->priority ||
            (w->priority == victim->priority && w->seq > victim->seq)) {
          victim_tenant = &t;
          victim = w;
        }
      }
    }
    if (victim == nullptr || victim->priority >= tenant.quota.priority) {
      CountShed();
      return Status::ResourceExhausted(
          "shed: service queue is full and tenant '" + tenant_name +
          "' has no priority over queued work");
    }
    RemoveWaiterLocked(*victim_tenant, victim);
    victim->state = Waiter::State::kShed;
    victim->shed_status = Status::ResourceExhausted(
        "shed: evicted from the service queue by a higher-priority arrival");
    CountShed();
    cv_.notify_all();
  }

  Waiter waiter;
  waiter.seq = next_seq_++;
  waiter.priority = tenant.quota.priority;
  waiter.deadline = request.deadline;
  tenant.queue.push_back(&waiter);
  ++total_queued_;
  if (obs_ != nullptr) {
    obs_->Record(obs::Hist::kServiceQueueDepth, tenant.queue.size());
  }
  GrantLocked();  // We may be immediately eligible (e.g. racing releases).

  while (waiter.state == Waiter::State::kWaiting) {
    if (waiter.deadline.has_value()) {
      if (cv_.wait_until(lock, *waiter.deadline) ==
          std::cv_status::timeout &&
          waiter.state == Waiter::State::kWaiting) {
        RemoveWaiterLocked(tenant, &waiter);
        CountRejected();
        return Status::DeadlineExceeded(
            "admission rejected: deadline passed while queued for tenant '" +
            tenant_name + "'");
      }
    } else {
      cv_.wait(lock);
    }
  }

  if (waiter.state == Waiter::State::kShed) {
    return waiter.shed_status;
  }
  if (obs_ != nullptr) {
    obs_->Add(obs::Metric::kServiceAdmitted, 1);
    obs_->Record(
        obs::Hist::kServiceAdmitWaitNanos,
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(Clock::now() -
                                                            wait_start)
                                  .count()));
  }
  return Ticket(this, tenant_name);
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot(tenant_);
  controller_ = nullptr;
}

void AdmissionController::ReleaseSlot(const std::string& tenant_name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant_name);
    if (it != tenants_.end() && it->second.in_flight > 0) {
      --it->second.in_flight;
    }
    if (global_in_flight_ > 0) --global_in_flight_;
    GrantLocked();
  }
  cv_.notify_all();
}

}  // namespace mrpa::service
