// SnapshotRegistry: versioned snapshot images with RCU-style epoch
// reclamation, so a serving process can hot-swap to a fresh snapshot while
// in-flight queries finish on the image they were admitted under.
//
// The read side is lock-free: Acquire() claims one of a fixed array of
// reader slots with a single CAS (publishing the reader's observed epoch),
// loads the current image pointer, and hands back an RAII Guard. No mutex,
// no shared refcount cache line per image — concurrent readers touch
// disjoint slots. HotSwap() is the writer side: it publishes the new image
// with one atomic exchange, bumps the global epoch, and moves the old image
// to a retired list stamped with the pre-bump epoch.
//
// Reclamation invariant (the one the chaos soak proves under ASan): a
// retired image is deleted only when every active reader slot announces an
// epoch strictly greater than the image's retire epoch. A reader's
// announced epoch is read from the global counter *before* it loads the
// image pointer, and the writer stamps the retire epoch *after* swapping
// the pointer, so any reader that could still hold the old image announces
// an epoch <= the retire epoch and blocks its reclamation. (All four
// operations on the announce/scan pair are seq_cst; the proof needs their
// single total order. A stale announcement only delays reclamation — the
// scheme is conservative, never unsafe.)
//
// The registry reports into an optional ObsRegistry: hot-swaps published,
// images reclaimed, and the epoch lag (retired-but-unreclaimed images) at
// each swap.

#ifndef MRPA_SERVICE_SNAPSHOT_REGISTRY_H_
#define MRPA_SERVICE_SNAPSHOT_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "storage/snapshot_universe.h"
#include "util/status.h"

namespace mrpa::service {

// Deterministic fault-injection site: probed once per HotSwap attempt, so
// tests drive the publish path through a failed swap (the registry must be
// untouched afterwards).
inline constexpr std::string_view kFaultSiteServiceSwap = "service.swap";

class SnapshotRegistry {
 private:
  // One published image. `retire_epoch` is meaningful once the image is on
  // the retired list (stamped under the writer mutex).
  struct Image {
    Image(storage::SnapshotUniverse u, uint64_t v)
        : universe(std::move(u)), version(v) {}
    storage::SnapshotUniverse universe;
    uint64_t version = 0;
    uint64_t retire_epoch = 0;
  };

 public:
  // Concurrent guard capacity. Acquire spins (yielding) when every slot is
  // claimed; sized generously past any realistic in-flight query count.
  static constexpr size_t kReaderSlots = 64;
  static constexpr uint64_t kIdleSlot = ~uint64_t{0};

  explicit SnapshotRegistry(obs::ObsRegistry* obs = nullptr) : obs_(obs) {}

  // Destroying the registry with guards still held is a caller bug (the
  // guards would dangle); all images, current and retired, are freed.
  ~SnapshotRegistry();

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Pins one image version for the guard's lifetime. The universe reference
  // stays valid — never reclaimed out from under the guard — until the
  // guard is destroyed. An empty guard (operator bool false) means no image
  // has been published yet.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        image_ = other.image_;
        slot_ = other.slot_;
        other.registry_ = nullptr;
        other.image_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    explicit operator bool() const { return image_ != nullptr; }
    const storage::SnapshotUniverse& universe() const {
      return image_->universe;
    }
    uint64_t version() const { return image_ == nullptr ? 0 : image_->version; }

   private:
    friend class SnapshotRegistry;
    Guard(SnapshotRegistry* registry, const Image* image, size_t slot)
        : registry_(registry), image_(image), slot_(slot) {}
    void Release() {
      if (registry_ != nullptr) {
        registry_->Release(slot_);
        registry_ = nullptr;
        image_ = nullptr;
      }
    }

    SnapshotRegistry* registry_ = nullptr;
    const Image* image_ = nullptr;
    size_t slot_ = 0;
  };

  // Publishes `universe` as the new current image and returns its version
  // (1-based, monotone). In-flight guards keep the previous image alive;
  // it is reclaimed at epoch quiescence. On an injected service.swap fault
  // the registry is left exactly as it was (the incoming universe is
  // discarded — a failed publish must not half-install).
  Result<uint64_t> HotSwap(storage::SnapshotUniverse universe);

  // Claims a reader slot and pins the current image. Empty guard when no
  // image has been published.
  Guard Acquire();

  // Version of the current image; 0 when none published.
  uint64_t current_version() const {
    return current_version_.load(std::memory_order_relaxed);
  }

  // Retired images not yet reclaimed (the epoch lag).
  size_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  // Smallest image version still alive — the current image or any retired
  // image a guard may still pin; 0 when nothing has been published. The
  // delta compactor gates its generation drops on this: once it equals the
  // compaction's published version, no reader can build a view over a
  // pre-swap base.
  uint64_t OldestLiveVersion();

  // Sweeps the retired list now; returns how many images were reclaimed.
  // HotSwap and guard release already sweep opportunistically — this is for
  // tests and shutdown paths that want a definite answer.
  size_t ReclaimNow();

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdleSlot};
  };

  // Must be called with mu_ held. Returns images reclaimed.
  size_t ReclaimLocked();

  void Release(size_t slot);

  std::atomic<Image*> current_{nullptr};
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> current_version_{0};
  std::atomic<uint64_t> retired_count_{0};
  std::array<Slot, kReaderSlots> slots_;

  std::mutex mu_;  // Writer side: HotSwap serialization + retired list.
  std::vector<Image*> retired_;
  uint64_t next_version_ = 1;

  obs::ObsRegistry* obs_ = nullptr;
};

}  // namespace mrpa::service

#endif  // MRPA_SERVICE_SNAPSHOT_REGISTRY_H_
