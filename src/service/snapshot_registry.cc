#include "service/snapshot_registry.h"

#include <thread>

#include "util/fault_injector.h"

namespace mrpa::service {

SnapshotRegistry::~SnapshotRegistry() {
  std::lock_guard<std::mutex> lock(mu_);
  delete current_.exchange(nullptr, std::memory_order_seq_cst);
  for (Image* image : retired_) delete image;
  retired_.clear();
  retired_count_.store(0, std::memory_order_relaxed);
}

Result<uint64_t> SnapshotRegistry::HotSwap(
    storage::SnapshotUniverse universe) {
  Status fault = FaultProbe(kFaultSiteServiceSwap);
  if (!fault.ok()) return fault;

  std::lock_guard<std::mutex> lock(mu_);
  Image* fresh = new Image(std::move(universe), next_version_++);
  Image* old = current_.exchange(fresh, std::memory_order_seq_cst);
  current_version_.store(fresh->version, std::memory_order_relaxed);
  // The pre-bump epoch: any reader that could still hold `old` announced an
  // epoch <= this value (it read the counter before the exchange above).
  const uint64_t retire_epoch =
      epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (old != nullptr) {
    old->retire_epoch = retire_epoch;
    retired_.push_back(old);
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }
  if (obs_ != nullptr) {
    obs_->Add(obs::Metric::kServiceHotSwaps, 1);
    obs_->Record(obs::Hist::kServiceEpochLag, retired_.size());
  }
  ReclaimLocked();
  return fresh->version;
}

SnapshotRegistry::Guard SnapshotRegistry::Acquire() {
  for (;;) {
    for (size_t i = 0; i < kReaderSlots; ++i) {
      std::atomic<uint64_t>& slot = slots_[i].epoch;
      if (slot.load(std::memory_order_relaxed) != kIdleSlot) continue;
      // Announce the epoch observed BEFORE the image pointer is read; the
      // CAS is the announcement (claims the slot and publishes the epoch in
      // one seq_cst step).
      uint64_t announced = epoch_.load(std::memory_order_seq_cst);
      uint64_t expected = kIdleSlot;
      if (!slot.compare_exchange_strong(expected, announced,
                                        std::memory_order_seq_cst)) {
        continue;  // Lost the slot to another reader; keep scanning.
      }
      Image* image = current_.load(std::memory_order_seq_cst);
      if (image == nullptr) {
        slot.store(kIdleSlot, std::memory_order_seq_cst);
        return Guard();
      }
      return Guard(this, image, i);
    }
    // Every slot claimed: more concurrent guards than kReaderSlots. Yield
    // and rescan; guards are query-scoped, so slots free quickly.
    std::this_thread::yield();
  }
}

void SnapshotRegistry::Release(size_t slot) {
  slots_[slot].epoch.store(kIdleSlot, std::memory_order_seq_cst);
  // Opportunistic sweep: the last reader off an old image lets it reclaim.
  // try_lock keeps the query path free of writer contention.
  if (retired_count_.load(std::memory_order_relaxed) > 0 && mu_.try_lock()) {
    ReclaimLocked();
    mu_.unlock();
  }
}

size_t SnapshotRegistry::ReclaimNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReclaimLocked();
}

uint64_t SnapshotRegistry::OldestLiveVersion() {
  std::lock_guard<std::mutex> lock(mu_);
  // Retired versions are always older than the current one, so any
  // unreclaimed retiree is the oldest live image.
  uint64_t oldest = current_version_.load(std::memory_order_relaxed);
  for (const Image* image : retired_) {
    if (image->version < oldest) oldest = image->version;
  }
  return oldest;
}

size_t SnapshotRegistry::ReclaimLocked() {
  if (retired_.empty()) return 0;
  // A retired image is reclaimable iff every active reader announces an
  // epoch strictly greater than its retire epoch.
  uint64_t min_active = kIdleSlot;
  for (const Slot& slot : slots_) {
    const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e < min_active) min_active = e;
  }
  size_t reclaimed = 0;
  auto keep = retired_.begin();
  for (Image* image : retired_) {
    if (image->retire_epoch < min_active) {
      delete image;
      ++reclaimed;
    } else {
      *keep++ = image;
    }
  }
  retired_.erase(keep, retired_.end());
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
  if (reclaimed > 0 && obs_ != nullptr) {
    obs_->Add(obs::Metric::kServiceSnapshotsReclaimed, reclaimed);
  }
  return reclaimed;
}

}  // namespace mrpa::service
