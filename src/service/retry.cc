#include "service/retry.h"

#include <algorithm>
#include <cmath>

namespace mrpa::service {

std::chrono::nanoseconds RetryPolicy::BackoffFor(size_t attempt,
                                                 Rng& rng) const {
  if (attempt == 0) attempt = 1;
  double base = static_cast<double>(initial_backoff.count());
  // Exponential growth, saturated early so huge attempt counts cannot
  // overflow the double.
  for (size_t i = 1; i < attempt; ++i) {
    base *= multiplier;
    if (base >= static_cast<double>(max_backoff.count())) {
      base = static_cast<double>(max_backoff.count());
      break;
    }
  }
  double scaled = base;
  if (jitter > 0) {
    const double j = std::clamp(jitter, 0.0, 1.0);
    // One Rng draw per backoff keeps the sequence reproducible.
    scaled = base * (1.0 - j / 2.0 + j * rng.NextDouble());
  }
  scaled = std::clamp(scaled, 0.0, static_cast<double>(max_backoff.count()));
  return std::chrono::nanoseconds(static_cast<int64_t>(std::llround(scaled)));
}

}  // namespace mrpa::service
