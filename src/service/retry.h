// RetryPolicy: deterministic exponential backoff with jitter for the
// serving substrate.
//
// Retry taxonomy (the full table is in DESIGN.md):
//
//   retryable — failures that a later attempt can plausibly clear:
//     * transient execution faults (kIOError — injected or genuine I/O
//       hiccups); the attempt's partial output is discarded, the query is
//       idempotent (pure reads over an immutable snapshot), so re-running
//       is safe;
//     * admission sheds (kResourceExhausted from Admit) — capacity frees
//       as other queries drain, so waiting out a backoff and re-admitting
//       is exactly the right response.
//
//   terminal — never retried:
//     * budget trips (kResourceExhausted from a governed evaluation) — the
//       budget is the caller's contract; the truncated partial result IS
//       the answer (and is returned, not discarded);
//     * kDeadlineExceeded / kCancelled — more attempts cannot help;
//     * kInvalidArgument / kNotFound / kCorruption / kInternal — caller or
//       data bugs a retry would only repeat.
//
// The two kResourceExhausted rows differ by *site*, not code, so the
// classification is split: IsRetryableAdmission for Admit() statuses,
// IsRetryableExecution for evaluation outcomes. QueryService never feeds a
// budget trip to either — truncated results return to the caller directly.
//
// Backoff is exponential with multiplicative jitter drawn from the
// library's deterministic Rng (util/random.h): a fixed seed reproduces the
// exact backoff sequence, which the retry tests rely on.

#ifndef MRPA_SERVICE_RETRY_H_
#define MRPA_SERVICE_RETRY_H_

#include <chrono>
#include <cstddef>

#include "util/random.h"
#include "util/status.h"

namespace mrpa::service {

struct RetryPolicy {
  // Total tries per call, the first included; 1 disables retries. This is
  // the per-call retry budget: once spent, the last failure is returned
  // (as a truncated-empty degradation for sheds, an error otherwise).
  size_t max_attempts = 3;
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
  // Fraction of the backoff that is randomized: the delay is drawn
  // uniformly from [base*(1-jitter/2), base*(1+jitter/2)], clamped to
  // max_backoff. 0 disables jitter.
  double jitter = 0.5;

  // Transient execution failures (see the taxonomy above).
  static bool IsRetryableExecution(const Status& status) {
    return status.IsIOError();
  }

  // Admission rejections that clear as capacity frees. Terminal rejections
  // (kDeadlineExceeded, kNotFound) are excluded.
  static bool IsRetryableAdmission(const Status& status) {
    return status.IsResourceExhausted();
  }

  // The jittered delay before attempt `attempt + 1`, given that `attempt`
  // (1-based) just failed. Deterministic in (policy, rng state).
  std::chrono::nanoseconds BackoffFor(size_t attempt, Rng& rng) const;
};

}  // namespace mrpa::service

#endif  // MRPA_SERVICE_RETRY_H_
