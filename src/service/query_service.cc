#include "service/query_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/traversal.h"
#include "engine/chain_planner.h"
#include "obs/obs.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mrpa::service {

namespace {

using Clock = std::chrono::steady_clock;

// Governance statuses the caller receives as a degraded (truncated) OK
// response rather than an error.
bool IsDegradation(const Status& status) {
  return status.IsResourceExhausted() || status.IsDeadlineExceeded() ||
         status.IsCancelled();
}

QueryResponse DegradedResponse(Status status, size_t attempts,
                               Clock::time_point call_start) {
  QueryResponse response;
  response.result.truncated = true;
  response.result.stats.truncated = true;
  response.result.limit = std::move(status);
  response.attempts = attempts;
  response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - call_start);
  return response;
}

}  // namespace

QueryService::QueryService(SnapshotRegistry& snapshots, Options options)
    : snapshots_(snapshots),
      admission_([&] {
        // The admission controller and the service share one metrics sink,
        // and the global concurrency cap defaults to the evaluation pool's
        // width (queries beyond it would only queue inside the pool).
        AdmissionController::Options admission = options.admission;
        if (admission.obs == nullptr) admission.obs = options.obs;
        if (admission.global_max_in_flight == 0 && options.pool != nullptr) {
          admission.global_max_in_flight =
              std::max<size_t>(2, options.pool->num_threads());
        }
        return admission;
      }()),
      retry_(options.retry),
      pool_(options.pool),
      obs_(options.obs),
      retry_seed_(options.retry_seed) {}

Result<ExecLimits> QueryService::EffectiveLimits(
    std::string_view tenant, const QueryRequest& request) const {
  Result<TenantQuota> quota = admission_.GetQuota(tenant);
  if (!quota.ok()) return quota.status();
  return IntersectLimits(request.limits, quota->query_limits);
}

Result<QueryResponse> QueryService::Execute(std::string_view tenant,
                                            const QueryRequest& request) {
  const auto call_start = Clock::now();
  std::optional<Clock::time_point> abs_deadline;
  if (request.deadline.has_value()) {
    abs_deadline = call_start + *request.deadline;
  }

  Result<ExecLimits> effective = EffectiveLimits(tenant, request);
  if (!effective.ok()) return effective.status();

  // One deterministic jitter stream per call: reproducible given the seed
  // and the call order.
  Rng rng(SplitMix64(retry_seed_ ^
                     call_counter_.fetch_add(1, std::memory_order_relaxed))
              .Next());

  Status last_failure;
  for (size_t attempt = 1;; ++attempt) {
    AdmissionController::AdmitRequest admit;
    admit.tenant = tenant;
    admit.deadline = abs_deadline;
    Result<AdmissionController::Ticket> ticket = admission_.Admit(admit);

    if (!ticket.ok()) {
      last_failure = ticket.status();
      if (!RetryPolicy::IsRetryableAdmission(last_failure)) {
        // Terminal rejection. Deadline infeasibility is a governance
        // outcome (degraded response); unknown tenants are caller errors.
        if (IsDegradation(last_failure)) {
          return DegradedResponse(std::move(last_failure), attempt,
                                  call_start);
        }
        return last_failure;
      }
    } else {
      // The per-attempt governor: the intersected countable budgets, plus
      // whatever remains of the end-to-end deadline.
      ExecLimits attempt_limits = *effective;
      if (abs_deadline.has_value()) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::nanoseconds>(*abs_deadline - Clock::now());
        if (!attempt_limits.timeout.has_value() ||
            remaining < *attempt_limits.timeout) {
          attempt_limits.timeout =
              std::max(remaining, std::chrono::nanoseconds(0));
        }
      }
      Result<QueryResponse> response =
          ExecuteOnce(request, attempt_limits, std::move(*ticket));
      if (response.ok()) {
        response->attempts = attempt;
        response->latency =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - call_start);
        return response;
      }
      last_failure = response.status();
      if (!RetryPolicy::IsRetryableExecution(last_failure)) {
        if (IsDegradation(last_failure)) {
          return DegradedResponse(std::move(last_failure), attempt,
                                  call_start);
        }
        return last_failure;
      }
    }

    // Retryable failure: spend the retry budget, or degrade/fail out.
    if (attempt >= retry_.max_attempts) break;
    const auto backoff = retry_.BackoffFor(attempt, rng);
    if (abs_deadline.has_value() &&
        Clock::now() + backoff >= *abs_deadline) {
      // The backoff cannot fit: more attempts would only burn the deadline.
      return DegradedResponse(
          Status::DeadlineExceeded(
              "retry abandoned: the backoff delay exceeds the remaining "
              "deadline"),
          attempt, call_start);
    }
    if (obs_ != nullptr) obs_->Add(obs::Metric::kServiceRetries, 1);
    if (backoff > std::chrono::nanoseconds(0)) {
      std::this_thread::sleep_for(backoff);
    }
  }

  // Retry budget exhausted. Sheds degrade into the truncated-partial-result
  // shape; transient execution faults that never cleared surface as errors.
  if (IsDegradation(last_failure)) {
    return DegradedResponse(std::move(last_failure), retry_.max_attempts,
                            call_start);
  }
  return last_failure;
}

Result<QueryResponse> QueryService::ExecuteOnce(
    const QueryRequest& request, const ExecLimits& effective,
    AdmissionController::Ticket /*in-flight slot, held for the attempt*/) {
  SnapshotRegistry::Guard guard = snapshots_.Acquire();
  if (!guard) {
    return Status::NotFound("no snapshot has been published to the registry");
  }

  // The per-attempt transient-fault site: fires after admission and
  // snapshot acquisition, exactly where a real evaluation failure would.
  {
    Status fault = FaultProbe(kFaultSiteServiceExecute);
    if (!fault.ok()) return fault;
  }

  ExecContext ctx(effective, request.token);
  ctx.AttachObs(obs_);

  Result<GovernedPathSet> governed =
      Status::Internal("query kind not dispatched");
  switch (request.kind) {
    case QueryKind::kTraversal: {
      TraversalSpec spec;
      spec.steps = request.steps;
      if (pool_ != nullptr) {
        ParallelTraversalOptions parallel;
        parallel.pool = pool_;
        governed =
            TraverseParallelGoverned(guard.universe(), spec, ctx, parallel);
      } else {
        governed = TraverseGoverned(guard.universe(), spec, ctx);
      }
      break;
    }
    case QueryKind::kChainForward:
      governed = EvaluateChainGoverned(guard.universe(), request.steps,
                                       ChainDirection::kForward, ctx);
      break;
    case QueryKind::kChainBackward:
      governed = EvaluateChainGoverned(guard.universe(), request.steps,
                                       ChainDirection::kBackward, ctx);
      break;
  }
  if (!governed.ok()) return governed.status();

  // A transient fault injected at an ExecContext probe site surfaces as a
  // truncated result with the fault in `limit`; to the service that is an
  // attempt failure (the partial output is discarded, the query is a pure
  // read), not an answer.
  if (governed->truncated &&
      RetryPolicy::IsRetryableExecution(governed->limit)) {
    return governed->limit;
  }

  if (obs_ != nullptr) {
    obs_->Add(obs::Metric::kServiceQueriesExecuted, 1);
    obs_->Record(obs::Hist::kServiceExecNanos,
                 static_cast<uint64_t>(
                     std::max<int64_t>(0, ctx.Snapshot().elapsed_nanos)));
  }

  QueryResponse response;
  response.result = std::move(*governed);
  response.snapshot_version = guard.version();
  return response;
}

}  // namespace mrpa::service
