// AdmissionController: the multi-tenant front door of the serving
// substrate. Every query passes through Admit() before it may touch a
// snapshot; the controller enforces, per named tenant:
//
//   * a token-bucket rate quota (sustained QPS plus a burst allowance) —
//     an empty bucket sheds immediately (kResourceExhausted, retryable
//     after backoff) rather than queueing the request;
//   * an in-flight cap, with a bounded FIFO wait queue behind it — a full
//     queue sheds; a request whose deadline passes while queued is rejected
//     with kDeadlineExceeded (terminal: retrying cannot help);
//   * deadline-aware fast rejection — when the remaining deadline is
//     smaller than the estimated query cost (read back from the attached
//     ObsRegistry's service.exec_nanos histogram), the request is rejected
//     before it consumes a token or a queue slot;
//   * per-query budget ceilings (TenantQuota::query_limits), intersected
//     with each request's own ExecLimits by the query service.
//
// A global in-flight cap bounds total concurrency across tenants (sized to
// the work-stealing pool the queries execute on). Under overload the
// controller sheds by tenant priority: when the global queue bound is hit,
// the lowest-priority queued request is evicted in favor of a
// higher-priority newcomer — never the other way round.
//
// Waiters are granted strictly FIFO within a tenant; across tenants the
// oldest eligible waiter of the highest priority goes first. Shedding
// statuses are well-formed truncation contracts: the caller (QueryService)
// converts them into empty truncated results, so clients always see the
// same partial-result shape whether a budget tripped mid-run or the front
// door refused the work.

#ifndef MRPA_SERVICE_ADMISSION_H_
#define MRPA_SERVICE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/obs.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa::service {

// Deterministic fault-injection site: probed once per Admit() call, before
// any quota state is touched, so tests and the chaos harness can fail
// admissions without consuming tokens.
inline constexpr std::string_view kFaultSiteServiceAdmit = "service.admit";

// Per-tenant resource contract. All knobs are hot-swappable at runtime via
// AdmissionController::UpdateQuota.
struct TenantQuota {
  // Sustained admissions per second; 0 disables rate metering. `burst` is
  // the bucket capacity; values < 1 default to max(1, qps).
  double qps = 0;
  double burst = 0;
  // Queries of this tenant executing at once.
  size_t max_in_flight = 4;
  // Requests allowed to wait for an in-flight slot; beyond this the tenant
  // sheds. 0 means never queue (pure fail-fast).
  size_t max_queued = 16;
  // Higher priorities are shed later under global overload.
  int priority = 0;
  // Ceilings applied to every query of this tenant (intersected with the
  // request's own limits — the tighter bound wins per dimension).
  ExecLimits query_limits;
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    // Total in-flight queries across all tenants; 0 means
    // 2 × hardware_concurrency (at least 2).
    size_t global_max_in_flight = 0;
    // Total queued requests across all tenants; beyond it the lowest-
    // priority waiter is evicted (or the newcomer shed). 0 means
    // 4 × global_max_in_flight.
    size_t global_max_queued = 0;
    // Metrics sink + cost-estimate source. May be null.
    obs::ObsRegistry* obs = nullptr;
    // Injectable time source for the token bucket and deadline feasibility
    // (tests freeze it); queue waits always use the real clock.
    std::function<Clock::time_point()> clock;
  };

  // RAII in-flight slot. Releasing wakes the longest-waiting eligible
  // request.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        tenant_ = std::move(other.tenant_);
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    explicit operator bool() const { return controller_ != nullptr; }
    const std::string& tenant() const { return tenant_; }
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, std::string tenant)
        : controller_(controller), tenant_(std::move(tenant)) {}

    AdmissionController* controller_ = nullptr;
    std::string tenant_;
  };

  struct AdmitRequest {
    std::string_view tenant;
    // Absolute deadline; requests that cannot finish (or stop waiting) by
    // then are rejected with kDeadlineExceeded.
    std::optional<Clock::time_point> deadline;
  };

  explicit AdmissionController(Options options);

  // kAlreadyExists when the tenant is registered.
  Status RegisterTenant(std::string_view name, const TenantQuota& quota);
  // Replaces the quota at runtime (the chaos harness flips quotas while
  // queries are in flight). kNotFound for unknown tenants. Shrinking
  // max_in_flight never cancels running queries — the new cap applies as
  // slots free up.
  Status UpdateQuota(std::string_view name, const TenantQuota& quota);
  Result<TenantQuota> GetQuota(std::string_view name) const;

  // Admits one query, blocking in the tenant's bounded FIFO queue when the
  // in-flight caps are taken. Outcomes:
  //   * OK Ticket             — an in-flight slot is held until release;
  //   * kNotFound             — unknown tenant (terminal);
  //   * kDeadlineExceeded     — the remaining deadline cannot fit the
  //                             estimated cost, or it passed while queued
  //                             (terminal);
  //   * kResourceExhausted    — shed: empty token bucket, full queue, or
  //                             priority eviction (retryable — capacity
  //                             frees as other queries finish).
  Result<Ticket> Admit(const AdmitRequest& request);

  size_t in_flight() const;
  size_t queued() const;

  // Mean observed query latency in nanoseconds from the attached registry's
  // service.exec_nanos histogram; 0 when unattached or empty. This is the
  // cost estimate behind deadline-aware rejection.
  uint64_t EstimatedQueryCostNanos() const;

  size_t global_max_in_flight() const { return global_max_in_flight_; }

 private:
  struct Waiter {
    uint64_t seq = 0;
    int priority = 0;
    std::optional<Clock::time_point> deadline;
    // kWaiting until granted a slot, shed, or timed out.
    enum class State { kWaiting, kGranted, kShed, kExpired } state =
        State::kWaiting;
    Status shed_status;
  };

  struct Tenant {
    TenantQuota quota;
    double tokens = 0;
    Clock::time_point last_refill;
    size_t in_flight = 0;
    std::deque<Waiter*> queue;
  };

  // All require mu_ held.
  void RefillLocked(Tenant& tenant, Clock::time_point now);
  void GrantLocked();
  void RemoveWaiterLocked(Tenant& tenant, Waiter* waiter);
  void ReleaseSlot(const std::string& tenant_name);

  void CountShed() const;
  void CountRejected() const;

  size_t global_max_in_flight_ = 0;
  size_t global_max_queued_ = 0;
  obs::ObsRegistry* obs_ = nullptr;
  std::function<Clock::time_point()> clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tenant, std::less<>> tenants_;
  size_t global_in_flight_ = 0;
  size_t total_queued_ = 0;
  uint64_t next_seq_ = 1;
};

// The tighter bound per dimension: the quota's ceilings clamp the
// request's own limits (an unlimited dimension defers to the other side).
ExecLimits IntersectLimits(const ExecLimits& a, const ExecLimits& b);

}  // namespace mrpa::service

#endif  // MRPA_SERVICE_ADMISSION_H_
