// QueryService: the resilient serving substrate over the traversal stack.
//
// One service instance composes the pieces the previous PRs built into a
// multi-tenant front door:
//
//   AdmissionController — per-tenant token buckets, in-flight caps, bounded
//     FIFO queues, deadline-aware fast rejection, priority shedding;
//   SnapshotRegistry    — versioned SnapshotUniverse images, hot-swapped
//     with RCU-style epoch reclamation, so every admitted query runs to
//     completion on the image version it was admitted under;
//   RetryPolicy         — deterministic jittered backoff around transient
//     execution faults and admission sheds (never around budget trips);
//   ExecContext         — the per-query governor: the tenant's quota
//     ceilings intersected with the request's own budgets and deadline.
//
// Outcome contract: Execute() returns a non-OK Result only for caller or
// data errors (unknown tenant, no snapshot published, corrupt state).
// Every governance outcome — a complete answer, a budget trip mid-run, a
// shed at the front door, an exhausted retry budget — comes back OK as the
// truncated-partial-result shape the rest of the library already speaks:
// `result.paths` holds whatever full-length paths were produced (empty for
// sheds), `result.truncated` is set, and `result.limit` carries the
// terminal Status. Degraded answers are first-class results, not errors.
//
// Determinism: for countable budgets (steps/paths/bytes) an admitted
// query's output is byte-identical to a direct governed run of the same
// workload against the same snapshot version with the same effective
// limits — including when the service evaluates on a thread pool (the PR 2
// replay guarantee) — which is the differential invariant the chaos soak
// (tests/service_chaos_test.cc) checks on every response. Deadline and
// cancellation trips depend on wall clock and truncate at a
// still-canonical-prefix point.

#ifndef MRPA_SERVICE_QUERY_SERVICE_H_
#define MRPA_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/edge_pattern.h"
#include "core/path_set.h"
#include "service/admission.h"
#include "service/retry.h"
#include "service/snapshot_registry.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {
class ThreadPool;
}  // namespace mrpa

namespace mrpa::service {

// Deterministic fault-injection site: probed once per execution attempt,
// after admission and snapshot acquisition, so tests inject transient
// faults exactly where a real evaluation failure would surface.
inline constexpr std::string_view kFaultSiteServiceExecute =
    "service.execute";

// The governed workloads the service executes. All three are pure reads
// over the acquired snapshot (idempotent, hence retryable).
enum class QueryKind {
  kTraversal,      // The §III fold (core/traversal.h), pool-parallel when
                   // the service has one.
  kChainForward,   // The chain planner's forward fold.
  kChainBackward,  // The chain planner's backward (in-index) fold.
};

struct QueryRequest {
  QueryKind kind = QueryKind::kTraversal;
  // One EdgePattern per step, as in TraversalSpec / EvaluateChain.
  std::vector<EdgePattern> steps;
  // The caller's budgets; the tenant's quota ceilings clamp them
  // (IntersectLimits — tighter bound wins per dimension).
  ExecLimits limits;
  // End-to-end deadline for the whole call, retries and queueing included.
  std::optional<std::chrono::nanoseconds> deadline;
  // Cooperative cancellation; a copy is observed by the running evaluation.
  CancelToken token;
};

struct QueryResponse {
  // Paths, truncation flag, terminal Status, and ExecStats — the standard
  // governed result shape.
  GovernedPathSet result;
  // Snapshot image version the successful attempt ran against (0 when the
  // request never reached a snapshot, e.g. a shed).
  uint64_t snapshot_version = 0;
  // Attempts consumed, the successful one included.
  size_t attempts = 1;
  // Wall time of the whole call, queueing and retries included.
  std::chrono::nanoseconds latency{0};
};

class QueryService {
 public:
  struct Options {
    AdmissionController::Options admission;
    RetryPolicy retry;
    // Evaluation pool for kTraversal queries; null = sequential. Also
    // informs the default global in-flight cap.
    ThreadPool* pool = nullptr;
    // Metrics sink shared with the admission controller and the snapshot
    // registry owned by the caller. May be null.
    obs::ObsRegistry* obs = nullptr;
    // Seeds the per-call backoff jitter streams (deterministic given the
    // seed and the call order).
    uint64_t retry_seed = 0x5eed5eedULL;
  };

  // The registry is shared (a compactor or controller thread hot-swaps it
  // while the service runs) and must outlive the service.
  QueryService(SnapshotRegistry& snapshots, Options options);

  Status RegisterTenant(std::string_view name, const TenantQuota& quota) {
    return admission_.RegisterTenant(name, quota);
  }
  Status UpdateQuota(std::string_view name, const TenantQuota& quota) {
    return admission_.UpdateQuota(name, quota);
  }

  // Executes one governed query for `tenant`. See the outcome contract in
  // the file comment.
  Result<QueryResponse> Execute(std::string_view tenant,
                                const QueryRequest& request);

  // The limits an admitted query of `tenant` would run under — the exact
  // budgets a differential oracle must use to reproduce the service's
  // output byte-for-byte. kNotFound for unknown tenants.
  Result<ExecLimits> EffectiveLimits(std::string_view tenant,
                                     const QueryRequest& request) const;

  AdmissionController& admission() { return admission_; }
  SnapshotRegistry& snapshots() { return snapshots_; }

 private:
  // One execution attempt against the current snapshot. OK carries the
  // governed result; a non-OK Status is an attempt failure the retry loop
  // classifies.
  Result<QueryResponse> ExecuteOnce(const QueryRequest& request,
                                    const ExecLimits& effective,
                                    AdmissionController::Ticket ticket);

  SnapshotRegistry& snapshots_;
  AdmissionController admission_;
  RetryPolicy retry_;
  ThreadPool* pool_ = nullptr;
  obs::ObsRegistry* obs_ = nullptr;
  uint64_t retry_seed_ = 0;
  std::atomic<uint64_t> call_counter_{0};
};

}  // namespace mrpa::service

#endif  // MRPA_SERVICE_QUERY_SERVICE_H_
