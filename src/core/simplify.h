// Algebraic simplification of path expressions.
//
// Rewrites an expression tree to a smaller language-equivalent one using
// identities the paper's algebra guarantees:
//
//   R ∪ ∅ = ∅ ∪ R = R          R ∪ R = R
//   R ⋈◦ ε = ε ⋈◦ R = R        R ⋈◦ ∅ = ∅ ⋈◦ R = ∅
//   R ×◦ ε = ε ×◦ R = R        R ×◦ ∅ = ∅ ×◦ R = ∅
//   ∅* = ε* = ε                (R*)* = R*      (R?)* = R*   (R*)? = R*
//   ∅+ = ∅    ε+ = ε           (R*)+ = R*      (R+)+ = R+
//   ∅? = ε    ε? = ε           (R?)? = R?
//   R^0 = ε   R^1 = R          ∅^n = ∅ (n ≥ 1)  ε^n = ε
//   {} (empty literal) = ∅     {ε} (epsilon literal) = ε
//
// Simplification runs before planning (engine/chain_planner.h): smaller
// trees compile to smaller automata, and collapsing ε/∅ nodes exposes atom
// chains the planner can reorder. Every rewrite preserves the denoted path
// set exactly — the property tests verify equivalence on random graphs.

#ifndef MRPA_CORE_SIMPLIFY_H_
#define MRPA_CORE_SIMPLIFY_H_

#include "core/expr.h"

namespace mrpa {

// Returns a language-equivalent expression with the identities above
// applied bottom-up (a fixed point for this rule set). Shares unchanged
// subtrees with the input.
PathExprPtr Simplify(const PathExprPtr& expr);

}  // namespace mrpa

#endif  // MRPA_CORE_SIMPLIFY_H_
