// Semirings for weighted path analysis.
//
// The paper grounds the algebra in monoid theory and notes (§IV, footnote 6)
// that richer machinery extends the core operations. The classic such
// extension — and the standard algebraic-path-problem toolkit — is to weigh
// paths in a semiring (S, ⊕, ⊗, 0̄, 1̄): a path's weight is the ⊗-product of
// its edge weights, and a path *set*'s weight is the ⊕-sum over its members.
// Choosing the semiring chooses the analysis:
//
//   CountingSemiring  (ℕ, +, ·, 0, 1)        how many paths
//   BooleanSemiring   ({⊥,⊤}, ∨, ∧, ⊥, ⊤)    does any path exist
//   TropicalSemiring  (ℝ∪{∞}, min, +, ∞, 0)  cheapest path
//   MaxProbSemiring   ([0,1], max, ·, 0, 1)  most probable path
//
// regex/path_analysis.h evaluates these over the language of a regular path
// expression restricted to a graph, without enumerating the paths.
//
// Each semiring exposes:
//   using Value       — the carrier type
//   static Value Zero()  / One()            — ⊕ and ⊗ identities
//   static Value Plus(a, b) / Times(a, b)
//   static Value UnitEdgeWeight()           — default per-edge weight

#ifndef MRPA_CORE_SEMIRING_H_
#define MRPA_CORE_SEMIRING_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace mrpa {

struct CountingSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
  static Value UnitEdgeWeight() { return 1; }
};

struct BooleanSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
  static Value UnitEdgeWeight() { return true; }
};

// Min-plus: Zero is +∞ (no path), One is 0 (the free path). With the unit
// edge weight 1.0, the aggregate is the hop count of the shortest accepted
// path.
struct TropicalSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
  static Value UnitEdgeWeight() { return 1.0; }
};

// Max-times over [0, 1]: the probability of the most probable accepted
// path, edges weighted by transition probability.
struct MaxProbSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) { return a * b; }
  static Value UnitEdgeWeight() { return 1.0; }
};

// --- Law checkers (used by the property tests) -----------------------------

// ⊕ is associative/commutative with identity Zero; ⊗ is associative with
// identity One; ⊗ distributes over ⊕; Zero annihilates ⊗.
template <typename S>
bool CheckSemiringLaws(const std::vector<typename S::Value>& samples) {
  using V = typename S::Value;
  for (const V& a : samples) {
    if (!(S::Plus(S::Zero(), a) == a)) return false;
    if (!(S::Plus(a, S::Zero()) == a)) return false;
    if (!(S::Times(S::One(), a) == a)) return false;
    if (!(S::Times(a, S::One()) == a)) return false;
    if (!(S::Times(S::Zero(), a) == S::Zero())) return false;
    if (!(S::Times(a, S::Zero()) == S::Zero())) return false;
    for (const V& b : samples) {
      if (!(S::Plus(a, b) == S::Plus(b, a))) return false;
      for (const V& c : samples) {
        if (!(S::Plus(S::Plus(a, b), c) == S::Plus(a, S::Plus(b, c)))) {
          return false;
        }
        if (!(S::Times(S::Times(a, b), c) == S::Times(a, S::Times(b, c)))) {
          return false;
        }
        if (!(S::Times(a, S::Plus(b, c)) ==
              S::Plus(S::Times(a, b), S::Times(a, c)))) {
          return false;
        }
        if (!(S::Times(S::Plus(a, b), c) ==
              S::Plus(S::Times(a, c), S::Times(b, c)))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace mrpa

#endif  // MRPA_CORE_SEMIRING_H_
