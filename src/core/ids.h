// Fundamental identifier types for the multi-relational graph G = (V, E)
// with E ⊆ (V × Ω × V).
//
// Vertices (V) and edge labels / relation types (Ω) are interned 32-bit ids.
// String names, when present, live in the graph's dictionaries
// (graph/multi_graph.h); the algebra itself operates on ids only.

#ifndef MRPA_CORE_IDS_H_
#define MRPA_CORE_IDS_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mrpa {

// An element of the vertex set V.
using VertexId = uint32_t;

// An element of the label set Ω (a relation type).
using LabelId = uint32_t;

// A position into an edge universe's canonical edge array.
using EdgeIndex = uint32_t;

// Sentinels. Valid ids are strictly below these.
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr EdgeIndex kInvalidEdgeIndex =
    std::numeric_limits<EdgeIndex>::max();

}  // namespace mrpa

#endif  // MRPA_CORE_IDS_H_
