// The parallel §III fold: shard-speculate, then replay accounting.
//
// The algebra makes path enumeration embarrassingly parallel — the fold
// distributes over union of seed-path slices — but PR 1's governance
// contract is inherently sequential: "a path budget of k yields the first k
// paths in canonical order", counters are exact, and the deterministic
// FaultInjector trips on the nth probe. Naively splitting an ExecContext
// across threads breaks all three (shards race for budget, probe order
// scrambles). This file keeps byte-identical semantics with a two-phase
// scheme:
//
//   1. SPECULATE. The seed level runs on the calling thread against the
//      real context (exactly the sequential charge sequence). The seed
//      edges — already in canonical order — are cut into contiguous
//      shards, and each shard folds through the remaining levels on the
//      pool under a *quiet* ExecContext (ExecContext::ShardContext: shared
//      cancel token, shared absolute deadline, fault probes off) whose
//      countable budgets bound speculation: the parent's full remaining
//      budget by default, or a SplitAcross() share in thrifty mode. The
//      shard records a ledger: per level, per source path, how many
//      extensions it emitted and how the out-run ended.
//
//      Each shard folds through its own prefix-sharing PathArena
//      (core/path_arena.h): extensions are 16-byte node pushes, never
//      prefix copies, and the arena is strictly shard-local — the
//      single-writer contract the arena's threading section requires.
//      Only node ids cross the phase boundary; paths materialize once,
//      at the merge.
//
//   2. REPLAY. The calling thread replays the ledgers against the real
//      context in exactly the sequential fold's order — level-major, then
//      shard-major (which is canonical source-path order, because shards
//      are contiguous canonical slices and same-length extensions preserve
//      prefix order). Each record replays the same guard calls with the
//      same arguments the sequential fold would make (ChargePaths per
//      final-level emission, batched CheckStep/ChargeBytes per source
//      path, the hard max_paths check before every emission), so the trip
//      point, sticky limit status, counters, and fault-probe sequence are
//      identical. The merged output is the concatenation of shard results
//      cut at the replayed emission count — canonical order by
//      construction, adopted O(1) via PathSet::FromSortedUnique.
//
// Coverage argument (default, full-remaining budgets): a shard's local
// charge for any prefix of its work equals the real context's charge for
// that prefix MINUS earlier shards' contributions, so the shard trips
// at-or-after the point the sequential fold would — replay always runs out
// of real budget before it runs out of ledger. The exceptions are wall
// clock (deadline/cancel trip whenever the clock says so; the replayed
// prefix is still a correct canonical prefix with accurate metadata) and
// thrifty split budgets (a shard's share can trip early; same guarantee).
//
// Thread-safety note: shards read the EdgeUniverse concurrently, so its
// const accessors must be thread-safe. The immutable CSR snapshot
// (MultiRelationalGraph) qualifies; DynamicMultiGraph's lazily rebuilt
// indices do not — Freeze() first.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dense_level.h"
#include "core/path_arena.h"
#include "core/traversal.h"
#include "frontier/bitmap.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mrpa {

namespace {

// How one source path's out-run ended in the shard fold.
enum class RunEnd : uint8_t {
  // Fully enumerated; the post-run CheckStep/ChargeBytes passed locally.
  kComplete,
  // Final level only: the local ChargePaths tripped mid-run (there was at
  // least one more matching edge).
  kTripPaths,
  // Fully enumerated, but the post-run CheckStep or ChargeBytes tripped.
  kTripPost,
  // A matching edge arrived with the shard's level-local emission count
  // already at the hard max_paths cap. Since the global count is at least
  // the local one, replay always converts this into the sequential hard
  // error.
  kTripHard,
};

struct SourceRecord {
  uint32_t matches = 0;  // Extensions emitted for this source path.
  RunEnd end = RunEnd::kComplete;
};

struct ShardLedger {
  // levels[k-1] holds one record per level-k source path, in canonical
  // order. A tripped shard stops recording, so its last record (trip kind)
  // is the last entry of its last level; untripped shards record every
  // level (possibly empty once their frontier dies out).
  std::vector<std::vector<SourceRecord>> levels;
  // The shard's private prefix store. Written only by the shard's worker
  // during speculation, read only by the merge after the pool joins — no
  // two threads ever touch it concurrently.
  PathArena arena;
  // Final-level node ids into `arena`, canonical order by construction.
  std::vector<PathNodeId> final_ids;
  // The quiet context's trip status when the shard stopped early; OK for a
  // completed shard. Only surfaced on under-coverage (split budgets or wall
  // clock), where replay cannot reproduce the trip from the real context.
  Status local_status;
};

// The shard fold: the same loop structure as the sequential FoldJoin —
// arena-native, one node push per extension — charging a quiet
// speculation-bounding context and recording the ledger instead of being
// the source of truth.
// Observability from inside the worker is deliberately thin: the quiet
// context carries NO registry (equality-relevant counters all come from the
// replay on the calling thread, so sequential and parallel runs agree
// number-for-number), and the shard reports only its own span plus its
// speculative allocation total — per-shard, concurrently, which is exactly
// the contention the registry's padded slabs exist for (and what the TSAN
// `obs` suite exercises at pool width 8).
// Each shard also runs the adaptive sparse/dense switch over ITS slice of
// the frontier (core/dense_level.h): the ledger records only match counts
// and run endings, and the dense replay yields the identical matched-edge
// sequence, so the strategy a shard picks is invisible to the accounting
// replay — a dense shard and a sparse shard produce the same ledger.
// Per-shard frontier.* counters go to the shard's registry slot; they are
// strategy telemetry, excluded (like parallel.*) from the sequential
// counter-identity set.
void ExpandShard(const EdgeUniverse& universe,
                 const std::vector<EdgePattern>& steps,
                 const std::vector<Edge>& seed, size_t begin, size_t end,
                 size_t hard_limit, const frontier::DensityPolicy& policy,
                 ExecContext&& quiet, ShardLedger& ledger,
                 obs::ObsRegistry* reg, obs::SpanId parent_span,
                 size_t shard_index) {
  obs::TraceSpan shard_span(reg, "traverse.shard", parent_span, /*level=*/-1,
                            static_cast<int64_t>(shard_index));
  const size_t last_level = steps.size() - 1;
  PathArena& arena = ledger.arena;
  std::vector<PathNodeId> frontier;
  frontier.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    frontier.push_back(arena.AddRoot(seed[i]));
  }
  ledger.levels.reserve(last_level);

  frontier::BitmapFrontier head_seen;
  size_t dense_levels = 0;
  size_t sparse_levels = 0;
  uint64_t frontier_words = 0;

  for (size_t k = 1; k <= last_level; ++k) {
    const EdgePattern& step = steps[k];
    const bool final_level = k == last_level;
    std::vector<SourceRecord>& records = ledger.levels.emplace_back();
    records.reserve(frontier.size());
    std::vector<PathNodeId> next;
    size_t staged = 0;  // Level-local emissions, for the hard cap.
    bool stopped = false;

    // Per-shard strategy choice, same probe as the sequential fold but over
    // this shard's frontier slice — skew-friendly: a hub-heavy shard can go
    // dense while its siblings stay sparse.
    std::optional<ForwardLevelCache> cache;
    if (policy.mode != frontier::DensityMode::kForceSparse) {
      const bool benefits = StepBenefitsFromDense(step);
      if (policy.mode == frontier::DensityMode::kForceDense ||
          (benefits && frontier.size() >= policy.min_frontier_paths)) {
        head_seen.Reset(universe.num_vertices());
        for (PathNodeId source : frontier) head_seen.Set(arena.HeadOf(source));
        const uint64_t distinct = head_seen.Count();
        frontier_words += head_seen.num_words();
        if (frontier::ShouldGoDense(policy, frontier.size(), distinct,
                                    universe.num_vertices(), benefits)) {
          cache.emplace(universe, step);
          frontier_words += cache->build_words();
        }
      }
    }
    if (cache.has_value()) {
      ++dense_levels;
    } else {
      ++sparse_levels;
    }

    for (PathNodeId source : frontier) {
      SourceRecord record;
      bool stop = false;
      auto extend = [&](const Edge& e) {
        if (stop) return;
        if (staged >= hard_limit) {
          record.end = RunEnd::kTripHard;
          stop = true;
          return;
        }
        if (final_level && !quiet.ChargePaths().ok()) {
          record.end = RunEnd::kTripPaths;
          stop = true;
          return;
        }
        ++record.matches;
        ++staged;
        next.push_back(arena.Extend(source, e));
      };
      if (cache.has_value()) {
        for (const Edge& e : cache->MatchedRun(arena.HeadOf(source))) {
          extend(e);
        }
      } else {
        ForEachMatchingOutEdge(universe, arena.HeadOf(source), step, extend);
      }
      if (!stop &&
          (!quiet.CheckStep(record.matches + 1).ok() ||
           !quiet.ChargeBytes(record.matches * PathArena::kNodeBytes).ok())) {
        record.end = RunEnd::kTripPost;
        stop = true;
      }
      records.push_back(record);
      if (stop) {
        ledger.local_status = quiet.limit_status();
        stopped = true;
        break;
      }
    }
    if (final_level) {
      // Kept even when the shard stopped mid-level: the emissions made
      // before the trip are a valid canonical prefix of the shard's
      // output, and the replay merge cuts the concatenation at the
      // replayed emission count.
      ledger.final_ids = std::move(next);
    } else if (!stopped) {
      frontier = std::move(next);
    }
    if (stopped) break;
  }
  if (reg != nullptr) {
    reg->Add(obs::Metric::kParallelSpeculativeNodes,
             ledger.arena.telemetry().nodes_allocated, shard_index);
    reg->Add(obs::Metric::kFrontierDenseLevels, dense_levels, shard_index);
    reg->Add(obs::Metric::kFrontierSparseLevels, sparse_levels, shard_index);
    reg->Add(obs::Metric::kFrontierWordsScanned, frontier_words, shard_index);
  }
}

Status HardOverflow(size_t hard_limit) {
  return Status::ResourceExhausted("traversal exceeded max_paths = " +
                                   std::to_string(hard_limit));
}

}  // namespace

Result<GovernedPathSet> TraverseParallelGoverned(
    const EdgeUniverse& universe, const TraversalSpec& spec, ExecContext& ctx,
    const ParallelTraversalOptions& options) {
  const std::vector<EdgePattern>& steps = spec.steps;
  // Parallelism needs a pool and at least one expansion level beyond the
  // seed; otherwise the sequential fold IS the semantics.
  if (options.pool == nullptr || steps.size() < 2) {
    return TraverseGoverned(universe, spec, ctx);
  }

  GovernedPathSet out;
  const size_t hard_limit =
      spec.limits.max_paths.value_or(std::numeric_limits<size_t>::max());
  const size_t last_level = steps.size() - 1;
  const size_t path_length = steps.size();

  // Boundary-only observability, mirroring the sequential fold: snapshot on
  // entry, flush on graceful exit. Every equality-relevant counter is
  // computed from the REPLAY (the phase that already reproduces sequential
  // accounting bit-for-bit), never from shard workers, so an instrumented
  // parallel run reports the same traversal.*/arena.*/exec.* numbers as the
  // sequential fold — the identity tests/obs_invariants_test.cc locks down.
  obs::ObsRegistry* const reg = ctx.observer();
  ExecStats obs_before;
  if (reg != nullptr) obs_before = ctx.Snapshot();
  ExecSpan run_span(ctx, "traverse.parallel");

  // Seed level, on the calling thread against the real context —
  // charge-for-charge the sequential seed loop (last_level > 0 here, so no
  // ChargePaths). Seeds stay plain edges; each shard lifts its slice into
  // its own arena as roots.
  std::vector<Edge> seed = CollectMatchingEdges(universe, steps.front());
  Status trip;
  size_t seeded = 0;
  {
    ExecSpan seed_span(ctx, "traverse.level", /*level=*/0);
    for (; seeded < seed.size(); ++seeded) {
      if (!ctx.CheckStep().ok() ||
          !ctx.ChargeBytes(PathArena::kNodeBytes).ok()) {
        trip = ctx.limit_status();
        break;
      }
    }
  }
  seed.resize(seeded);
  // Flush for the two exits that never build ledgers. Matches what the
  // sequential fold reports for the same run: `seeded` is both the seed
  // count and the node count (one root per surviving seed) as well as the
  // arena's peak.
  auto flush_obs_seed_only = [&]() {
    if (reg == nullptr) return;
    reg->Add(obs::Metric::kTraversalRuns, 1);
    reg->Add(obs::Metric::kTraversalSeedEdges, seeded);
    reg->Add(obs::Metric::kArenaNodesAllocated, seeded);
    reg->Record(obs::Hist::kArenaPeakNodes, seeded);
    AddExecStatsDelta(*reg, obs_before, ctx.Snapshot());
  };
  if (!trip.ok()) {
    out.truncated = true;
    out.limit = std::move(trip);
    flush_obs_seed_only();
    out.stats = ctx.Snapshot();
    return out;
  }
  if (seed.empty()) {
    flush_obs_seed_only();
    out.stats = ctx.Snapshot();
    return out;
  }

  // Cut the seed into contiguous canonical slices.
  const size_t min_shard = options.min_shard_size > 0 ? options.min_shard_size : 1;
  size_t num_shards = options.pool->num_threads() *
                      (options.shards_per_thread > 0 ? options.shards_per_thread : 1);
  num_shards = std::min(num_shards, (seed.size() + min_shard - 1) / min_shard);
  if (num_shards == 0) num_shards = 1;

  std::vector<ExecLimits> shard_limits;
  if (options.split_budgets) {
    shard_limits = ctx.RemainingLimits().SplitAcross(num_shards);
  } else {
    shard_limits.assign(num_shards, ctx.RemainingLimits());
  }

  std::vector<ShardLedger> ledgers(num_shards);
  const size_t base = seed.size() / num_shards;
  const size_t extra = seed.size() % num_shards;
  std::vector<std::pair<size_t, size_t>> ranges(num_shards);
  {
    size_t begin = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = base + (s < extra ? 1 : 0);
      ranges[s] = {begin, begin + len};
      begin += len;
    }
  }

  // One calibrated policy, shared read-only by every shard (calibration
  // snapshots the registry once, on the calling thread).
  frontier::DensityPolicy policy = spec.density;
  if (reg != nullptr && policy.mode == frontier::DensityMode::kAuto) {
    policy = frontier::CalibrateDensityPolicy(
        policy, reg, universe.num_vertices(), universe.num_edges());
  }

  options.pool->ParallelFor(num_shards, [&](size_t s) {
    ExpandShard(universe, steps, seed, ranges[s].first, ranges[s].second,
                hard_limit, policy,
                ExecContext::ShardContext(ctx, shard_limits[s]), ledgers[s],
                reg, run_span.id(), s);
  });

  // Replay: the sequential fold's exact guard-call sequence, fed from the
  // ledgers in level-major, shard-major order.
  size_t emitted = 0;  // Final-level emissions replayed so far.
  size_t levels_run = 0;
  // Nodes the SEQUENTIAL arena would have allocated for the replayed
  // prefix: one root per seed, one per non-final extension replayed, one
  // per final-level extension whose ChargePaths succeeded. This — not the
  // shard arenas' speculative total — is what arena.nodes_allocated must
  // report for the sequential counter identity (and for the
  // bytes == nodes × kNodeBytes conservation law on untruncated runs).
  size_t replayed_nodes = seeded;

  // Materializes the first `count` final-level chains across the shard
  // arenas (shard-major = canonical order) — the one place paths exist as
  // contiguous edge vectors.
  auto merge_first = [&](size_t count) {
    std::vector<Path> merged;
    merged.reserve(count);
    for (size_t s = 0; s < ledgers.size(); ++s) {
      ShardLedger& ledger = ledgers[s];
      size_t taken = 0;
      for (PathNodeId id : ledger.final_ids) {
        if (merged.size() == count) break;
        Path p;
        ledger.arena.MaterializePrefixInto(id, path_length, p);
        merged.push_back(std::move(p));
        ++taken;
      }
      // Per-shard slot attribution: the conservation test asserts
      // Value(paths_emitted) == Σ slots == |result|.
      if (reg != nullptr && taken > 0) {
        reg->Add(obs::Metric::kTraversalPathsEmitted, taken, s);
      }
      if (merged.size() == count) break;
    }
    return PathSet::FromSortedUnique(std::move(merged));
  };

  // The one-per-run flush for every graceful exit past the shard phase
  // (the hard max_paths overflow reports nothing, like the sequential
  // fold). paths_emitted is added by merge_first, per shard.
  auto flush_obs = [&]() {
    if (reg == nullptr) return;
    reg->Add(obs::Metric::kTraversalRuns, 1);
    reg->Add(obs::Metric::kTraversalSeedEdges, seeded);
    reg->Add(obs::Metric::kTraversalLevels, levels_run);
    reg->Add(obs::Metric::kParallelShards, num_shards);
    reg->Add(obs::Metric::kArenaNodesAllocated, replayed_nodes);
    uint64_t materializations = 0;
    uint64_t truncated_nodes = 0;
    for (size_t s = 0; s < ledgers.size(); ++s) {
      const PathArena::Telemetry& t = ledgers[s].arena.telemetry();
      materializations += t.materializations;
      truncated_nodes += t.truncated_nodes;
      reg->Record(obs::Hist::kArenaPeakNodes, t.peak_nodes, s);
    }
    reg->Add(obs::Metric::kArenaMaterializations, materializations);
    reg->Add(obs::Metric::kArenaTruncatedNodes, truncated_nodes);
    AddExecStatsDelta(*reg, obs_before, ctx.Snapshot());
  };

  // Assembles the governed result for a replay stop. `level` is the level
  // being replayed when the stop happened; the sequential fold keeps the
  // current level's partial output only when that level is final.
  auto truncated = [&](size_t level, Status limit) {
    out.truncated = true;
    out.limit = std::move(limit);
    if (level == last_level) out.paths = merge_first(emitted);
    flush_obs();
    out.stats = ctx.Snapshot();
    out.stats.truncated = true;  // Also set on under-coverage stops, where
                                 // the real context never tripped.
    return out;
  };

  for (size_t k = 1; k <= last_level; ++k) {
    const bool final_level = k == last_level;
    if (reg != nullptr) {
      // Level accounting, sequential-equivalent: ledger records at index
      // k-1 are level-k source paths, so their total is the level's input
      // frontier width; the sequential loop runs (and counts) a level iff
      // that width is non-zero. (The bounds guard covers shards that
      // tripped before this level — replay would already have returned on
      // their trip record, but stay defensive.)
      size_t level_width = 0;
      for (const ShardLedger& ledger : ledgers) {
        if (k - 1 < ledger.levels.size()) {
          level_width += ledger.levels[k - 1].size();
        }
      }
      if (level_width > 0) {
        ++levels_run;
        reg->Record(obs::Hist::kTraversalLevelWidth, level_width);
      }
    }
    ExecSpan level_span(ctx, "traverse.level", static_cast<int64_t>(k));
    size_t staged = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const ShardLedger& ledger = ledgers[s];
      // A shard missing this level tripped earlier — but then replay of its
      // trip record already returned. (Untripped shards record all levels.)
      assert(k - 1 < ledger.levels.size());
      for (const SourceRecord& r : ledger.levels[k - 1]) {
        // Non-final extensions were pushed unconditionally by the
        // sequential fold (its per-emission guards are final-level only),
        // so the replayed node count charges them up front — even when the
        // batched CheckStep/ChargeBytes below trips afterwards, the
        // sequential arena had already pushed these nodes.
        if (!final_level) replayed_nodes += r.matches;
        for (uint32_t j = 0; j < r.matches; ++j) {
          if (staged >= hard_limit) return HardOverflow(hard_limit);
          if (final_level) {
            if (!ctx.ChargePaths().ok()) {
              return truncated(k, ctx.limit_status());
            }
            ++emitted;
            ++replayed_nodes;  // Sequentially pushed only after the charge.
          }
          ++staged;
        }
        switch (r.end) {
          case RunEnd::kComplete:
            if (!ctx.CheckStep(r.matches + 1).ok() ||
                !ctx.ChargeBytes(r.matches * PathArena::kNodeBytes).ok()) {
              return truncated(k, ctx.limit_status());
            }
            break;
          case RunEnd::kTripHard:
            // Global staged >= shard-local staged >= hard_limit, and the
            // shard saw one more matching edge — the sequential hard error.
            if (staged >= hard_limit) return HardOverflow(hard_limit);
            return truncated(k, ledger.local_status);  // Unreachable cover.
          case RunEnd::kTripPaths: {
            // The shard saw one more matching edge; sequentially it would
            // face the hard cap, then ChargePaths. Probe the remaining
            // budget instead of charging blindly: if the real budget is
            // dry, charging reproduces the sequential trip; if not (split
            // budgets / wall clock), this is under-coverage — stop with the
            // shard's own status, without minting a phantom path charge.
            if (staged >= hard_limit) return HardOverflow(hard_limit);
            std::optional<size_t> left = ctx.RemainingLimits().max_paths;
            if (left.has_value() && *left == 0) {
              ctx.ChargePaths();  // Trips; records the sticky status.
              return truncated(k, ctx.limit_status());
            }
            return truncated(k, ledger.local_status);
          }
          case RunEnd::kTripPost:
            // Replay the batched charges; the counters advance either way
            // (CheckStep/ChargeBytes keep their increments on trip, exactly
            // like the sequential fold's accounting).
            if (!ctx.CheckStep(r.matches + 1).ok() ||
                !ctx.ChargeBytes(r.matches * PathArena::kNodeBytes).ok()) {
              return truncated(k, ctx.limit_status());
            }
            return truncated(k, ledger.local_status);  // Under-coverage.
        }
      }
    }
  }

  // No trip anywhere: merge every shard's speculative output wholesale.
  size_t total = 0;
  for (const ShardLedger& ledger : ledgers) total += ledger.final_ids.size();
  out.paths = merge_first(total);
  flush_obs();
  out.stats = ctx.Snapshot();
  return out;
}

Result<PathSet> TraverseParallel(const EdgeUniverse& universe,
                                 const TraversalSpec& spec,
                                 const ParallelTraversalOptions& options) {
  ExecContext unlimited;
  Result<GovernedPathSet> result =
      TraverseParallelGoverned(universe, spec, unlimited, options);
  if (!result.ok()) return result.status();
  if (result->truncated) return result->limit;
  return std::move(result->paths);
}

}  // namespace mrpa

