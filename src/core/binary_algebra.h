// The binary-relation path algebra of the paper's reference [4]
// (Russling's breadth-first traversal scheme), implemented for comparison.
//
// In that algebra a path is a vertex string (V*), concatenation is
// ◦ : V* × V* → V*, and joins operate over binary relations E ⊆ V × V.
// The paper's §II closing paragraph argues this representation *loses the
// path label*: joining edges drawn from different relations yields a bare
// vertex sequence from which the originating relations cannot be recovered.
//
// This module exists to make that argument executable (experiment E10):
// tests demonstrate that two distinct multi-relational paths collapse to
// the same VertexPath, and the bench compares footprint and join cost.

#ifndef MRPA_CORE_BINARY_ALGEBRA_H_
#define MRPA_CORE_BINARY_ALGEBRA_H_

#include <compare>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/edge.h"
#include "core/ids.h"
#include "core/path.h"
#include "util/status.h"

namespace mrpa::binary {

// A path as a vertex string. A single edge (i, j) is the string "i j";
// the empty path is the identity. Note there is no label component.
class VertexPath {
 public:
  VertexPath() = default;
  explicit VertexPath(std::vector<VertexId> vertices)
      : vertices_(std::move(vertices)) {}
  VertexPath(VertexId i, VertexId j) : vertices_{i, j} {}

  // Edge count: max(0, |vertices| - 1).
  size_t length() const {
    return vertices_.empty() ? 0 : vertices_.size() - 1;
  }
  bool empty() const { return vertices_.empty(); }

  VertexId Tail() const {
    return vertices_.empty() ? kInvalidVertex : vertices_.front();
  }
  VertexId Head() const {
    return vertices_.empty() ? kInvalidVertex : vertices_.back();
  }

  const std::vector<VertexId>& vertices() const { return vertices_; }

  // Joint concatenation in the [4] style: the shared join vertex appears
  // once ("i j" ◦ "j k" = "i j k"). Requires Head() == other.Tail() when
  // both sides are non-empty.
  Result<VertexPath> JointConcat(const VertexPath& other) const;

  friend auto operator<=>(const VertexPath&, const VertexPath&) = default;

  std::string ToString() const;

 private:
  std::vector<VertexId> vertices_;
};

// Forgets labels: maps a ternary-algebra path to its vertex string. Joint
// multi-relational paths with different path labels map to the SAME
// VertexPath — the information loss the paper's §II paragraph describes.
// Requires a joint path (disjoint paths have no single vertex string).
Result<VertexPath> ForgetLabels(const Path& path);

// A set of vertex paths with the [4]-style concatenative join.
class VertexPathSet {
 public:
  VertexPathSet() = default;
  explicit VertexPathSet(std::vector<VertexPath> paths);

  static VertexPathSet FromBinaryRelation(
      const std::vector<std::pair<VertexId, VertexId>>& relation);

  size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }
  bool Contains(const VertexPath& p) const;
  const std::vector<VertexPath>& paths() const { return paths_; }

  friend bool operator==(const VertexPathSet&,
                         const VertexPathSet&) = default;

 private:
  std::vector<VertexPath> paths_;  // Sorted, unique.
};

// The concatenative join over vertex-path sets (hash equijoin on
// Head(a) == Tail(b), shared vertex collapsed).
VertexPathSet Join(const VertexPathSet& a, const VertexPathSet& b);

// Bytes of payload needed to store the set (vertex ids only) — used by the
// E10 bench to compare footprints against the ternary representation.
size_t PayloadBytes(const VertexPathSet& set);

}  // namespace mrpa::binary

#endif  // MRPA_CORE_BINARY_ALGEBRA_H_
