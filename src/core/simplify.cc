#include "core/simplify.h"

namespace mrpa {

namespace {

bool IsEmpty(const PathExprPtr& e) { return e->kind() == ExprKind::kEmpty; }

bool IsEpsilon(const PathExprPtr& e) {
  return e->kind() == ExprKind::kEpsilon;
}

PathExprPtr SimplifyNode(const PathExprPtr& expr);

PathExprPtr SimplifyChildrenThenNode(const PathExprPtr& expr) {
  // Rebuild only when a child changed.
  std::vector<PathExprPtr> simplified;
  bool changed = false;
  simplified.reserve(expr->children().size());
  for (const PathExprPtr& child : expr->children()) {
    PathExprPtr s = Simplify(child);
    changed |= s.get() != child.get();
    simplified.push_back(std::move(s));
  }
  if (!changed) return SimplifyNode(expr);

  PathExprPtr rebuilt;
  switch (expr->kind()) {
    case ExprKind::kUnion:
      rebuilt = PathExpr::MakeUnion(simplified[0], simplified[1]);
      break;
    case ExprKind::kJoin:
      rebuilt = PathExpr::MakeJoin(simplified[0], simplified[1]);
      break;
    case ExprKind::kProduct:
      rebuilt = PathExpr::MakeProduct(simplified[0], simplified[1]);
      break;
    case ExprKind::kStar:
      rebuilt = PathExpr::MakeStar(simplified[0]);
      break;
    case ExprKind::kPlus:
      rebuilt = PathExpr::MakePlus(simplified[0]);
      break;
    case ExprKind::kOptional:
      rebuilt = PathExpr::MakeOptional(simplified[0]);
      break;
    case ExprKind::kPower:
      rebuilt = PathExpr::MakePower(simplified[0], expr->power());
      break;
    default:
      rebuilt = expr;
      break;
  }
  return SimplifyNode(rebuilt);
}

PathExprPtr SimplifyNode(const PathExprPtr& expr) {
  const auto& children = expr->children();
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      if (expr->literal().empty()) return PathExpr::Empty();
      if (expr->literal() == PathSet::EpsilonSet()) {
        return PathExpr::Epsilon();
      }
      return expr;
    case ExprKind::kUnion: {
      if (IsEmpty(children[0])) return children[1];
      if (IsEmpty(children[1])) return children[0];
      if (StructurallyEqual(*children[0], *children[1])) return children[0];
      // ε ∪ R* = R*; ε ∪ R = R?. The fresh Optional goes back through
      // SimplifyNode: its operand is already simplified, but the new node
      // itself can be a redex (e.g. ε ∪ R+ builds (R+)? which is R*).
      if (IsEpsilon(children[0])) {
        if (children[1]->kind() == ExprKind::kStar) return children[1];
        return SimplifyNode(PathExpr::MakeOptional(children[1]));
      }
      if (IsEpsilon(children[1])) {
        if (children[0]->kind() == ExprKind::kStar) return children[0];
        return SimplifyNode(PathExpr::MakeOptional(children[0]));
      }
      return expr;
    }
    case ExprKind::kJoin:
    case ExprKind::kProduct: {
      if (IsEmpty(children[0]) || IsEmpty(children[1])) {
        return PathExpr::Empty();
      }
      if (IsEpsilon(children[0])) return children[1];
      if (IsEpsilon(children[1])) return children[0];
      return expr;
    }
    case ExprKind::kStar: {
      const PathExprPtr& inner = children[0];
      if (IsEmpty(inner) || IsEpsilon(inner)) return PathExpr::Epsilon();
      if (inner->kind() == ExprKind::kStar) return inner;
      if (inner->kind() == ExprKind::kOptional ||
          inner->kind() == ExprKind::kPlus) {
        // (R?)* = (R+)* = R*. Re-normalize: R may itself be a closure.
        return SimplifyNode(PathExpr::MakeStar(inner->children()[0]));
      }
      return expr;
    }
    case ExprKind::kPlus: {
      const PathExprPtr& inner = children[0];
      if (IsEmpty(inner)) return PathExpr::Empty();
      if (IsEpsilon(inner)) return PathExpr::Epsilon();
      if (inner->kind() == ExprKind::kStar ||
          inner->kind() == ExprKind::kPlus) {
        return inner;  // (R*)+ = R*, (R+)+ = R+.
      }
      if (inner->kind() == ExprKind::kOptional) {
        // (R?)+ = R*. Re-normalize: R may itself be a closure.
        return SimplifyNode(PathExpr::MakeStar(inner->children()[0]));
      }
      return expr;
    }
    case ExprKind::kOptional: {
      const PathExprPtr& inner = children[0];
      if (IsEmpty(inner) || IsEpsilon(inner)) return PathExpr::Epsilon();
      if (inner->kind() == ExprKind::kStar ||
          inner->kind() == ExprKind::kOptional) {
        return inner;  // (R*)? = R*, (R?)? = R?.
      }
      if (inner->kind() == ExprKind::kPlus) {
        // (R+)? = R*. Re-normalize: R may itself be a closure.
        return SimplifyNode(PathExpr::MakeStar(inner->children()[0]));
      }
      return expr;
    }
    case ExprKind::kPower: {
      const PathExprPtr& inner = children[0];
      if (expr->power() == 0) return PathExpr::Epsilon();
      if (expr->power() == 1) return inner;
      if (IsEmpty(inner)) return PathExpr::Empty();
      if (IsEpsilon(inner)) return PathExpr::Epsilon();
      return expr;
    }
    default:
      return expr;
  }
}

}  // namespace

PathExprPtr Simplify(const PathExprPtr& expr) {
  if (expr->children().empty()) return SimplifyNode(expr);
  return SimplifyChildrenThenNode(expr);
}

}  // namespace mrpa
