// Monoid law checkers.
//
// The paper grounds the algebra in monoid theory: (E*, ◦, ε) is the free
// monoid over E (footnote 2), and (P(E*), ∪, ∅) and the join/product
// structures satisfy the expected identities. These helpers verify the laws
// on concrete samples; the property-test suites drive them with randomized
// inputs. They are header-only templates so any binary operation with any
// carrier can be checked.

#ifndef MRPA_CORE_MONOID_H_
#define MRPA_CORE_MONOID_H_

#include <vector>

namespace mrpa {

// Checks (a·b)·c == a·(b·c) for every triple drawn from `samples`.
// `op` is any callable T(const T&, const T&).
template <typename T, typename Op>
bool CheckAssociativity(const std::vector<T>& samples, const Op& op) {
  for (const T& a : samples) {
    for (const T& b : samples) {
      for (const T& c : samples) {
        if (!(op(op(a, b), c) == op(a, op(b, c)))) return false;
      }
    }
  }
  return true;
}

// Checks identity·a == a == a·identity for every sample.
template <typename T, typename Op>
bool CheckIdentity(const std::vector<T>& samples, const Op& op,
                   const T& identity) {
  for (const T& a : samples) {
    if (!(op(identity, a) == a)) return false;
    if (!(op(a, identity) == a)) return false;
  }
  return true;
}

// Checks a·b == b·a for every pair; used both positively (∪ commutes) and
// negatively (◦ does not — the paper stresses non-commutativity).
template <typename T, typename Op>
bool CheckCommutativity(const std::vector<T>& samples, const Op& op) {
  for (const T& a : samples) {
    for (const T& b : samples) {
      if (!(op(a, b) == op(b, a))) return false;
    }
  }
  return true;
}

// Checks a·a == a for every sample (∪ is idempotent).
template <typename T, typename Op>
bool CheckIdempotence(const std::vector<T>& samples, const Op& op) {
  for (const T& a : samples) {
    if (!(op(a, a) == a)) return false;
  }
  return true;
}

// Checks left and right distributivity of `mul` over `add`:
//   a·(b+c) == a·b + a·c   and   (a+b)·c == a·c + b·c.
// The concatenative join distributes over union, which is what makes
// P(E*) with (∪, ⋈◦) a (non-commutative) semiring-like structure.
template <typename T, typename Add, typename Mul>
bool CheckDistributivity(const std::vector<T>& samples, const Add& add,
                         const Mul& mul) {
  for (const T& a : samples) {
    for (const T& b : samples) {
      for (const T& c : samples) {
        if (!(mul(a, add(b, c)) == add(mul(a, b), mul(a, c)))) return false;
        if (!(mul(add(a, b), c) == add(mul(a, c), mul(b, c)))) return false;
      }
    }
  }
  return true;
}

// Checks that `zero` annihilates under `mul`: zero·a == zero == a·zero
// (∅ is absorbing for both ⋈◦ and ×◦).
template <typename T, typename Mul>
bool CheckAnnihilator(const std::vector<T>& samples, const Mul& mul,
                      const T& zero) {
  for (const T& a : samples) {
    if (!(mul(zero, a) == zero)) return false;
    if (!(mul(a, zero) == zero)) return false;
  }
  return true;
}

}  // namespace mrpa

#endif  // MRPA_CORE_MONOID_H_
