#include "core/path_set.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace mrpa {

namespace {

// Canonicalizes in place: sort + unique.
void Canonicalize(std::vector<Path>& paths) {
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
}

Status ExceededLimit(size_t limit) {
  return Status::ResourceExhausted(
      "path-set operation exceeded max_paths = " + std::to_string(limit));
}

}  // namespace

PathSet::PathSet(std::vector<Path> paths) : paths_(std::move(paths)) {
  Canonicalize(paths_);
}

PathSet::PathSet(std::initializer_list<Path> paths) : paths_(paths) {
  Canonicalize(paths_);
}

PathSet PathSet::FromEdges(const std::vector<Edge>& edges) {
  std::vector<Path> paths;
  paths.reserve(edges.size());
  for (const Edge& e : edges) paths.emplace_back(e);
  return PathSet(std::move(paths));
}

PathSet PathSet::FromSortedUnique(std::vector<Path> paths) {
#ifndef NDEBUG
  for (size_t i = 1; i < paths.size(); ++i) {
    assert(paths[i - 1] < paths[i] && "FromSortedUnique: input not canonical");
  }
#endif
  PathSet set;
  set.paths_ = std::move(paths);
  return set;
}

bool PathSet::Contains(const Path& p) const {
  return std::binary_search(paths_.begin(), paths_.end(), p);
}

void PathSet::Insert(const Path& p) {
  auto it = std::lower_bound(paths_.begin(), paths_.end(), p);
  if (it != paths_.end() && *it == p) return;
  paths_.insert(it, p);
}

bool PathSet::AllJoint() const {
  return std::all_of(paths_.begin(), paths_.end(),
                     [](const Path& p) { return p.IsJoint(); });
}

bool PathSet::IsSubsetOf(const PathSet& other) const {
  return std::includes(other.paths_.begin(), other.paths_.end(),
                       paths_.begin(), paths_.end());
}

PathSet PathSet::FilterByTail(VertexId tail) const {
  std::vector<Path> out;
  for (const Path& p : paths_) {
    if (!p.empty() && p.Tail() == tail) out.push_back(p);
  }
  PathSet result;
  result.paths_ = std::move(out);  // Filtering preserves canonical order.
  return result;
}

PathSet PathSet::FilterByHead(VertexId head) const {
  std::vector<Path> out;
  for (const Path& p : paths_) {
    if (!p.empty() && p.Head() == head) out.push_back(p);
  }
  PathSet result;
  result.paths_ = std::move(out);
  return result;
}

PathSet PathSet::FilterByLength(size_t length) const {
  std::vector<Path> out;
  for (const Path& p : paths_) {
    if (p.length() == length) out.push_back(p);
  }
  PathSet result;
  result.paths_ = std::move(out);
  return result;
}

std::string PathSet::ToString() const {
  std::ostringstream os;
  os << '{';
  for (size_t i = 0; i < paths_.size(); ++i) {
    if (i > 0) os << ", ";
    os << paths_[i].ToString();
  }
  os << '}';
  return os.str();
}

PathSet Union(const PathSet& a, const PathSet& b) {
  std::vector<Path> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  // set_union over canonical inputs yields a canonical output; build via the
  // already-sorted constructor path.
  PathSet out;
  out = PathSet(std::move(merged));
  return out;
}

PathSet Intersection(const PathSet& a, const PathSet& b) {
  std::vector<Path> merged;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(merged));
  return PathSet(std::move(merged));
}

PathSet Difference(const PathSet& a, const PathSet& b) {
  std::vector<Path> merged;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(merged));
  return PathSet(std::move(merged));
}

Result<PathSet> ConcatenativeJoin(const PathSet& a, const PathSet& b,
                                  const PathSetLimits& limits) {
  const size_t limit = limits.max_paths.value_or(
      std::numeric_limits<size_t>::max());

  // Bucket the right side by tail vertex; ε goes in its own bucket since it
  // joins with everything.
  std::unordered_map<VertexId, std::vector<const Path*>> by_tail;
  bool b_has_epsilon = false;
  by_tail.reserve(b.size());
  for (const Path& q : b) {
    if (q.empty()) {
      b_has_epsilon = true;
    } else {
      by_tail[q.Tail()].push_back(&q);
    }
  }

  // Exact output precount (≤ |A|·|B|): one bucket lookup per left path is
  // cheap next to the join itself, and lets the builder allocate once
  // instead of doubling through O(log n) reallocations.
  size_t expected = 0;
  for (const Path& p : a) {
    if (p.empty()) {
      expected += b.size();
      continue;
    }
    if (b_has_epsilon) ++expected;
    auto it = by_tail.find(p.Head());
    if (it != by_tail.end()) expected += it->second.size();
  }

  PathSetBuilder builder;
  builder.Reserve(std::min(expected, limit));
  for (const Path& p : a) {
    if (p.empty()) {
      // ε ◦ b = b for every b ∈ B (the a=ε disjunct admits all of B).
      for (const Path& q : b) {
        if (builder.staged_size() >= limit) return ExceededLimit(limit);
        builder.Add(q);
      }
      continue;
    }
    if (b_has_epsilon) {
      // p ◦ ε = p (the b=ε disjunct).
      if (builder.staged_size() >= limit) return ExceededLimit(limit);
      builder.Add(p);
    }
    auto it = by_tail.find(p.Head());
    if (it == by_tail.end()) continue;
    for (const Path* q : it->second) {
      if (builder.staged_size() >= limit) return ExceededLimit(limit);
      builder.Add(p.Concat(*q));
    }
  }
  return builder.Build();
}

Result<PathSet> ConcatenativeProduct(const PathSet& a, const PathSet& b,
                                     const PathSetLimits& limits) {
  const size_t limit = limits.max_paths.value_or(
      std::numeric_limits<size_t>::max());
  PathSetBuilder builder;
  // The product output is exactly |A|·|B| paths (saturating: past the limit
  // the loop errors out before staging more than `limit`).
  const size_t bound = b.empty() || a.size() <= limit / b.size()
                           ? a.size() * b.size()
                           : limit;
  builder.Reserve(std::min(bound, limit));
  for (const Path& p : a) {
    for (const Path& q : b) {
      if (builder.staged_size() >= limit) return ExceededLimit(limit);
      builder.Add(p.Concat(q));
    }
  }
  return builder.Build();
}

Result<PathSet> JoinPower(const PathSet& a, size_t n,
                          const PathSetLimits& limits) {
  PathSet acc = PathSet::EpsilonSet();
  for (size_t k = 0; k < n; ++k) {
    Result<PathSet> next = ConcatenativeJoin(acc, a, limits);
    if (!next.ok()) return next.status();
    acc = std::move(next).value();
    if (acc.empty()) break;  // ∅ is absorbing for the join.
  }
  return acc;
}

void PathSetBuilder::AddAll(const PathSet& set) {
  staged_.insert(staged_.end(), set.begin(), set.end());
}

PathSet PathSetBuilder::Build() {
  PathSet out(std::move(staged_));
  staged_.clear();
  return out;
}

size_t ApproxBytes(const PathSet& set) {
  size_t total = sizeof(PathSet);
  for (const Path& p : set) total += ApproxBytes(p);
  return total;
}

std::ostream& operator<<(std::ostream& os, const PathSet& set) {
  return os << set.ToString();
}

}  // namespace mrpa
