// EdgeUniverse: the abstract finite edge relation E that algebra expressions
// and traversals evaluate against.
//
// The core library is independent of any particular storage layout; the
// graph substrate (graph/multi_graph.h) provides the canonical CSR-backed
// implementation. The interface exposes exactly the access paths the algebra
// needs:
//   * the full edge array in canonical (tail, label, head) order,
//   * contiguous out-adjacency per tail vertex,
//   * index lists per head vertex and per label,
//   * membership testing.

#ifndef MRPA_CORE_EDGE_UNIVERSE_H_
#define MRPA_CORE_EDGE_UNIVERSE_H_

#include <cstddef>
#include <span>

#include "core/edge.h"
#include "core/ids.h"

namespace mrpa {

class EdgeUniverse {
 public:
  virtual ~EdgeUniverse() = default;

  // |V|: vertex ids are dense in [0, num_vertices()).
  virtual uint32_t num_vertices() const = 0;

  // |Ω|: label ids are dense in [0, num_labels()).
  virtual uint32_t num_labels() const = 0;

  // |E|.
  virtual size_t num_edges() const = 0;

  // Every edge, sorted by (tail, label, head), no duplicates (E is a set).
  //
  // Lifetime: all span-returning accessors view storage owned by the
  // universe. Never call them on a temporary
  // (`for (e : MakeGraph().AllEdges())` dangles); bind the graph to a local
  // first.
  virtual std::span<const Edge> AllEdges() const = 0;

  // The contiguous slice of AllEdges() with tail = v, sorted by
  // (label, head). Empty when v has no out-edges or is out of range.
  virtual std::span<const Edge> OutEdges(VertexId v) const = 0;

  // The sub-run of OutEdges(v) with the given label — a binary search over
  // the (label, head)-sorted run, so selective labeled steps skip the scan
  // over unrelated relations entirely (experiment E13 measures the gap).
  std::span<const Edge> OutEdgesWithLabel(VertexId v, LabelId label) const;

  // Indices (into AllEdges()) of edges with head = v, sorted.
  virtual std::span<const EdgeIndex> InEdgeIndices(VertexId v) const = 0;

  // Indices (into AllEdges()) of edges with label = l, sorted.
  virtual std::span<const EdgeIndex> LabelEdgeIndices(LabelId l) const = 0;

  // True iff e ∈ E. Logarithmic over the canonical edge array by default.
  virtual bool HasEdge(const Edge& e) const;

  // Convenience: the edge at a given canonical index.
  const Edge& EdgeAt(EdgeIndex index) const { return AllEdges()[index]; }
};

}  // namespace mrpa

#endif  // MRPA_CORE_EDGE_UNIVERSE_H_
