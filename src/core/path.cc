#include "core/path.h"

#include <sstream>

namespace mrpa {

std::string Edge::ToString() const {
  std::ostringstream os;
  os << '(' << tail << ',' << label << ',' << head << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Edge& e) {
  return os << e.ToString();
}

Result<Edge> Path::EdgeAt(size_t n) const {
  if (n == 0 || n > edges_.size()) {
    return Status::OutOfRange("sigma: index " + std::to_string(n) +
                              " outside [1, " + std::to_string(edges_.size()) +
                              "]");
  }
  return edges_[n - 1];
}

std::vector<LabelId> Path::PathLabel() const {
  std::vector<LabelId> labels;
  labels.reserve(edges_.size());
  for (const Edge& e : edges_) labels.push_back(e.label);
  return labels;
}

bool Path::IsJoint() const {
  for (size_t n = 1; n < edges_.size(); ++n) {
    if (edges_[n - 1].head != edges_[n].tail) return false;
  }
  return true;
}

Path Path::Concat(const Path& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  std::vector<Edge> combined;
  combined.reserve(edges_.size() + other.edges_.size());
  combined.insert(combined.end(), edges_.begin(), edges_.end());
  combined.insert(combined.end(), other.edges_.begin(), other.edges_.end());
  return Path(std::move(combined));
}

std::string Path::ToString() const {
  if (empty()) return "ε";
  std::string out;
  for (const Edge& e : edges_) out += e.ToString();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Path& path) {
  return os << path.ToString();
}

}  // namespace mrpa
