#include "core/traversal.h"

#include <chrono>
#include <limits>
#include <optional>
#include <utility>

#include "core/dense_level.h"
#include "core/path_arena.h"
#include "frontier/bitmap.h"
#include "obs/obs.h"

namespace mrpa {

namespace {

// Left-to-right fold of ⋈◦ over per-step edge sets, threaded through the
// execution guard and run ARENA-NATIVE: the frontier is a vector of
// PathNodeIds into a prefix-sharing PathArena (core/path_arena.h), so each
// extension is one 16-byte node push instead of a full prefix copy, and the
// result set is materialized once at the end. Iterating with an
// adjacency-aware extension (rather than repeatedly calling the generic
// join) keeps this O(paths · out-degree) — and the arena makes the work per
// extension O(1) instead of O(level).
//
// Frontier node ids are appended in canonical order: the previous level is
// iterated in canonical order and ForEachMatchingOutEdge visits out-runs in
// (label, head) order, so same-length extensions preserve prefix order.
// Distinct parents and distinct edges also make every staged path unique.
// The final materialization is therefore adopted via
// PathSet::FromSortedUnique — no sort, no dedup.
//
// Two failure regimes coexist:
//   * limits.max_paths (the pre-governance API) stays a hard error — the
//     whole evaluation returns ResourceExhausted with no partial result.
//   * ctx budgets trip gracefully — the fold stops and reports whatever
//     full-length paths it already yielded, flagged `truncated`.
// The path budget is charged only for full-length (final level) paths, so a
// budget of k yields the k first full-length paths in canonical order —
// the same prefix StepPathIterator yields under the same budget. The byte
// budget is charged the exact arena cost: PathArena::kNodeBytes per staged
// extension (batched per source path, like the step charge).
// Each level additionally picks an execution strategy — the PR 3 sparse
// walk or the dense bitmap-memoized replay (core/dense_level.h) — via the
// DensityPolicy. The choice cannot affect governed output: the dense path
// feeds the exact edge sequence ForEachMatchingOutEdge would yield through
// the same guard lambda, so every guard call (count, order, arguments) is
// preserved, and the differential suite proves byte-identity across
// forced-sparse / forced-dense / auto on every dispatch tier.
Result<GovernedPathSet> FoldJoin(const EdgeUniverse& universe,
                                 const std::vector<EdgePattern>& steps,
                                 const PathSetLimits& limits,
                                 const frontier::DensityPolicy& base_policy,
                                 ExecContext& ctx) {
  GovernedPathSet out;
  // Observability is boundary-only: snapshot the guard on entry, flush the
  // deltas (and the run's breakdown) once on every graceful exit. With no
  // registry attached, the fold below runs its PR 3 hot loops unchanged.
  obs::ObsRegistry* const reg = ctx.observer();
  ExecStats obs_before;
  if (reg != nullptr) obs_before = ctx.Snapshot();

  if (steps.empty()) {
    // The 0-step traversal denotes {ε}; ε still counts against the budget.
    if (Status trip = ctx.ChargePaths(); !trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
    } else {
      out.paths = PathSet::EpsilonSet();
    }
    if (reg != nullptr) {
      reg->Add(obs::Metric::kTraversalRuns, 1);
      reg->Add(obs::Metric::kTraversalPathsEmitted, out.paths.size());
      AddExecStatsDelta(*reg, obs_before, ctx.Snapshot());
    }
    out.stats = ctx.Snapshot();
    return out;
  }

  const size_t hard_limit =
      limits.max_paths.value_or(std::numeric_limits<size_t>::max());
  const size_t last_level = steps.size() - 1;
  Status trip;

  PathArena arena;
  std::vector<PathNodeId> frontier;
  std::vector<PathNodeId> next;

  // Adaptive strategy state. With traversal history in the registry, the
  // auto thresholds are re-anchored on the observed level widths (the PR 7
  // calibration loop); the head-frontier bitmap is reused level-to-level so
  // the decision probe allocates once per run.
  frontier::DensityPolicy policy = base_policy;
  if (reg != nullptr && policy.mode == frontier::DensityMode::kAuto) {
    policy = frontier::CalibrateDensityPolicy(
        policy, reg, universe.num_vertices(), universe.num_edges());
  }
  frontier::BitmapFrontier head_seen;
  size_t dense_levels = 0;
  size_t sparse_levels = 0;
  uint64_t frontier_words = 0;

  ExecSpan run_span(ctx, "traverse");
  size_t seed_edges = 0;
  size_t levels_run = 0;
  // The one-per-run flush. Every graceful return passes through here; the
  // hard max_paths overflow (a legacy error, not a governed result) does
  // not — it reports nothing, matching its no-partial-result contract.
  auto flush_obs = [&]() {
    if (reg == nullptr) return;
    reg->Add(obs::Metric::kTraversalRuns, 1);
    reg->Add(obs::Metric::kTraversalSeedEdges, seed_edges);
    reg->Add(obs::Metric::kTraversalLevels, levels_run);
    reg->Add(obs::Metric::kTraversalPathsEmitted, out.paths.size());
    reg->Add(obs::Metric::kFrontierDenseLevels, dense_levels);
    reg->Add(obs::Metric::kFrontierSparseLevels, sparse_levels);
    reg->Add(obs::Metric::kFrontierWordsScanned, frontier_words);
    AddExecStatsDelta(*reg, obs_before, ctx.Snapshot());
    FlushArenaStats(arena, reg);
  };

  // Materializes a frontier of `length`-edge chains into the canonical
  // PathSet — the single API-boundary copy the arena representation defers
  // everything to.
  auto materialize = [&](const std::vector<PathNodeId>& ids, size_t length) {
#ifndef NDEBUG
    arena.CheckCanonicalLevel(ids, length);
#endif
    std::vector<Path> paths;
    paths.reserve(ids.size());
    for (PathNodeId id : ids) {
      Path p;
      arena.MaterializePrefixInto(id, length, p);
      paths.push_back(std::move(p));
    }
    return PathSet::FromSortedUnique(std::move(paths));
  };

  // Seed level: lift the matching edges into length-1 chains.
  {
    ExecSpan seed_span(ctx, "traverse.level", /*level=*/0);
    for (const Edge& e : CollectMatchingEdges(universe, steps.front())) {
      if (!ctx.CheckStep().ok() ||
          (last_level == 0 && !ctx.ChargePaths().ok()) ||
          !ctx.ChargeBytes(PathArena::kNodeBytes).ok()) {
        trip = ctx.limit_status();
        break;
      }
      frontier.push_back(arena.AddRoot(e));
    }
  }
  seed_edges = frontier.size();
  if (!trip.ok()) {
    out.truncated = true;
    out.limit = std::move(trip);
    if (last_level == 0) out.paths = materialize(frontier, 1);
    flush_obs();
    out.stats = ctx.Snapshot();
    return out;
  }

  for (size_t k = 1; k < steps.size() && !frontier.empty(); ++k) {
    ++levels_run;
    if (reg != nullptr) {
      reg->Record(obs::Hist::kTraversalLevelWidth, frontier.size());
    }
    ExecSpan level_span(ctx, "traverse.level", static_cast<int64_t>(k));
    const EdgePattern& step = steps[k];
    const bool final_level = k == last_level;

    // Pick this level's execution strategy. The decision probe (head
    // bitmap + popcount) only runs once the frontier is wide enough for
    // dense to be in play, so narrow levels pay nothing beyond the two
    // branch tests.
    std::optional<ForwardLevelCache> cache;
    if (policy.mode != frontier::DensityMode::kForceSparse) {
      const bool benefits = StepBenefitsFromDense(step);
      if (policy.mode == frontier::DensityMode::kForceDense ||
          (benefits && frontier.size() >= policy.min_frontier_paths)) {
        std::chrono::steady_clock::time_point t0;
        if (reg != nullptr) t0 = std::chrono::steady_clock::now();
        head_seen.Reset(universe.num_vertices());
        for (PathNodeId source : frontier) head_seen.Set(arena.HeadOf(source));
        const uint64_t distinct = head_seen.Count();
        frontier_words += head_seen.num_words();
        if (frontier::ShouldGoDense(policy, frontier.size(), distinct,
                                    universe.num_vertices(), benefits)) {
          cache.emplace(universe, step);
          frontier_words += cache->build_words();
        }
        if (reg != nullptr) {
          reg->Record(obs::Hist::kFrontierKernelNanos,
                      static_cast<uint64_t>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()));
        }
      }
    }
    if (cache.has_value()) {
      ++dense_levels;
    } else {
      ++sparse_levels;
    }

    Status overflow;
    next.clear();
    for (PathNodeId source : frontier) {
      // Extend the chain with matching out-edges of its head — an
      // index-backed equijoin on γ+(p) = γ−(e), narrowed to the label
      // sub-run when the step pins one label. The path budget is charged
      // per emitted path (so a budget of k keeps exactly the first k), but
      // steps and bytes are batched per source path to keep the guard off
      // the innermost loop — those budgets have one-out-run granularity.
      size_t expanded = 0;
      auto extend = [&](const Edge& e) {
        if (!overflow.ok() || !trip.ok()) return;
        if (next.size() >= hard_limit) {
          overflow = Status::ResourceExhausted(
              "traversal exceeded max_paths = " + std::to_string(hard_limit));
          return;
        }
        if (final_level && !ctx.ChargePaths().ok()) {
          trip = ctx.limit_status();
          return;
        }
        ++expanded;
        next.push_back(arena.Extend(source, e));
      };
      if (cache.has_value()) {
        // Dense: the memoized run IS the sequence ForEachMatchingOutEdge
        // yields (same order, same elements), fed through the same guard
        // lambda — strategy cannot perturb governed accounting.
        for (const Edge& e : cache->MatchedRun(arena.HeadOf(source))) {
          extend(e);
        }
      } else {
        ForEachMatchingOutEdge(universe, arena.HeadOf(source), step, extend);
      }
      if (!overflow.ok()) return overflow;
      if (trip.ok() && (!ctx.CheckStep(expanded + 1).ok() ||
                        !ctx.ChargeBytes(expanded * PathArena::kNodeBytes)
                             .ok())) {
        trip = ctx.limit_status();
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
      if (final_level) out.paths = materialize(next, k + 1);
      flush_obs();
      out.stats = ctx.Snapshot();
      return out;
    }
    frontier.swap(next);
  }
  out.paths = materialize(frontier, steps.size());
  flush_obs();
  out.stats = ctx.Snapshot();
  return out;
}

// The pre-arena fold, retained verbatim as the differential oracle (the
// arena ⇄ materialized identity suites) and the E17 baseline: every
// extension copies its full prefix into a fresh Path and every level is
// canonicalized through PathSetBuilder. Byte charges use the SAME
// PathArena::kNodeBytes unit as the arena fold, so the two engines are
// byte-identical under every governed regime — they differ only in how the
// paths are stored while the fold runs.
Result<GovernedPathSet> FoldJoinMaterialized(
    const EdgeUniverse& universe, const std::vector<EdgePattern>& steps,
    const PathSetLimits& limits, ExecContext& ctx) {
  GovernedPathSet out;
  if (steps.empty()) {
    if (Status trip = ctx.ChargePaths(); !trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
    } else {
      out.paths = PathSet::EpsilonSet();
    }
    out.stats = ctx.Snapshot();
    return out;
  }

  const size_t hard_limit =
      limits.max_paths.value_or(std::numeric_limits<size_t>::max());
  const size_t last_level = steps.size() - 1;
  Status trip;

  PathSetBuilder builder;
  for (const Edge& e : CollectMatchingEdges(universe, steps.front())) {
    if (!ctx.CheckStep().ok() ||
        (last_level == 0 && !ctx.ChargePaths().ok()) ||
        !ctx.ChargeBytes(PathArena::kNodeBytes).ok()) {
      trip = ctx.limit_status();
      break;
    }
    builder.Add(Path(e));
  }
  if (!trip.ok()) {
    out.truncated = true;
    out.limit = std::move(trip);
    if (last_level == 0) out.paths = builder.Build();
    out.stats = ctx.Snapshot();
    return out;
  }
  PathSet acc = builder.Build();

  for (size_t k = 1; k < steps.size() && !acc.empty(); ++k) {
    const EdgePattern& step = steps[k];
    const bool final_level = k == last_level;
    Status overflow;
    for (const Path& p : acc) {
      size_t expanded = 0;
      ForEachMatchingOutEdge(universe, p.Head(), step, [&](const Edge& e) {
        if (!overflow.ok() || !trip.ok()) return;
        if (builder.staged_size() >= hard_limit) {
          overflow = Status::ResourceExhausted(
              "traversal exceeded max_paths = " + std::to_string(hard_limit));
          return;
        }
        if (final_level && !ctx.ChargePaths().ok()) {
          trip = ctx.limit_status();
          return;
        }
        ++expanded;
        Path extended = p;  // The O(level) prefix copy the arena eliminates.
        extended.Append(e);
        builder.Add(std::move(extended));
      });
      if (!overflow.ok()) return overflow;
      if (trip.ok() && (!ctx.CheckStep(expanded + 1).ok() ||
                        !ctx.ChargeBytes(expanded * PathArena::kNodeBytes)
                             .ok())) {
        trip = ctx.limit_status();
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
      if (final_level) out.paths = builder.Build();
      out.stats = ctx.Snapshot();
      return out;
    }
    acc = builder.Build();
  }
  out.paths = std::move(acc);
  out.stats = ctx.Snapshot();
  return out;
}

// The ungoverned entry points run under a fresh unlimited context; the only
// way it can trip is an armed fault injector, which is surfaced as the
// error the injector prescribed.
Result<PathSet> FoldJoinStrict(const EdgeUniverse& universe,
                               const std::vector<EdgePattern>& steps,
                               const PathSetLimits& limits,
                               const frontier::DensityPolicy& policy = {}) {
  ExecContext unlimited;
  Result<GovernedPathSet> result =
      FoldJoin(universe, steps, limits, policy, unlimited);
  if (!result.ok()) return result.status();
  if (result->truncated) return result->limit;
  return std::move(result->paths);
}

std::vector<EdgePattern> UniformSteps(size_t n, const EdgePattern& pattern) {
  return std::vector<EdgePattern>(n, pattern);
}

}  // namespace

Result<PathSet> CompleteTraversal(const EdgeUniverse& universe, size_t n,
                                  const PathSetLimits& limits) {
  return FoldJoinStrict(universe, UniformSteps(n, EdgePattern::Any()), limits);
}

Result<PathSet> SourceTraversal(const EdgeUniverse& universe,
                                const std::vector<VertexId>& sources, size_t n,
                                bool complement, const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources, complement);
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> DestinationTraversal(const EdgeUniverse& universe,
                                     const std::vector<VertexId>& destinations,
                                     size_t n, bool complement,
                                     const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.back() = EdgePattern::IntoAnyOf(destinations, complement);
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> SourceDestinationTraversal(
    const EdgeUniverse& universe, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& destinations, size_t n,
    const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources);
  if (n == 1) {
    // A single step must satisfy both restrictions at once.
    steps.front() = EdgePattern(IdConstraint(sources), IdConstraint(),
                                IdConstraint(destinations));
  } else {
    steps.back() = EdgePattern::IntoAnyOf(destinations);
  }
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> LabeledTraversal(
    const EdgeUniverse& universe,
    const std::vector<std::vector<LabelId>>& step_labels,
    const PathSetLimits& limits) {
  std::vector<EdgePattern> steps;
  steps.reserve(step_labels.size());
  for (const std::vector<LabelId>& labels : step_labels) {
    steps.push_back(labels.empty() ? EdgePattern::Any()
                                   : EdgePattern::LabeledAnyOf(labels));
  }
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> Traverse(const EdgeUniverse& universe,
                         const TraversalSpec& spec) {
  return FoldJoinStrict(universe, spec.steps, spec.limits, spec.density);
}

Result<GovernedPathSet> TraverseGoverned(const EdgeUniverse& universe,
                                         const TraversalSpec& spec,
                                         ExecContext& ctx) {
  return FoldJoin(universe, spec.steps, spec.limits, spec.density, ctx);
}

Result<GovernedPathSet> TraverseGovernedMaterialized(
    const EdgeUniverse& universe, const TraversalSpec& spec,
    ExecContext& ctx) {
  return FoldJoinMaterialized(universe, spec.steps, spec.limits, ctx);
}

}  // namespace mrpa
