#include "core/traversal.h"

#include <limits>
#include <utility>

namespace mrpa {

namespace {

// Left-to-right fold of ⋈◦ over per-step edge sets, threaded through the
// execution guard. The first step's edge set seeds the accumulator; every
// later step extends paths whose head matches. Iterating with an
// adjacency-aware extension (rather than repeatedly calling the generic
// join) keeps this O(paths · out-degree).
//
// Two failure regimes coexist:
//   * limits.max_paths (the pre-governance API) stays a hard error — the
//     whole evaluation returns ResourceExhausted with no partial result.
//   * ctx budgets trip gracefully — the fold stops and reports whatever
//     full-length paths it already yielded, flagged `truncated`.
// The path budget is charged only for full-length (final level) paths, so a
// budget of k yields the k first full-length paths in canonical order —
// the same prefix StepPathIterator yields under the same budget.
Result<GovernedPathSet> FoldJoin(const EdgeUniverse& universe,
                                 const std::vector<EdgePattern>& steps,
                                 const PathSetLimits& limits,
                                 ExecContext& ctx) {
  GovernedPathSet out;
  if (steps.empty()) {
    // The 0-step traversal denotes {ε}; ε still counts against the budget.
    if (Status trip = ctx.ChargePaths(); !trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
    } else {
      out.paths = PathSet::EpsilonSet();
    }
    out.stats = ctx.Snapshot();
    return out;
  }

  const size_t hard_limit =
      limits.max_paths.value_or(std::numeric_limits<size_t>::max());
  const size_t last_level = steps.size() - 1;
  Status trip;

  // Seed level: lift the matching edges into length-1 paths.
  PathSetBuilder builder;
  for (const Edge& e : CollectMatchingEdges(universe, steps.front())) {
    if (!ctx.CheckStep().ok() ||
        (last_level == 0 && !ctx.ChargePaths().ok()) ||
        !ctx.ChargeBytes(sizeof(Path) + sizeof(Edge)).ok()) {
      trip = ctx.limit_status();
      break;
    }
    builder.Add(Path(e));
  }
  if (!trip.ok()) {
    out.truncated = true;
    out.limit = std::move(trip);
    if (last_level == 0) out.paths = builder.Build();
    out.stats = ctx.Snapshot();
    return out;
  }
  PathSet acc = builder.Build();

  for (size_t k = 1; k < steps.size() && !acc.empty(); ++k) {
    const EdgePattern& step = steps[k];
    const bool final_level = k == last_level;
    Status overflow;
    for (const Path& p : acc) {
      // Extend p with matching out-edges of its head — an index-backed
      // equijoin on γ+(p) = γ−(e), narrowed to the label sub-run when the
      // step pins one label. The path budget is charged per emitted path
      // (so a budget of k keeps exactly the first k), but steps and bytes
      // are batched per source path to keep the guard off the innermost
      // loop — those budgets have one-out-run granularity.
      const size_t bytes_per_edge = ApproxBytes(p) + sizeof(Edge);
      size_t expanded = 0;
      ForEachMatchingOutEdge(universe, p.Head(), step, [&](const Edge& e) {
        if (!overflow.ok() || !trip.ok()) return;
        if (builder.staged_size() >= hard_limit) {
          overflow = Status::ResourceExhausted(
              "traversal exceeded max_paths = " + std::to_string(hard_limit));
          return;
        }
        if (final_level && !ctx.ChargePaths().ok()) {
          trip = ctx.limit_status();
          return;
        }
        ++expanded;
        Path extended = p;
        extended.Append(e);
        builder.Add(std::move(extended));
      });
      if (!overflow.ok()) return overflow;
      if (trip.ok() && (!ctx.CheckStep(expanded + 1).ok() ||
                        !ctx.ChargeBytes(expanded * bytes_per_edge).ok())) {
        trip = ctx.limit_status();
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      out.truncated = true;
      out.limit = std::move(trip);
      if (final_level) out.paths = builder.Build();
      out.stats = ctx.Snapshot();
      return out;
    }
    acc = builder.Build();
  }
  out.paths = std::move(acc);
  out.stats = ctx.Snapshot();
  return out;
}

// The ungoverned entry points run under a fresh unlimited context; the only
// way it can trip is an armed fault injector, which is surfaced as the
// error the injector prescribed.
Result<PathSet> FoldJoinStrict(const EdgeUniverse& universe,
                               const std::vector<EdgePattern>& steps,
                               const PathSetLimits& limits) {
  ExecContext unlimited;
  Result<GovernedPathSet> result =
      FoldJoin(universe, steps, limits, unlimited);
  if (!result.ok()) return result.status();
  if (result->truncated) return result->limit;
  return std::move(result->paths);
}

std::vector<EdgePattern> UniformSteps(size_t n, const EdgePattern& pattern) {
  return std::vector<EdgePattern>(n, pattern);
}

}  // namespace

Result<PathSet> CompleteTraversal(const EdgeUniverse& universe, size_t n,
                                  const PathSetLimits& limits) {
  return FoldJoinStrict(universe, UniformSteps(n, EdgePattern::Any()), limits);
}

Result<PathSet> SourceTraversal(const EdgeUniverse& universe,
                                const std::vector<VertexId>& sources, size_t n,
                                bool complement, const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources, complement);
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> DestinationTraversal(const EdgeUniverse& universe,
                                     const std::vector<VertexId>& destinations,
                                     size_t n, bool complement,
                                     const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.back() = EdgePattern::IntoAnyOf(destinations, complement);
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> SourceDestinationTraversal(
    const EdgeUniverse& universe, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& destinations, size_t n,
    const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources);
  if (n == 1) {
    // A single step must satisfy both restrictions at once.
    steps.front() = EdgePattern(IdConstraint(sources), IdConstraint(),
                                IdConstraint(destinations));
  } else {
    steps.back() = EdgePattern::IntoAnyOf(destinations);
  }
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> LabeledTraversal(
    const EdgeUniverse& universe,
    const std::vector<std::vector<LabelId>>& step_labels,
    const PathSetLimits& limits) {
  std::vector<EdgePattern> steps;
  steps.reserve(step_labels.size());
  for (const std::vector<LabelId>& labels : step_labels) {
    steps.push_back(labels.empty() ? EdgePattern::Any()
                                   : EdgePattern::LabeledAnyOf(labels));
  }
  return FoldJoinStrict(universe, steps, limits);
}

Result<PathSet> Traverse(const EdgeUniverse& universe,
                         const TraversalSpec& spec) {
  return FoldJoinStrict(universe, spec.steps, spec.limits);
}

Result<GovernedPathSet> TraverseGoverned(const EdgeUniverse& universe,
                                         const TraversalSpec& spec,
                                         ExecContext& ctx) {
  return FoldJoin(universe, spec.steps, spec.limits, ctx);
}

}  // namespace mrpa
