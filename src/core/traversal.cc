#include "core/traversal.h"

#include <limits>

namespace mrpa {

namespace {

// Left-to-right fold of ⋈◦ over per-step edge sets. The first step's edge
// set seeds the accumulator; every later step extends paths whose head
// matches. Iterating with an adjacency-aware extension (rather than
// repeatedly calling the generic join) keeps this O(paths · out-degree).
Result<PathSet> FoldJoin(const EdgeUniverse& universe,
                         const std::vector<EdgePattern>& steps,
                         const PathSetLimits& limits) {
  if (steps.empty()) return PathSet::EpsilonSet();
  const size_t limit =
      limits.max_paths.value_or(std::numeric_limits<size_t>::max());

  PathSet acc =
      PathSet::FromEdges(CollectMatchingEdges(universe, steps.front()));
  for (size_t k = 1; k < steps.size() && !acc.empty(); ++k) {
    const EdgePattern& step = steps[k];
    PathSetBuilder builder;
    Status overflow;
    for (const Path& p : acc) {
      // Extend p with matching out-edges of its head — an index-backed
      // equijoin on γ+(p) = γ−(e), narrowed to the label sub-run when the
      // step pins one label.
      ForEachMatchingOutEdge(universe, p.Head(), step, [&](const Edge& e) {
        if (!overflow.ok()) return;
        if (builder.staged_size() >= limit) {
          overflow = Status::ResourceExhausted(
              "traversal exceeded max_paths = " + std::to_string(limit));
          return;
        }
        Path extended = p;
        extended.Append(e);
        builder.Add(std::move(extended));
      });
      if (!overflow.ok()) return overflow;
    }
    acc = builder.Build();
  }
  return acc;
}

std::vector<EdgePattern> UniformSteps(size_t n, const EdgePattern& pattern) {
  return std::vector<EdgePattern>(n, pattern);
}

}  // namespace

Result<PathSet> CompleteTraversal(const EdgeUniverse& universe, size_t n,
                                  const PathSetLimits& limits) {
  return FoldJoin(universe, UniformSteps(n, EdgePattern::Any()), limits);
}

Result<PathSet> SourceTraversal(const EdgeUniverse& universe,
                                const std::vector<VertexId>& sources, size_t n,
                                bool complement, const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources, complement);
  return FoldJoin(universe, steps, limits);
}

Result<PathSet> DestinationTraversal(const EdgeUniverse& universe,
                                     const std::vector<VertexId>& destinations,
                                     size_t n, bool complement,
                                     const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.back() = EdgePattern::IntoAnyOf(destinations, complement);
  return FoldJoin(universe, steps, limits);
}

Result<PathSet> SourceDestinationTraversal(
    const EdgeUniverse& universe, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& destinations, size_t n,
    const PathSetLimits& limits) {
  if (n == 0) return PathSet::EpsilonSet();
  std::vector<EdgePattern> steps = UniformSteps(n, EdgePattern::Any());
  steps.front() = EdgePattern::FromAnyOf(sources);
  if (n == 1) {
    // A single step must satisfy both restrictions at once.
    steps.front() = EdgePattern(IdConstraint(sources), IdConstraint(),
                                IdConstraint(destinations));
  } else {
    steps.back() = EdgePattern::IntoAnyOf(destinations);
  }
  return FoldJoin(universe, steps, limits);
}

Result<PathSet> LabeledTraversal(
    const EdgeUniverse& universe,
    const std::vector<std::vector<LabelId>>& step_labels,
    const PathSetLimits& limits) {
  std::vector<EdgePattern> steps;
  steps.reserve(step_labels.size());
  for (const std::vector<LabelId>& labels : step_labels) {
    steps.push_back(labels.empty() ? EdgePattern::Any()
                                   : EdgePattern::LabeledAnyOf(labels));
  }
  return FoldJoin(universe, steps, limits);
}

Result<PathSet> Traverse(const EdgeUniverse& universe,
                         const TraversalSpec& spec) {
  return FoldJoin(universe, spec.steps, spec.limits);
}

}  // namespace mrpa
