#include "core/edge_pattern.h"

#include <algorithm>
#include <sstream>

namespace mrpa {

IdConstraint::IdConstraint(std::vector<uint32_t> ids, bool negated)
    : negated_(negated) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  ids_ = std::move(ids);
}

bool IdConstraint::Matches(uint32_t id) const {
  if (!ids_.has_value()) return true;
  bool in_set = std::binary_search(ids_->begin(), ids_->end(), id);
  return negated_ ? !in_set : in_set;
}

std::optional<uint32_t> IdConstraint::SingleId() const {
  if (ids_.has_value() && ids_->size() == 1 && !negated_) {
    return ids_->front();
  }
  return std::nullopt;
}

namespace {

std::string ConstraintToString(const IdConstraint& c) {
  if (c.IsUnconstrained()) return "_";
  std::ostringstream os;
  if (c.negated()) os << '!';  // Matches the parser's complement syntax.
  if (c.ids()->size() == 1) {
    os << c.ids()->front();
  } else {
    os << '{';
    for (size_t i = 0; i < c.ids()->size(); ++i) {
      if (i > 0) os << ',';
      os << (*c.ids())[i];
    }
    os << '}';
  }
  return os.str();
}

}  // namespace

std::string EdgePattern::ToString() const {
  std::ostringstream os;
  os << '[' << ConstraintToString(tail_) << ", " << ConstraintToString(label_)
     << ", " << ConstraintToString(head_) << ']';
  return os.str();
}

std::vector<Edge> CollectMatchingEdges(const EdgeUniverse& universe,
                                       const EdgePattern& pattern) {
  std::vector<Edge> out;

  // Access path 1: a single allowed tail — scan that vertex's out-run.
  if (auto tail = pattern.tail().SingleId(); tail.has_value()) {
    if (*tail < universe.num_vertices()) {
      for (const Edge& e : universe.OutEdges(*tail)) {
        if (pattern.Matches(e)) out.push_back(e);
      }
    }
    return out;
  }

  // Access path 2: a small set of allowed tails.
  if (!pattern.tail().IsUnconstrained() && !pattern.tail().negated()) {
    for (VertexId v : *pattern.tail().ids()) {
      if (v >= universe.num_vertices()) continue;
      for (const Edge& e : universe.OutEdges(v)) {
        if (pattern.Matches(e)) out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Access path 3: a single allowed head — use the in-index.
  if (auto head = pattern.head().SingleId(); head.has_value()) {
    if (*head < universe.num_vertices()) {
      for (EdgeIndex idx : universe.InEdgeIndices(*head)) {
        const Edge& e = universe.EdgeAt(idx);
        if (pattern.Matches(e)) out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Access path 4: a single allowed label — use the label index.
  if (auto label = pattern.label().SingleId(); label.has_value()) {
    if (*label < universe.num_labels()) {
      for (EdgeIndex idx : universe.LabelEdgeIndices(*label)) {
        const Edge& e = universe.EdgeAt(idx);
        if (pattern.Matches(e)) out.push_back(e);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Fallback: full scan of the canonical edge array (already sorted).
  for (const Edge& e : universe.AllEdges()) {
    if (pattern.Matches(e)) out.push_back(e);
  }
  return out;
}

}  // namespace mrpa
