// EdgePattern: the paper's set-builder notation for subsets of E (§IV-A).
//
//   [i, _, _]  all edges emanating from vertex i        → EdgePattern::From(i)
//   [_, α, _]  all edges labeled α                      → EdgePattern::Labeled(α)
//   [_, _, j]  all edges terminating at vertex j        → EdgePattern::Into(j)
//   [_, _, _]  E itself                                 → EdgePattern::Any()
//
// Patterns generalize the single-id forms to *sets* of allowed tails, labels,
// and heads, which is what the basic traversals of §III need (Vs, Vd, Ωe are
// sets). An unconstrained position matches everything. Complement sets
// ("start anywhere except Vs", §III-B) are expressed with the `negate_*`
// flags.

#ifndef MRPA_CORE_EDGE_PATTERN_H_
#define MRPA_CORE_EDGE_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/edge.h"
#include "core/edge_universe.h"
#include "core/ids.h"

namespace mrpa {

// A sorted id set used as one positional constraint; empty optional means
// "unconstrained".
class IdConstraint {
 public:
  // Unconstrained (matches every id).
  IdConstraint() = default;

  // Constrains to exactly the given ids (duplicates removed). When `negated`,
  // matches every id NOT in the set.
  explicit IdConstraint(std::vector<uint32_t> ids, bool negated = false);

  // Constrains to a single id.
  static IdConstraint Exactly(uint32_t id) {
    return IdConstraint(std::vector<uint32_t>{id});
  }

  bool IsUnconstrained() const { return !ids_.has_value(); }
  bool Matches(uint32_t id) const;

  // The single allowed id, when the constraint is a non-negated singleton;
  // nullopt otherwise. Lets evaluators pick a point index lookup.
  std::optional<uint32_t> SingleId() const;

  const std::optional<std::vector<uint32_t>>& ids() const { return ids_; }
  bool negated() const { return negated_; }

  friend bool operator==(const IdConstraint&, const IdConstraint&) = default;

 private:
  std::optional<std::vector<uint32_t>> ids_;  // Sorted when present.
  bool negated_ = false;
};

// A predicate over E: tail ∈ Vs ∧ label ∈ Ωe ∧ head ∈ Vd, with each position
// independently constrainable.
class EdgePattern {
 public:
  // [_, _, _] = E.
  EdgePattern() = default;

  EdgePattern(IdConstraint tail, IdConstraint label, IdConstraint head)
      : tail_(std::move(tail)),
        label_(std::move(label)),
        head_(std::move(head)) {}

  // The paper's three single-id set-builder forms plus E.
  static EdgePattern Any() { return EdgePattern(); }
  static EdgePattern From(VertexId i) {
    return EdgePattern(IdConstraint::Exactly(i), {}, {});
  }
  static EdgePattern Labeled(LabelId alpha) {
    return EdgePattern({}, IdConstraint::Exactly(alpha), {});
  }
  static EdgePattern Into(VertexId j) {
    return EdgePattern({}, {}, IdConstraint::Exactly(j));
  }

  // A pattern matching exactly one edge, {(i, α, j)}.
  static EdgePattern Exactly(const Edge& e) {
    return EdgePattern(IdConstraint::Exactly(e.tail),
                       IdConstraint::Exactly(e.label),
                       IdConstraint::Exactly(e.head));
  }

  // Set-valued restrictions used by the §III traversal idioms.
  static EdgePattern FromAnyOf(std::vector<VertexId> sources,
                               bool negated = false) {
    return EdgePattern(IdConstraint(std::move(sources), negated), {}, {});
  }
  static EdgePattern IntoAnyOf(std::vector<VertexId> destinations,
                               bool negated = false) {
    return EdgePattern({}, {}, IdConstraint(std::move(destinations), negated));
  }
  static EdgePattern LabeledAnyOf(std::vector<LabelId> labels,
                                  bool negated = false) {
    return EdgePattern({}, IdConstraint(std::move(labels), negated), {});
  }

  bool Matches(const Edge& e) const {
    return tail_.Matches(e.tail) && label_.Matches(e.label) &&
           head_.Matches(e.head);
  }

  bool IsUnconstrained() const {
    return tail_.IsUnconstrained() && label_.IsUnconstrained() &&
           head_.IsUnconstrained();
  }

  const IdConstraint& tail() const { return tail_; }
  const IdConstraint& label() const { return label_; }
  const IdConstraint& head() const { return head_; }

  friend bool operator==(const EdgePattern&, const EdgePattern&) = default;

  // "[i, _, _]"-style rendering.
  std::string ToString() const;

 private:
  IdConstraint tail_;
  IdConstraint label_;
  IdConstraint head_;
};

// Materializes { e ∈ E | pattern.Matches(e) }, choosing the cheapest access
// path the universe offers (point out-edge scan, in-index, label index, or
// full scan).
std::vector<Edge> CollectMatchingEdges(const EdgeUniverse& universe,
                                       const EdgePattern& pattern);

// Invokes `fn(edge)` for every out-edge of `v` matching `pattern`. This is
// the traversal inner loop: when the pattern pins a single (non-negated)
// label, only that label's sub-run of the out-adjacency is visited.
template <typename Fn>
void ForEachMatchingOutEdge(const EdgeUniverse& universe, VertexId v,
                            const EdgePattern& pattern, Fn&& fn) {
  if (auto label = pattern.label().SingleId(); label.has_value()) {
    for (const Edge& e : universe.OutEdgesWithLabel(v, *label)) {
      if (pattern.tail().Matches(e.tail) && pattern.head().Matches(e.head)) {
        fn(e);
      }
    }
    return;
  }
  for (const Edge& e : universe.OutEdges(v)) {
    if (pattern.Matches(e)) fn(e);
  }
}

}  // namespace mrpa

#endif  // MRPA_CORE_EDGE_PATTERN_H_
