#include "core/binary_algebra.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace mrpa::binary {

Result<VertexPath> VertexPath::JointConcat(const VertexPath& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  if (Head() != other.Tail()) {
    return Status::InvalidArgument(
        "joint concat requires head(a) == tail(b)");
  }
  std::vector<VertexId> combined;
  combined.reserve(vertices_.size() + other.vertices_.size() - 1);
  combined.insert(combined.end(), vertices_.begin(), vertices_.end());
  combined.insert(combined.end(), other.vertices_.begin() + 1,
                  other.vertices_.end());
  return VertexPath(std::move(combined));
}

std::string VertexPath::ToString() const {
  if (vertices_.empty()) return "ε";
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i > 0) os << ',';
    os << vertices_[i];
  }
  os << ')';
  return os.str();
}

Result<VertexPath> ForgetLabels(const Path& path) {
  if (path.empty()) return VertexPath();
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "only joint paths have a single vertex-string image");
  }
  std::vector<VertexId> vertices;
  vertices.reserve(path.length() + 1);
  vertices.push_back(path.Tail());
  for (const Edge& e : path) vertices.push_back(e.head);
  return VertexPath(std::move(vertices));
}

VertexPathSet::VertexPathSet(std::vector<VertexPath> paths)
    : paths_(std::move(paths)) {
  std::sort(paths_.begin(), paths_.end());
  paths_.erase(std::unique(paths_.begin(), paths_.end()), paths_.end());
}

VertexPathSet VertexPathSet::FromBinaryRelation(
    const std::vector<std::pair<VertexId, VertexId>>& relation) {
  std::vector<VertexPath> paths;
  paths.reserve(relation.size());
  for (const auto& [i, j] : relation) paths.emplace_back(i, j);
  return VertexPathSet(std::move(paths));
}

bool VertexPathSet::Contains(const VertexPath& p) const {
  return std::binary_search(paths_.begin(), paths_.end(), p);
}

VertexPathSet Join(const VertexPathSet& a, const VertexPathSet& b) {
  std::unordered_map<VertexId, std::vector<const VertexPath*>> by_tail;
  by_tail.reserve(b.size());
  bool b_has_epsilon = false;
  for (const VertexPath& q : b.paths()) {
    if (q.empty()) {
      b_has_epsilon = true;
    } else {
      by_tail[q.Tail()].push_back(&q);
    }
  }

  std::vector<VertexPath> out;
  for (const VertexPath& p : a.paths()) {
    if (p.empty()) {
      out.insert(out.end(), b.paths().begin(), b.paths().end());
      continue;
    }
    if (b_has_epsilon) out.push_back(p);
    auto it = by_tail.find(p.Head());
    if (it == by_tail.end()) continue;
    for (const VertexPath* q : it->second) {
      Result<VertexPath> joined = p.JointConcat(*q);
      out.push_back(std::move(joined).value());  // Adjacency held by lookup.
    }
  }
  return VertexPathSet(std::move(out));
}

size_t PayloadBytes(const VertexPathSet& set) {
  size_t bytes = 0;
  for (const VertexPath& p : set.paths()) {
    bytes += p.vertices().size() * sizeof(VertexId);
  }
  return bytes;
}

}  // namespace mrpa::binary
