#include "core/edge_universe.h"

#include <algorithm>

namespace mrpa {

bool EdgeUniverse::HasEdge(const Edge& e) const {
  std::span<const Edge> out = OutEdges(e.tail);
  return std::binary_search(out.begin(), out.end(), e);
}

std::span<const Edge> EdgeUniverse::OutEdgesWithLabel(VertexId v,
                                                      LabelId label) const {
  std::span<const Edge> out = OutEdges(v);
  auto lower = std::lower_bound(
      out.begin(), out.end(), label,
      [](const Edge& e, LabelId l) { return e.label < l; });
  auto upper = std::upper_bound(
      lower, out.end(), label,
      [](LabelId l, const Edge& e) { return l < e.label; });
  if (lower == upper) return {};
  return std::span<const Edge>(&*lower, static_cast<size_t>(upper - lower));
}

}  // namespace mrpa
