// PathSet: an element of P(E*), a finite set of paths.
//
// The three set-level operations of the paper (§II):
//   A ∪ B    Union(A, B)                 — standard set union
//   A ⋈◦ B   ConcatenativeJoin(A, B)     — { a ◦ b | a∈A ∧ b∈B ∧
//                                            (a=ε ∨ b=ε ∨ γ+(a)=γ−(b)) }
//   A ×◦ B   ConcatenativeProduct(A, B)  — { a ◦ b | a∈A ∧ b∈B }
//
// Storage is a canonically sorted, deduplicated vector of paths, so
// iteration order is deterministic across platforms — tests and benchmark
// series depend on this. The join is a hash equi-join on γ+(a) = γ−(b)
// (the paper's footnote 4 identifies ⋈◦ as the θ-join of Codd's relational
// algebra in equijoin form).

#ifndef MRPA_CORE_PATH_SET_H_
#define MRPA_CORE_PATH_SET_H_

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "core/path.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

// Estimated heap footprint of a materialized path / path set — the LEGACY
// unit for ExecContext memory budgets, kept only for the call sites that
// still materialize full paths per extension (the fluent traversal builder,
// the bottom-up expression evaluator, the §IV-B stack machine). The
// arena-native loops (Traverse/FoldJoin, the parallel shards, the backward
// chain evaluator, the product-graph generator) charge the exact
// PathArena::kNodeBytes per extension instead — see core/path_arena.h.
//
// The estimate counts the vector's allocated CAPACITY (growth slack is real
// memory) plus the LabelId vector a PathLabel() materialization would
// allocate — both were previously omitted, undercounting the footprint the
// budget exists to bound.
inline size_t ApproxBytes(const Path& p) {
  return sizeof(Path) + p.capacity() * sizeof(Edge) +
         p.length() * sizeof(LabelId);
}


// Resource bounds for set-producing operations. Join/product output is
// quadratic in the worst case; operations that would exceed `max_paths`
// return ResourceExhausted instead of exhausting memory. A nullopt bound
// means unlimited.
struct PathSetLimits {
  std::optional<size_t> max_paths;

  static PathSetLimits Unlimited() { return PathSetLimits{}; }
  static PathSetLimits AtMost(size_t n) { return PathSetLimits{n}; }
};

class PathSet {
 public:
  using const_iterator = std::vector<Path>::const_iterator;

  // ∅, the empty path set.
  PathSet() = default;

  // Builds a set from arbitrary (possibly duplicated, unsorted) paths.
  explicit PathSet(std::vector<Path> paths);
  PathSet(std::initializer_list<Path> paths);

  PathSet(const PathSet&) = default;
  PathSet& operator=(const PathSet&) = default;
  PathSet(PathSet&&) noexcept = default;
  PathSet& operator=(PathSet&&) noexcept = default;

  // {ε}: the singleton of the empty path — the identity of ⋈◦ and ×◦ and
  // the initial stack element of the §IV-B generator automaton.
  static PathSet EpsilonSet() { return PathSet({Path()}); }

  // Lifts a set of edges into P(E*) as length-1 paths (E ⊂ E*).
  static PathSet FromEdges(const std::vector<Edge>& edges);

  // Adopts a vector the caller guarantees is already sorted ascending with
  // no duplicates — O(1), no copy. The parallel traversal merge uses this:
  // its shard concatenation is canonical by construction, and re-sorting
  // would serialize the win. The invariant is assert-checked in debug
  // builds and trusted in release.
  static PathSet FromSortedUnique(std::vector<Path> paths);

  size_t size() const { return paths_.size(); }
  bool empty() const { return paths_.empty(); }
  bool Contains(const Path& p) const;
  bool ContainsEpsilon() const {
    return !paths_.empty() && paths_.front().empty();
  }

  // Inserts a path, preserving canonical order. O(n) worst case; prefer the
  // bulk constructor or Builder for many insertions.
  void Insert(const Path& p);

  const std::vector<Path>& paths() const { return paths_; }
  const_iterator begin() const { return paths_.begin(); }
  const_iterator end() const { return paths_.end(); }
  const Path& operator[](size_t i) const { return paths_[i]; }

  // True iff every path in the set is joint (Definition 3).
  bool AllJoint() const;

  // True iff this ⊆ other. Linear merge over the canonical orders.
  bool IsSubsetOf(const PathSet& other) const;

  // Filters by arbitrary predicates; each returns a new set.
  PathSet FilterByTail(VertexId tail) const;
  PathSet FilterByHead(VertexId head) const;
  PathSet FilterByLength(size_t length) const;

  // Multiset-free equality (canonical representation makes this O(n)).
  friend bool operator==(const PathSet&, const PathSet&) = default;

  // "{ε, (0,1,2)}"-style rendering for diagnostics.
  std::string ToString() const;

 private:
  friend class PathSetBuilder;

  // Invariant: sorted ascending, no duplicates.
  std::vector<Path> paths_;
};

// Estimated heap footprint of a whole set, summed over its paths.
size_t ApproxBytes(const PathSet& set);

// A PathSet plus the truncation contract of DESIGN.md's "Execution
// governance" section: when an ExecContext limit trips mid-evaluation, the
// evaluator returns what it computed with `truncated = true`, the tripping
// Status in `limit`, and the governance counters in `stats` — callers can
// use the partial answer, retry with a larger budget, or surface `limit`.
struct GovernedPathSet {
  PathSet paths;
  // True iff a limit stopped evaluation early; `paths` is then a subset of
  // the full answer.
  bool truncated = false;
  // OK when complete; kResourceExhausted / kDeadlineExceeded / kCancelled
  // (or an injected fault) when truncated.
  Status limit;
  ExecStats stats;
};

// ∪: set union of two path sets (linear merge).
PathSet Union(const PathSet& a, const PathSet& b);

// ∩ and \: P(E*) is a boolean set algebra besides its concatenative
// structure; intersection and difference round out the toolkit (e.g.
// "paths matching R but not Q" via Difference of two evaluations).
PathSet Intersection(const PathSet& a, const PathSet& b);
PathSet Difference(const PathSet& a, const PathSet& b);

// ⋈◦: the concatenative join. Only adjacent pairs concatenate, except that
// ε joins with everything (the paper's explicit a=ε ∨ b=ε disjunct).
// Associative, not commutative. Fails with ResourceExhausted if the output
// would exceed limits.max_paths.
Result<PathSet> ConcatenativeJoin(const PathSet& a, const PathSet& b,
                                  const PathSetLimits& limits = {});

// ×◦: the concatenative (Cartesian) product; concatenates all pairs,
// adjacent or not. The join is always a subset of the product
// (footnote 7: R ⋈◦ Q ⊆ R ×◦ Q).
Result<PathSet> ConcatenativeProduct(const PathSet& a, const PathSet& b,
                                     const PathSetLimits& limits = {});

// A ⋈◦ A ⋈◦ ... (n factors). JoinPower(A, 0) = {ε}; JoinPower(A, 1) = A.
Result<PathSet> JoinPower(const PathSet& a, size_t n,
                          const PathSetLimits& limits = {});

// Incremental, unordered accumulator; call Build() once to get the
// canonical PathSet. Used by join/product/generator inner loops.
class PathSetBuilder {
 public:
  PathSetBuilder() = default;

  void Add(Path p) { staged_.push_back(std::move(p)); }
  void AddAll(const PathSet& set);
  size_t staged_size() const { return staged_.size(); }

  // Pre-sizes the staging vector for a known output bound (join/product
  // output is ≤ |A|·|B|), avoiding the doubling reallocations — and the
  // path copies they move — on the way up.
  void Reserve(size_t n) { staged_.reserve(n); }

  // Sorts (moving paths, never copying them — Path's move ctor is noexcept,
  // so std::sort swaps vectors by pointer), dedups, and returns the set;
  // the builder is left empty.
  PathSet Build();

 private:
  std::vector<Path> staged_;
};

std::ostream& operator<<(std::ostream& os, const PathSet& set);

}  // namespace mrpa

#endif  // MRPA_CORE_PATH_SET_H_
