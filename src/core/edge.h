// Edge: an element of E ⊆ (V × Ω × V), the ternary edge relation.
//
// The paper (§II, closing paragraph) argues that the ternary representation
// (i, α, j) — rather than a family of binary relations — is what lets the
// concatenative join preserve path labels. Edge is therefore the atomic unit
// of the whole algebra: paths are strings over E, and every projection
// (γ−, γ+, ω) is a field access.

#ifndef MRPA_CORE_EDGE_H_
#define MRPA_CORE_EDGE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "core/ids.h"
#include "util/hash.h"

namespace mrpa {

// A directed, labeled edge (tail, label, head): "tail --label--> head".
struct Edge {
  VertexId tail = kInvalidVertex;
  LabelId label = kInvalidLabel;
  VertexId head = kInvalidVertex;

  constexpr Edge() = default;
  constexpr Edge(VertexId tail_vertex, LabelId edge_label,
                 VertexId head_vertex)
      : tail(tail_vertex), label(edge_label), head(head_vertex) {}

  // Canonical ordering: by tail, then label, then head. The graph substrate
  // sorts its edge array this way so that out-adjacency is a contiguous run.
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;

  // "(i,α,j)" rendered with numeric ids, e.g. "(0,1,2)".
  std::string ToString() const;
};

// γ− : E → V, the tail (source) projection for a single edge.
constexpr VertexId EdgeTail(const Edge& e) { return e.tail; }

// γ+ : E → V, the head (target) projection for a single edge.
constexpr VertexId EdgeHead(const Edge& e) { return e.head; }

// ω : E → Ω, the label projection.
constexpr LabelId EdgeLabel(const Edge& e) { return e.label; }

std::ostream& operator<<(std::ostream& os, const Edge& e);

// Hash functor usable with unordered containers.
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    uint64_t h = Mix64(e.tail);
    h = HashCombine(h, e.label);
    h = HashCombine(h, e.head);
    return static_cast<size_t>(h);
  }
};

}  // namespace mrpa

#endif  // MRPA_CORE_EDGE_H_
