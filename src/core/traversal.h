// The basic traversal idioms of §III, expressed directly over the algebra.
//
//   Complete traversal     E ⋈◦ ... ⋈◦ E (n times)          — §III-A
//   Source traversal       A ⋈◦ E ... ⋈◦ E, A = {e | γ−(e) ∈ Vs}  — §III-B
//   Destination traversal  E ⋈◦ ... E ⋈◦ B, B = {e | γ+(e) ∈ Vd}  — §III-C
//   Labeled traversal      A ⋈◦ B, A/B restricted by Ωe/Ωf        — §III-D
//
// Each function materializes the denoted path set. The TraversalSpec form
// composes all the restrictions (a per-step label set plus source and
// destination vertex sets) into one n-step traversal, which is how the
// combined idioms at the end of §III-C are expressed.

#ifndef MRPA_CORE_TRAVERSAL_H_
#define MRPA_CORE_TRAVERSAL_H_

#include <optional>
#include <vector>

#include "core/edge_pattern.h"
#include "core/edge_universe.h"
#include "core/path_set.h"
#include "frontier/policy.h"
#include "util/status.h"

namespace mrpa {

// All joint paths of length exactly `n` (§III-A). n = 0 yields {ε}.
Result<PathSet> CompleteTraversal(const EdgeUniverse& universe, size_t n,
                                  const PathSetLimits& limits = {});

// All joint paths of length `n` whose tail vertex lies in `sources`
// (§III-B). Pass `complement = true` for the Vs-bar form ("start anywhere
// except Vs").
Result<PathSet> SourceTraversal(const EdgeUniverse& universe,
                                const std::vector<VertexId>& sources, size_t n,
                                bool complement = false,
                                const PathSetLimits& limits = {});

// All joint paths of length `n` whose head vertex lies in `destinations`
// (§III-C).
Result<PathSet> DestinationTraversal(const EdgeUniverse& universe,
                                     const std::vector<VertexId>& destinations,
                                     size_t n, bool complement = false,
                                     const PathSetLimits& limits = {});

// Source and destination combined: emanate from Vs, arrive in Vd, length n.
Result<PathSet> SourceDestinationTraversal(
    const EdgeUniverse& universe, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& destinations, size_t n,
    const PathSetLimits& limits = {});

// Labeled traversal (§III-D): one label set per step; step k of the result
// paths carries a label in `step_labels[k]`. An empty inner vector means Ω
// (unrestricted) for that step.
Result<PathSet> LabeledTraversal(
    const EdgeUniverse& universe,
    const std::vector<std::vector<LabelId>>& step_labels,
    const PathSetLimits& limits = {});

// The fully general n-step traversal: an arbitrary EdgePattern per step,
// joined left-to-right. This subsumes all of the above (each idiom is a
// particular pattern sequence) and is what the fluent engine lowers to.
struct TraversalSpec {
  std::vector<EdgePattern> steps;
  PathSetLimits limits;
  // The sparse/dense execution switch (DESIGN.md "Dense-frontier
  // execution"). Pure strategy: any mode produces byte-identical governed
  // output; kAuto decides per level from frontier shape, refined by the
  // attached ObsRegistry's level-width history when one is present. The
  // forced modes exist for the differential suites and the E22 baselines.
  frontier::DensityPolicy density;
};

Result<PathSet> Traverse(const EdgeUniverse& universe,
                         const TraversalSpec& spec);

// Governed evaluation: the same fold, threaded through `ctx`. When a budget,
// deadline, or cancellation trips, the result is returned OK with
// `truncated = true`, the tripping Status in `limit`, and whatever
// full-length paths were already yielded in `paths` (paths yielded under a
// budget of k are exactly the k first paths in the set's canonical order).
// A trip at an intermediate join level yields an empty (but still truncated)
// set — only full-length paths are ever reported. spec.limits.max_paths
// keeps its hard-error semantics (non-OK Result), as in Traverse().
Result<GovernedPathSet> TraverseGoverned(const EdgeUniverse& universe,
                                         const TraversalSpec& spec,
                                         ExecContext& ctx);

// The pre-arena fold: every extension copies its full prefix into a fresh
// Path, every level is canonicalized through PathSetBuilder. Same contract,
// same guard-call sequence, same PathArena::kNodeBytes byte unit as
// TraverseGoverned — output is byte-identical under every governed regime.
// Retained as the differential oracle for the arena engine and as the E17
// benchmark baseline; not for production use.
Result<GovernedPathSet> TraverseGovernedMaterialized(
    const EdgeUniverse& universe, const TraversalSpec& spec, ExecContext& ctx);

class ThreadPool;

// Tuning knobs for the parallel fold. The defaults favor load balance: a
// few shards per worker so the work-stealing pool can even out skewed
// degree distributions (one hub vertex should not serialize a level).
struct ParallelTraversalOptions {
  // The pool to run on; nullptr falls back to the sequential fold.
  ThreadPool* pool = nullptr;
  // Seed shards per pool thread. More shards → better balance, more
  // per-shard fixed cost.
  size_t shards_per_thread = 4;
  // Never cut shards smaller than this many seed paths; tiny inputs run on
  // fewer shards (possibly one, i.e. effectively sequentially).
  size_t min_shard_size = 16;
  // When false (default) every shard speculates under the parent's FULL
  // remaining budget, which is what guarantees byte-identical truncation:
  // a shard can only trip at-or-after the point the sequential fold would,
  // so the sequential-order accounting replay always trips first. When
  // true, countable budgets are SplitAcross() the shards instead — bounded
  // total speculation (worst case one budget's worth per shard becomes one
  // budget total), at the cost that a shard's split share may trip before
  // the sequential trip point; the result is then still a correct canonical
  // prefix with accurate metadata, just possibly a shorter one.
  bool split_budgets = false;
};

// The parallel §III fold. Seeds on the calling thread, shards the seed
// paths into contiguous canonical-order slices, expands every shard
// speculatively on the pool (quiet per-shard ExecContexts: shared cancel
// token and absolute deadline, fault probes disabled), then replays the
// shards' recorded accounting against `ctx` in exact sequential order.
// Output — paths, canonical order, truncation flag, limit status, and
// counters (elapsed time aside) — is byte-identical to TraverseGoverned for
// step/path/byte budgets and injected faults; deadline and cancellation
// trips depend on wall clock and may truncate at a different (still
// canonical-prefix) point. See "Parallel traversal" in DESIGN.md.
Result<GovernedPathSet> TraverseParallelGoverned(
    const EdgeUniverse& universe, const TraversalSpec& spec, ExecContext& ctx,
    const ParallelTraversalOptions& options);

// Ungoverned parallel form: same contract as Traverse().
Result<PathSet> TraverseParallel(const EdgeUniverse& universe,
                                 const TraversalSpec& spec,
                                 const ParallelTraversalOptions& options);

}  // namespace mrpa

#endif  // MRPA_CORE_TRAVERSAL_H_
