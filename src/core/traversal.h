// The basic traversal idioms of §III, expressed directly over the algebra.
//
//   Complete traversal     E ⋈◦ ... ⋈◦ E (n times)          — §III-A
//   Source traversal       A ⋈◦ E ... ⋈◦ E, A = {e | γ−(e) ∈ Vs}  — §III-B
//   Destination traversal  E ⋈◦ ... E ⋈◦ B, B = {e | γ+(e) ∈ Vd}  — §III-C
//   Labeled traversal      A ⋈◦ B, A/B restricted by Ωe/Ωf        — §III-D
//
// Each function materializes the denoted path set. The TraversalSpec form
// composes all the restrictions (a per-step label set plus source and
// destination vertex sets) into one n-step traversal, which is how the
// combined idioms at the end of §III-C are expressed.

#ifndef MRPA_CORE_TRAVERSAL_H_
#define MRPA_CORE_TRAVERSAL_H_

#include <optional>
#include <vector>

#include "core/edge_pattern.h"
#include "core/edge_universe.h"
#include "core/path_set.h"
#include "util/status.h"

namespace mrpa {

// All joint paths of length exactly `n` (§III-A). n = 0 yields {ε}.
Result<PathSet> CompleteTraversal(const EdgeUniverse& universe, size_t n,
                                  const PathSetLimits& limits = {});

// All joint paths of length `n` whose tail vertex lies in `sources`
// (§III-B). Pass `complement = true` for the Vs-bar form ("start anywhere
// except Vs").
Result<PathSet> SourceTraversal(const EdgeUniverse& universe,
                                const std::vector<VertexId>& sources, size_t n,
                                bool complement = false,
                                const PathSetLimits& limits = {});

// All joint paths of length `n` whose head vertex lies in `destinations`
// (§III-C).
Result<PathSet> DestinationTraversal(const EdgeUniverse& universe,
                                     const std::vector<VertexId>& destinations,
                                     size_t n, bool complement = false,
                                     const PathSetLimits& limits = {});

// Source and destination combined: emanate from Vs, arrive in Vd, length n.
Result<PathSet> SourceDestinationTraversal(
    const EdgeUniverse& universe, const std::vector<VertexId>& sources,
    const std::vector<VertexId>& destinations, size_t n,
    const PathSetLimits& limits = {});

// Labeled traversal (§III-D): one label set per step; step k of the result
// paths carries a label in `step_labels[k]`. An empty inner vector means Ω
// (unrestricted) for that step.
Result<PathSet> LabeledTraversal(
    const EdgeUniverse& universe,
    const std::vector<std::vector<LabelId>>& step_labels,
    const PathSetLimits& limits = {});

// The fully general n-step traversal: an arbitrary EdgePattern per step,
// joined left-to-right. This subsumes all of the above (each idiom is a
// particular pattern sequence) and is what the fluent engine lowers to.
struct TraversalSpec {
  std::vector<EdgePattern> steps;
  PathSetLimits limits;
};

Result<PathSet> Traverse(const EdgeUniverse& universe,
                         const TraversalSpec& spec);

// Governed evaluation: the same fold, threaded through `ctx`. When a budget,
// deadline, or cancellation trips, the result is returned OK with
// `truncated = true`, the tripping Status in `limit`, and whatever
// full-length paths were already yielded in `paths` (paths yielded under a
// budget of k are exactly the k first paths in the set's canonical order).
// A trip at an intermediate join level yields an empty (but still truncated)
// set — only full-length paths are ever reported. spec.limits.max_paths
// keeps its hard-error semantics (non-OK Result), as in Traverse().
Result<GovernedPathSet> TraverseGoverned(const EdgeUniverse& universe,
                                         const TraversalSpec& spec,
                                         ExecContext& ctx);

}  // namespace mrpa

#endif  // MRPA_CORE_TRAVERSAL_H_
