#include "core/path_arena.h"

#include <cassert>

#include "obs/obs.h"

namespace mrpa {

size_t PathArena::DepthOf(PathNodeId id) const {
  size_t depth = 0;
  for (PathNodeId cursor = id; cursor != kNullPathNode;
       cursor = nodes_[cursor].parent) {
    ++depth;
  }
  return depth;
}

void PathArena::MaterializePrefixInto(PathNodeId id, size_t length,
                                      Path& out) const {
  assert(length == DepthOf(id));
  ++telemetry_.materializations;
  out.edges_.resize(length);
  // The leaf→root walk visits edges last-first, so filling backward lands
  // them in forward order in a single pass — no reversal.
  PathNodeId cursor = id;
  for (size_t i = length; i-- > 0;) {
    const PathArenaNode& n = nodes_[cursor];
    out.edges_[i] = n.edge;
    cursor = n.parent;
  }
}

Path PathArena::MaterializePrefix(PathNodeId id) const {
  Path out;
  MaterializePrefixInto(id, DepthOf(id), out);
  return out;
}

void PathArena::MaterializeSuffixInto(PathNodeId id, size_t length,
                                      Path& out) const {
  assert(length == DepthOf(id));
  ++telemetry_.materializations;
  out.edges_.resize(length);
  // Suffix chains store the first edge at the leaf, so the walk IS forward
  // order.
  PathNodeId cursor = id;
  for (size_t i = 0; i < length; ++i) {
    const PathArenaNode& n = nodes_[cursor];
    out.edges_[i] = n.edge;
    cursor = n.parent;
  }
}

Path PathArena::MaterializeSuffix(PathNodeId id) const {
  Path out;
  MaterializeSuffixInto(id, DepthOf(id), out);
  return out;
}

std::strong_ordering PathArena::ComparePrefix(PathNodeId a,
                                              PathNodeId b) const {
  if (a == b) return std::strong_ordering::equal;
  const PathArenaNode& na = nodes_[a];
  const PathArenaNode& nb = nodes_[b];
  assert((na.parent == kNullPathNode) == (nb.parent == kNullPathNode) &&
         "ComparePrefix requires equal-length chains");
  if (na.parent != kNullPathNode && nb.parent != kNullPathNode) {
    // Earlier edges dominate: recurse to the roots first.
    if (auto c = ComparePrefix(na.parent, nb.parent);
        c != std::strong_ordering::equal) {
      return c;
    }
  }
  return na.edge <=> nb.edge;
}

std::strong_ordering PathArena::CompareSuffix(PathNodeId a,
                                              PathNodeId b) const {
  PathNodeId ca = a;
  PathNodeId cb = b;
  while (ca != kNullPathNode && cb != kNullPathNode) {
    if (ca == cb) return std::strong_ordering::equal;  // Shared suffix.
    const PathArenaNode& na = nodes_[ca];
    const PathArenaNode& nb = nodes_[cb];
    if (auto c = na.edge <=> nb.edge; c != std::strong_ordering::equal) {
      return c;
    }
    ca = na.parent;
    cb = nb.parent;
  }
  assert(ca == cb && "CompareSuffix requires equal-length chains");
  return std::strong_ordering::equal;
}

void FlushArenaStats(const PathArena& arena, obs::ObsRegistry* registry,
                     size_t shard) {
  if (registry == nullptr) return;
  const PathArena::Telemetry& t = arena.telemetry();
  registry->Add(obs::Metric::kArenaNodesAllocated, t.nodes_allocated, shard);
  registry->Add(obs::Metric::kArenaMaterializations, t.materializations,
                shard);
  registry->Add(obs::Metric::kArenaTruncatedNodes, t.truncated_nodes, shard);
  registry->Record(obs::Hist::kArenaPeakNodes, t.peak_nodes, shard);
}

#ifndef NDEBUG
void PathArena::CheckCanonicalLevel(const std::vector<PathNodeId>& ids,
                                    size_t length) const {
  for (size_t i = 0; i < ids.size(); ++i) {
    assert(DepthOf(ids[i]) == length);
    if (i > 0) {
      assert(ComparePrefix(ids[i - 1], ids[i]) == std::strong_ordering::less &&
             "frontier violates the canonical-id invariant");
    }
  }
}
#endif

}  // namespace mrpa
