#include "core/expr.h"

#include <sstream>

namespace mrpa {

PathExprPtr PathExpr::Empty() { return New(ExprKind::kEmpty); }

PathExprPtr PathExpr::Epsilon() { return New(ExprKind::kEpsilon); }

PathExprPtr PathExpr::Atom(EdgePattern pattern) {
  auto node = New(ExprKind::kAtom);
  node->pattern_ = std::move(pattern);
  return node;
}

PathExprPtr PathExpr::Literal(PathSet paths) {
  auto node = New(ExprKind::kLiteral);
  node->literal_ = std::move(paths);
  return node;
}

PathExprPtr PathExpr::MakeUnion(PathExprPtr lhs, PathExprPtr rhs) {
  auto node = New(ExprKind::kUnion);
  node->children_ = {std::move(lhs),
                                                  std::move(rhs)};
  return node;
}

PathExprPtr PathExpr::MakeJoin(PathExprPtr lhs, PathExprPtr rhs) {
  auto node = New(ExprKind::kJoin);
  node->children_ = {std::move(lhs),
                                                  std::move(rhs)};
  return node;
}

PathExprPtr PathExpr::MakeProduct(PathExprPtr lhs, PathExprPtr rhs) {
  auto node = New(ExprKind::kProduct);
  node->children_ = {std::move(lhs),
                                                  std::move(rhs)};
  return node;
}

PathExprPtr PathExpr::MakeStar(PathExprPtr inner) {
  auto node = New(ExprKind::kStar);
  node->children_ = {std::move(inner)};
  return node;
}

PathExprPtr PathExpr::MakePlus(PathExprPtr inner) {
  auto node = New(ExprKind::kPlus);
  node->children_ = {std::move(inner)};
  return node;
}

PathExprPtr PathExpr::MakeOptional(PathExprPtr inner) {
  auto node = New(ExprKind::kOptional);
  node->children_ = {std::move(inner)};
  return node;
}

PathExprPtr PathExpr::MakePower(PathExprPtr inner, size_t n) {
  auto node = New(ExprKind::kPower);
  node->children_ = {std::move(inner)};
  node->power_ = n;
  return node;
}

namespace {

// Charges an intermediate materialization against the guard's memory
// budget (no-op when ungoverned).
Status ChargeMaterialization(ExecContext* exec, const PathSet& set) {
  if (exec == nullptr) return Status::OK();
  return exec->ChargeBytes(ApproxBytes(set));
}

// Star/Plus closure: ⋃_{k} base ⋈◦ ... ⋈◦ base, expanding until the frontier
// is empty (fixed point — happens on DAG-shaped inputs) or `rounds`
// repetitions were unrolled. `include_epsilon` distinguishes R* from R+.
Result<PathSet> JointClosure(const PathSet& base, bool include_epsilon,
                             size_t rounds, const EvalOptions& options) {
  const PathSetLimits& limits = options.limits;
  PathSet acc = include_epsilon ? PathSet::EpsilonSet() : PathSet();
  PathSet frontier = base;
  for (size_t k = 0; k < rounds && !frontier.empty(); ++k) {
    if (options.exec != nullptr) {
      // One step per frontier path about to be extended; this is where
      // star languages on cyclic graphs blow up, so the deadline and step
      // budget must be polled inside the closure, not just per node.
      MRPA_RETURN_IF_ERROR(options.exec->CheckStep(frontier.size() + 1));
      MRPA_RETURN_IF_ERROR(ChargeMaterialization(options.exec, frontier));
    }
    acc = Union(acc, frontier);
    if (limits.max_paths && acc.size() > *limits.max_paths) {
      return Status::ResourceExhausted(
          "closure exceeded max_paths = " + std::to_string(*limits.max_paths));
    }
    Result<PathSet> next = ConcatenativeJoin(frontier, base, limits);
    if (!next.ok()) return next.status();
    frontier = std::move(next).value();
  }
  // acc now holds ⋃_{k≤rounds} base^k (k ≥ 1 for Plus, k ≥ 0 for Star);
  // any non-empty frontier beyond the bound is deliberately dropped.
  return acc;
}

}  // namespace

Result<PathSet> PathExpr::Evaluate(const EdgeUniverse& universe,
                                   const EvalOptions& options) const {
  if (options.exec != nullptr) {
    // One step per node visit: bounds the recursion and polls the
    // deadline/cancellation on a stride.
    MRPA_RETURN_IF_ERROR(options.exec->CheckStep());
  }
  switch (kind_) {
    case ExprKind::kEmpty:
      return PathSet();
    case ExprKind::kEpsilon:
      return PathSet::EpsilonSet();
    case ExprKind::kAtom:
      return PathSet::FromEdges(CollectMatchingEdges(universe, pattern_));
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kUnion: {
      Result<PathSet> lhs = children_[0]->Evaluate(universe, options);
      if (!lhs.ok()) return lhs.status();
      Result<PathSet> rhs = children_[1]->Evaluate(universe, options);
      if (!rhs.ok()) return rhs.status();
      return Union(lhs.value(), rhs.value());
    }
    case ExprKind::kJoin: {
      Result<PathSet> lhs = children_[0]->Evaluate(universe, options);
      if (!lhs.ok()) return lhs.status();
      Result<PathSet> rhs = children_[1]->Evaluate(universe, options);
      if (!rhs.ok()) return rhs.status();
      Result<PathSet> joined =
          ConcatenativeJoin(lhs.value(), rhs.value(), options.limits);
      if (!joined.ok()) return joined.status();
      MRPA_RETURN_IF_ERROR(ChargeMaterialization(options.exec, *joined));
      return joined;
    }
    case ExprKind::kProduct: {
      Result<PathSet> lhs = children_[0]->Evaluate(universe, options);
      if (!lhs.ok()) return lhs.status();
      Result<PathSet> rhs = children_[1]->Evaluate(universe, options);
      if (!rhs.ok()) return rhs.status();
      Result<PathSet> product =
          ConcatenativeProduct(lhs.value(), rhs.value(), options.limits);
      if (!product.ok()) return product.status();
      MRPA_RETURN_IF_ERROR(ChargeMaterialization(options.exec, *product));
      return product;
    }
    case ExprKind::kStar: {
      Result<PathSet> base = children_[0]->Evaluate(universe, options);
      if (!base.ok()) return base.status();
      return JointClosure(base.value(), /*include_epsilon=*/true,
                          options.max_star_expansion, options);
    }
    case ExprKind::kPlus: {
      Result<PathSet> base = children_[0]->Evaluate(universe, options);
      if (!base.ok()) return base.status();
      return JointClosure(base.value(), /*include_epsilon=*/false,
                          options.max_star_expansion, options);
    }
    case ExprKind::kOptional: {
      Result<PathSet> base = children_[0]->Evaluate(universe, options);
      if (!base.ok()) return base.status();
      return Union(base.value(), PathSet::EpsilonSet());
    }
    case ExprKind::kPower: {
      Result<PathSet> base = children_[0]->Evaluate(universe, options);
      if (!base.ok()) return base.status();
      return JoinPower(base.value(), power_, options.limits);
    }
  }
  return Status::Internal("unknown expression kind");
}

bool PathExpr::IsProductFree() const {
  if (kind_ == ExprKind::kProduct) return false;
  for (const PathExprPtr& child : children_) {
    if (!child->IsProductFree()) return false;
  }
  return true;
}

size_t PathExpr::NodeCount() const {
  size_t count = 1;
  for (const PathExprPtr& child : children_) count += child->NodeCount();
  return count;
}

std::string PathExpr::ToString() const {
  switch (kind_) {
    case ExprKind::kEmpty:
      return "∅";
    case ExprKind::kEpsilon:
      return "ε";
    case ExprKind::kAtom:
      return pattern_.ToString();
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kUnion:
      return "(" + children_[0]->ToString() + " ∪ " +
             children_[1]->ToString() + ")";
    case ExprKind::kJoin:
      return "(" + children_[0]->ToString() + " ⋈ " +
             children_[1]->ToString() + ")";
    case ExprKind::kProduct:
      return "(" + children_[0]->ToString() + " × " +
             children_[1]->ToString() + ")";
    case ExprKind::kStar:
      return children_[0]->ToString() + "*";
    case ExprKind::kPlus:
      return children_[0]->ToString() + "+";
    case ExprKind::kOptional:
      return children_[0]->ToString() + "?";
    case ExprKind::kPower: {
      std::ostringstream os;
      os << children_[0]->ToString() << '^' << power_;
      return os.str();
    }
  }
  return "?";
}

bool StructurallyEqual(const PathExpr& a, const PathExpr& b) {
  if (&a == &b) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ExprKind::kEmpty:
    case ExprKind::kEpsilon:
      return true;
    case ExprKind::kAtom:
      return a.pattern() == b.pattern();
    case ExprKind::kLiteral:
      return a.literal() == b.literal();
    case ExprKind::kPower:
      if (a.power() != b.power()) return false;
      break;
    default:
      break;
  }
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!StructurallyEqual(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

}  // namespace mrpa
