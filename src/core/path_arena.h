// PathArena: a prefix-sharing, append-only store for the paths a traversal
// builds level by level.
//
// The §III fold and the §IV recognizer/generator loops extend every frontier
// path by one edge per level. Materialized as std::vector<Edge> strings
// (core/path.h), each extension copies the whole prefix, so a k-step
// traversal yielding P paths performs O(P·k²) edge copies and P·k
// allocations. The arena replaces the copy with a single node push: a path
// is a chain of (parent, edge) nodes, extensions share their prefix
// physically, and the full string is materialized only at the API boundary
// (or streamed through PathView without materializing at all).
//
// Node ids are assigned in append order, which the traversal engines align
// with canonical path order (see the invariant below), so a frontier of
// PathNodeIds IS a sorted PathSet prefix and the boundary materialization
// can adopt its output via PathSet::FromSortedUnique with no sort.
//
// Canonical-id invariant (maintained by the engines, exploited by the
// merge): within one arena, if two nodes chain paths of equal length, the
// node appended later holds the lexicographically later path. The engines
// get this for free — frontiers are iterated in canonical order and
// ForEachMatchingOutEdge visits out-runs in (label, head) order — and the
// debug-only CheckCanonicalLevel hook asserts it.
//
// Two chaining conventions share the same node layout; the *materializer*
// picks the interpretation:
//   * prefix chains — node.edge is the LAST edge of its path; extending at
//     the head (the forward fold) appends a node whose parent is the
//     prefix. MaterializePrefixInto walks leaf→root filling backward.
//   * suffix chains — node.edge is the FIRST edge; extending at the tail
//     (the backward chain evaluator) appends a node whose parent is the
//     suffix. MaterializeSuffixInto walks leaf→root filling forward.
//
// Byte accounting: governed loops charge ExecContext exactly
// PathArena::kNodeBytes per node pushed — an exact figure, unlike the
// legacy ApproxBytes estimate (see path_set.h), because nodes are the only
// per-path storage the arena-native loops allocate.
//
// Threading contract: an arena is single-writer, shard-local state — the
// parallel fold gives every shard its own arena and merges by materializing
// shard outputs in canonical slice order. Concurrent reads of a quiescent
// arena are safe; concurrent writes are not.

#ifndef MRPA_CORE_PATH_ARENA_H_
#define MRPA_CORE_PATH_ARENA_H_

#include <cassert>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/edge.h"
#include "core/ids.h"
#include "core/path.h"

namespace mrpa::obs {
class ObsRegistry;
}  // namespace mrpa::obs

namespace mrpa {

// Index of a node within one PathArena. 32 bits bounds one arena at ~4.29G
// nodes (~64 GiB); arenas are per-evaluation (and per-shard), so a frontier
// that large has long since tripped any sane byte budget.
using PathNodeId = uint32_t;

// Sentinel parent for a chain root (a path of length 1).
inline constexpr PathNodeId kNullPathNode =
    std::numeric_limits<PathNodeId>::max();

struct PathArenaNode {
  PathNodeId parent = kNullPathNode;
  Edge edge;
};
static_assert(sizeof(PathArenaNode) == 16,
              "governed byte accounting assumes the packed 16-byte node");

class PathArena {
 public:
  // The exact governed cost of one path extension; what arena-native loops
  // ChargeBytes with.
  static constexpr size_t kNodeBytes = sizeof(PathArenaNode);

  // Lifetime churn counters, maintained unconditionally (four integer
  // bumps on paths that already push into a vector — not measurable, see
  // EXPERIMENTS.md E18) and exported to an ObsRegistry by FlushArenaStats.
  // nodes_allocated only grows, so for a governed arena-native loop
  //     bytes_charged == nodes_allocated * kNodeBytes
  // is the conservation law tests/obs_invariants_test.cc asserts.
  struct Telemetry {
    // Total nodes ever pushed (survives TruncateTo/Clear).
    uint64_t nodes_allocated = 0;
    // High-water mark of size().
    uint64_t peak_nodes = 0;
    // Nodes discarded by TruncateTo/Clear — DFS backtracking churn.
    uint64_t truncated_nodes = 0;
    // Boundary path copies (Materialize*Into). Mutable state: counting a
    // const read-out is telemetry, not mutation of the store.
    mutable uint64_t materializations = 0;
  };
  const Telemetry& telemetry() const { return telemetry_; }

  PathArena() = default;

  // Arenas are bulky evaluation-local state; move, don't copy.
  PathArena(const PathArena&) = delete;
  PathArena& operator=(const PathArena&) = delete;
  PathArena(PathArena&&) noexcept = default;
  PathArena& operator=(PathArena&&) noexcept = default;

  // Starts a new chain with a single edge. O(1) amortized.
  PathNodeId AddRoot(const Edge& e) { return Push(kNullPathNode, e); }

  // Extends the chain ending at `parent` by one edge — the O(1) replacement
  // for the materialized fold's prefix copy.
  PathNodeId Extend(PathNodeId parent, const Edge& e) {
    assert(parent < nodes_.size());
    return Push(parent, e);
  }

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  void Reserve(size_t n) { nodes_.reserve(n); }
  void Clear() {
    telemetry_.truncated_nodes += nodes_.size();
    nodes_.clear();
  }

  // Drops every node with id >= n. DFS engines (StepPathIterator) use this
  // to keep the arena exactly as deep as the live spine: ids are appended
  // in descent order, so backtracking is a truncation.
  void TruncateTo(size_t n) {
    assert(n <= nodes_.size());
    telemetry_.truncated_nodes += nodes_.size() - n;
    nodes_.resize(n);
  }

  const PathArenaNode& node(PathNodeId id) const {
    assert(id < nodes_.size());
    return nodes_[id];
  }

  // O(1) endpoint projections. For a prefix chain, node.edge is the last
  // edge, so γ+ is one load; for a suffix chain, node.edge is the first
  // edge, so γ− is one load. The opposite endpoint requires the O(k) walk.
  VertexId HeadOf(PathNodeId id) const { return node(id).edge.head; }
  VertexId TailOf(PathNodeId id) const { return node(id).edge.tail; }

  // Chain length, by walking to the root. O(k); hot loops should carry the
  // level depth instead of calling this.
  size_t DepthOf(PathNodeId id) const;

  // Materializes a prefix chain (node.edge = last edge) into `out`,
  // root-first. `length` must equal DepthOf(id); passing it avoids the
  // counting walk. Reuses out's capacity — the boundary loop that drains a
  // frontier into a PathSet allocates once per path at most, and a reused
  // scratch Path not at all.
  void MaterializePrefixInto(PathNodeId id, size_t length, Path& out) const;
  Path MaterializePrefix(PathNodeId id) const;

  // Materializes a suffix chain (node.edge = first edge) into `out` in
  // forward order.
  void MaterializeSuffixInto(PathNodeId id, size_t length, Path& out) const;
  Path MaterializeSuffix(PathNodeId id) const;

  // Lexicographic comparison of two equal-length chains, without
  // materializing either.
  //   * ComparePrefix: prefix chains; recurses to the roots so edges are
  //     compared front-first. O(k) stack and time.
  //   * CompareSuffix: suffix chains; the leaf-to-root walk IS front-first,
  //     so this one early-exits at the first differing edge.
  // Requires DepthOf(a) == DepthOf(b) — the engines only ever sort
  // same-level frontiers, where the invariant holds by construction.
  std::strong_ordering ComparePrefix(PathNodeId a, PathNodeId b) const;
  std::strong_ordering CompareSuffix(PathNodeId a, PathNodeId b) const;

#ifndef NDEBUG
  // Debug hook: asserts that `ids` chain strictly increasing prefix paths
  // of length `length` — the canonical-id invariant the zero-sort
  // materialization relies on.
  void CheckCanonicalLevel(const std::vector<PathNodeId>& ids,
                           size_t length) const;
#endif

 private:
  PathNodeId Push(PathNodeId parent, const Edge& e) {
    const PathNodeId id = static_cast<PathNodeId>(nodes_.size());
    nodes_.push_back(PathArenaNode{parent, e});
    ++telemetry_.nodes_allocated;
    if (nodes_.size() > telemetry_.peak_nodes) {
      telemetry_.peak_nodes = nodes_.size();
    }
    return id;
  }

  std::vector<PathArenaNode> nodes_;
  Telemetry telemetry_;
};

// Adds the arena's telemetry into `registry` (arena.* counters plus the
// arena.peak_nodes histogram), attributed to `shard`'s slot. Engines call
// this once per evaluation (the parallel fold: once per shard arena) at
// operator exit; null registry no-ops. NOTE: arena.nodes_allocated from the
// sequential engines comes through here, but the parallel fold counts its
// replayed node total instead — shard arenas over-allocate speculatively,
// and the replay total is what matches the sequential engine and the byte
// accounting.
void FlushArenaStats(const PathArena& arena, obs::ObsRegistry* registry,
                     size_t shard = 0);

// A zero-copy view of one arena path: the streaming alternative to
// materialization at the API boundary. The arena must outlive the view and
// must not be truncated below the viewed chain while the view is live.
class PathView {
 public:
  PathView(const PathArena& arena, PathNodeId id, size_t length)
      : arena_(&arena), id_(id), length_(length) {}

  size_t length() const { return length_; }
  PathNodeId id() const { return id_; }

  // γ+ for a prefix chain (one load). γ− requires the walk; use
  // MaterializeInto when both endpoints and forward iteration are needed.
  VertexId Head() const { return arena_->HeadOf(id_); }

  // Visits the edges leaf→root — REVERSE path order for a prefix chain.
  // Recognizers that can consume a path back-to-front stream here with no
  // buffer at all.
  template <typename Fn>
  void ForEachEdgeReverse(Fn&& fn) const {
    PathNodeId cursor = id_;
    for (size_t i = 0; i < length_; ++i) {
      const PathArenaNode& n = arena_->node(cursor);
      fn(n.edge);
      cursor = n.parent;
    }
  }

  // Forward-order materialization into a reusable buffer (prefix chains).
  void MaterializeInto(Path& out) const {
    arena_->MaterializePrefixInto(id_, length_, out);
  }
  Path Materialize() const { return arena_->MaterializePrefix(id_); }

 private:
  const PathArena* arena_;
  PathNodeId id_;
  size_t length_;
};

}  // namespace mrpa

#endif  // MRPA_CORE_PATH_ARENA_H_
