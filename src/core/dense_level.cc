#include "core/dense_level.h"

#include <cassert>

#include "frontier/kernels.h"

namespace mrpa {

bool StepBenefitsFromDense(const EdgePattern& pattern) {
  return !pattern.label().IsUnconstrained() ||
         !pattern.tail().IsUnconstrained() || !pattern.head().IsUnconstrained();
}

bool LowerConstraintToBitmap(const IdConstraint& constraint, uint32_t size,
                             frontier::BitmapFrontier& bits) {
  if (constraint.IsUnconstrained()) return false;
  bits.Reset(size);
  if (constraint.negated()) {
    bits.SetAll();
    for (uint32_t id : *constraint.ids()) {
      if (id < size) bits.Clear(id);
    }
  } else {
    for (uint32_t id : *constraint.ids()) {
      if (id < size) bits.Set(id);
    }
  }
  return true;
}

ForwardLevelCache::ForwardLevelCache(const EdgeUniverse& universe,
                                     const EdgePattern& step)
    : universe_(universe), step_(step) {
  pinned_label_ = step.label().SingleId();
  if (!pinned_label_.has_value()) {
    label_constrained_ = LowerConstraintToBitmap(
        step.label(), universe.num_labels(), label_bits_);
    if (label_constrained_) build_words_ += label_bits_.num_words();
  }
  head_constrained_ =
      LowerConstraintToBitmap(step.head(), universe.num_vertices(), head_bits_);
  if (head_constrained_) build_words_ += head_bits_.num_words();
  offset_.assign(universe.num_vertices(), kUnset);
  length_.assign(universe.num_vertices(), 0);
}

std::span<const Edge> ForwardLevelCache::MatchedRun(VertexId v) {
  assert(v < offset_.size());
  if (offset_[v] == kUnset) {
    const uint32_t start = static_cast<uint32_t>(pool_.size());
    // The tail of every out-edge of v is v: one test covers the run.
    if (step_.tail().Matches(v)) {
      const std::span<const Edge> run =
          pinned_label_.has_value()
              ? universe_.OutEdgesWithLabel(v, *pinned_label_)
              : universe_.OutEdges(v);
      if (!run.empty()) {
        idx_buf_.resize(run.size());
        const size_t matched = frontier::Active().filter_edges(
            run.data(), run.size(), /*tail_bits=*/nullptr,
            label_constrained_ ? label_bits_.words() : nullptr,
            head_constrained_ ? head_bits_.words() : nullptr, idx_buf_.data());
        // No reserve here: an exact-capacity reserve per miss would defeat
        // geometric growth and turn the pool quadratic in distinct heads.
        for (size_t i = 0; i < matched; ++i) {
          pool_.push_back(run[idx_buf_[i]]);
        }
      }
    }
    offset_[v] = start;
    length_[v] = static_cast<uint32_t>(pool_.size()) - start;
  }
  return {pool_.data() + offset_[v], length_[v]};
}

BackwardLevelCache::BackwardLevelCache(const EdgeUniverse& universe,
                                       const EdgePattern& step)
    : universe_(universe), step_(step) {
  const size_t num_edges = universe.num_edges();
  match_bits_.Reset(static_cast<uint32_t>(num_edges));
  if (step.tail().IsUnconstrained() && step.label().IsUnconstrained()) {
    match_bits_.SetAll();
  } else {
    frontier::BitmapFrontier tail_bits;
    frontier::BitmapFrontier label_bits;
    const bool tail_constrained = LowerConstraintToBitmap(
        step.tail(), universe.num_vertices(), tail_bits);
    const bool label_constrained = LowerConstraintToBitmap(
        step.label(), universe.num_labels(), label_bits);
    build_words_ += (tail_constrained ? tail_bits.num_words() : 0) +
                    (label_constrained ? label_bits.num_words() : 0);
    const std::span<const Edge> all = universe.AllEdges();
    idx_buf_.resize(all.size());
    // filter_edges positions over AllEdges() ARE canonical edge indices.
    const size_t matched = frontier::Active().filter_edges(
        all.data(), all.size(), tail_constrained ? tail_bits.words() : nullptr,
        label_constrained ? label_bits.words() : nullptr,
        /*head_bits=*/nullptr, idx_buf_.data());
    for (size_t i = 0; i < matched; ++i) match_bits_.Set(idx_buf_[i]);
  }
  build_words_ += match_bits_.num_words();
  offset_.assign(universe.num_vertices(), kUnset);
  length_.assign(universe.num_vertices(), 0);
}

std::span<const EdgeIndex> BackwardLevelCache::MatchedInEdges(VertexId v) {
  assert(v < offset_.size());
  if (offset_[v] == kUnset) {
    const uint32_t start = static_cast<uint32_t>(pool_.size());
    // The head of every in-edge of v is v: one test covers the run.
    if (step_.head().Matches(v)) {
      const std::span<const EdgeIndex> run = universe_.InEdgeIndices(v);
      if (!run.empty()) {
        idx_buf_.resize(run.size());
        const size_t matched = frontier::Active().intersect_bitmap(
            run.data(), run.size(), match_bits_.words(), idx_buf_.data());
        pool_.insert(pool_.end(), idx_buf_.begin(),
                     idx_buf_.begin() + static_cast<ptrdiff_t>(matched));
      }
    }
    offset_[v] = start;
    length_[v] = static_cast<uint32_t>(pool_.size()) - start;
  }
  return {pool_.data() + offset_[v], length_[v]};
}

}  // namespace mrpa
