// Path: an element of the free monoid E*, i.e. a finite string of edges.
//
// Definition 1 of the paper: a path is a sequence over E ⊆ (V × Ω × V); the
// empty string ε is the identity of concatenation, and any single edge is a
// path of length 1. Paths are allowed to repeat edges and are allowed to be
// *disjoint* (Definition 3) — jointness is a predicate, not an invariant,
// because the concatenative product ×◦ deliberately constructs disjoint
// paths (the paper's "teleportation" motivation, §II footnote 5).
//
// Operations implemented here, in the paper's notation:
//   ‖a‖        Path::length()
//   a ◦ b      Concat(a, b) / operator path * path
//   σ(a, n)    Path::EdgeAt(n)       (n is 1-based, as in the paper)
//   γ−(a)      Path::Tail()
//   γ+(a)      Path::Head()
//   ω′(a)      Path::PathLabel()
//   f(a)       Path::IsJoint()

#ifndef MRPA_CORE_PATH_H_
#define MRPA_CORE_PATH_H_

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "core/edge.h"
#include "core/ids.h"
#include "util/hash.h"
#include "util/status.h"

namespace mrpa {

class Path {
 public:
  using const_iterator = std::vector<Edge>::const_iterator;

  // The empty path ε (the monoid identity).
  Path() = default;

  // A path of length 1 from a single edge (E ⊂ E*).
  explicit Path(const Edge& e) : edges_(1, e) {}

  // A path from an explicit edge sequence, joint or not.
  explicit Path(std::vector<Edge> edges) : edges_(std::move(edges)) {}
  Path(std::initializer_list<Edge> edges) : edges_(edges) {}

  Path(const Path&) = default;
  Path& operator=(const Path&) = default;
  Path(Path&&) noexcept = default;
  Path& operator=(Path&&) noexcept = default;

  // ‖a‖: the number of edges in the path. ‖ε‖ = 0.
  size_t length() const { return edges_.size(); }

  // True iff this is ε.
  bool empty() const { return edges_.empty(); }

  // σ(a, n): the n-th edge, 1-based per the paper. Returns OutOfRange when
  // n = 0 or n > ‖a‖ (in particular, for any n when a = ε).
  Result<Edge> EdgeAt(size_t n) const;

  // Unchecked 0-based access for hot loops. Requires index < length().
  const Edge& edge(size_t index) const { return edges_[index]; }

  // γ−(a): the tail (first vertex) of the path. Undefined for ε; returns
  // kInvalidVertex in that case (ε has no endpoints).
  VertexId Tail() const { return empty() ? kInvalidVertex : edges_.front().tail; }

  // γ+(a): the head (last vertex) of the path. kInvalidVertex for ε.
  VertexId Head() const { return empty() ? kInvalidVertex : edges_.back().head; }

  // ω′(a): the path label — the concatenation of the edge labels of a, an
  // element of Ω*. ω′(ε) is the empty label string.
  std::vector<LabelId> PathLabel() const;

  // Definition 3 (path jointness): true iff ‖a‖ ≤ 1 or every consecutive
  // edge pair satisfies γ+(σ(a,n)) = γ−(σ(a,n+1)). ε is vacuously joint.
  bool IsJoint() const;

  // a ◦ b: concatenation. ε is a two-sided identity. No jointness check is
  // performed — use PathSet::ConcatenativeJoin for the adjacency-guarded
  // variant.
  Path Concat(const Path& other) const;

  // In-place append of a single edge (amortized O(1)); used by streaming
  // generators to avoid quadratic copying.
  void Append(const Edge& e) { edges_.push_back(e); }

  // Drops all edges, keeping the allocated capacity — the reuse hook for
  // streaming engines that refill one Path per yielded result.
  void Clear() { edges_.clear(); }

  // The edges as a flat sequence.
  const std::vector<Edge>& edges() const { return edges_; }
  const_iterator begin() const { return edges_.begin(); }
  const_iterator end() const { return edges_.end(); }

  // Allocated (not used) edge slots; what the path actually holds on the
  // heap. Feeds the ApproxBytes estimate in path_set.h.
  size_t capacity() const { return edges_.capacity(); }

  // Lexicographic ordering over the edge sequence; gives PathSet its
  // canonical order.
  friend auto operator<=>(const Path&, const Path&) = default;

  // "ε" for the empty path; otherwise "(i,α,j)(j,β,k)" style.
  std::string ToString() const;

 private:
  // PathArena materializes chains directly into edges_ (resize + backward
  // fill), reusing capacity — the one spot that bypasses the public
  // append-only mutation surface.
  friend class PathArena;

  std::vector<Edge> edges_;
};

// a ◦ b as a free function / operator. `a * b` mirrors the paper's use of a
// product sign for concatenation in the ω′ definition.
inline Path Concat(const Path& a, const Path& b) { return a.Concat(b); }
inline Path operator*(const Path& a, const Path& b) { return a.Concat(b); }

// True iff γ+(a) = γ−(b), the adjacency condition of the concatenative
// join; false when either path is ε (the join admits ε via its own explicit
// disjunct, not via this predicate).
inline bool AreAdjacent(const Path& a, const Path& b) {
  return !a.empty() && !b.empty() && a.Head() == b.Tail();
}

std::ostream& operator<<(std::ostream& os, const Path& path);

struct PathHash {
  size_t operator()(const Path& p) const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const Edge& e : p.edges()) {
      h = HashCombine(h, e.tail);
      h = HashCombine(h, e.label);
      h = HashCombine(h, e.head);
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace mrpa

#endif  // MRPA_CORE_PATH_H_
