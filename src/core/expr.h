// PathExpr: algebraic expressions over path sets — the regular expressions
// of §IV-A, extended with the explicit ×◦ and the practical shorthands the
// paper lists in footnote 8 (R+, R?, Rⁿ).
//
// Grammar (paper, §IV-A): if E is the alphabet, then ∅, ε, and any edge-set
// atom are regular expressions, and for regular expressions R and Q so are
//   R ∪ Q        Union
//   R ⋈◦ Q       Join           (concatenation guarded by adjacency)
//   R*           Star           (joint Kleene closure)
// plus the derived forms R ⋈◦ R* (Plus), R ∪ {ε} (Optional), and the n-fold
// join power (Power). ×◦ (Product) is included for recognizing potentially
// disjoint paths (footnote 7).
//
// An expression is a graph-independent value; Evaluate() binds it to an
// EdgeUniverse and materializes the denoted path set bottom-up. The same
// tree also drives the Thompson construction in regex/nfa.h, so recognizer,
// generator, and set evaluation all share one syntax.
//
// Star over a cyclic graph denotes an infinite set, so evaluation takes an
// explicit bound (EvalOptions::max_star_expansion); on acyclic inputs the
// evaluator reaches the fixed point earlier and stops by itself.

#ifndef MRPA_CORE_EXPR_H_
#define MRPA_CORE_EXPR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_pattern.h"
#include "core/edge_universe.h"
#include "core/path_set.h"
#include "util/status.h"

namespace mrpa {

enum class ExprKind {
  kEmpty,     // ∅
  kEpsilon,   // {ε}
  kAtom,      // an edge set given by a pattern, e.g. [i, α, _]
  kLiteral,   // an explicit path set, e.g. {(j, α, i)}
  kUnion,     // R ∪ Q
  kJoin,      // R ⋈◦ Q
  kProduct,   // R ×◦ Q
  kStar,      // R*   (joint closure)
  kPlus,      // R+ = R ⋈◦ R*
  kOptional,  // R? = R ∪ {ε}
  kPower,     // Rⁿ = R ⋈◦ ... ⋈◦ R (n times)
};

class PathExpr;
using PathExprPtr = std::shared_ptr<const PathExpr>;

// Bounds for Evaluate(). Star/Plus expand until the fixed point or until a
// repetition would create paths longer than max_star_expansion rounds.
struct EvalOptions {
  // Maximum number of R-repetitions unrolled for each Star/Plus node.
  size_t max_star_expansion = 16;
  // Overall path-set size guard, applied to every intermediate result.
  PathSetLimits limits;
  // Optional execution guard (deadline / budgets / cancellation), checked
  // at every node visit, closure round, and intermediate materialization.
  // Evaluation is bottom-up, so a trip surfaces as the guard's Status with
  // no partial result; not owned, may be null (ungoverned).
  ExecContext* exec = nullptr;
};

// An immutable expression node. Build with the factory functions below (or
// the operator sugar at the bottom of this header); share freely —
// subexpressions are reference-counted and never mutated.
class PathExpr : public std::enable_shared_from_this<PathExpr> {
 public:
  ExprKind kind() const { return kind_; }

  // Valid for kAtom only.
  const EdgePattern& pattern() const { return pattern_; }
  // Valid for kLiteral only.
  const PathSet& literal() const { return literal_; }
  // Valid for kPower only.
  size_t power() const { return power_; }
  // Children: 2 for the binary kinds, 1 for star/plus/optional/power,
  // 0 otherwise.
  const std::vector<PathExprPtr>& children() const { return children_; }

  // Materializes the denoted subset of P(E*) against `universe`.
  Result<PathSet> Evaluate(const EdgeUniverse& universe,
                           const EvalOptions& options = {}) const;

  // True when the expression contains no ×◦ node; such expressions denote
  // only joint paths and admit the DFA fast path in regex/recognizer.h.
  bool IsProductFree() const;

  // Structural size (node count) — used by tests and the planner.
  size_t NodeCount() const;

  // Parenthesized rendering using the paper's glyphs (∅, ε, ∪, ⋈, ×, *).
  std::string ToString() const;

  // --- Factories ---------------------------------------------------------
  static PathExprPtr Empty();
  static PathExprPtr Epsilon();
  static PathExprPtr Atom(EdgePattern pattern);
  static PathExprPtr Literal(PathSet paths);
  static PathExprPtr MakeUnion(PathExprPtr lhs, PathExprPtr rhs);
  static PathExprPtr MakeJoin(PathExprPtr lhs, PathExprPtr rhs);
  static PathExprPtr MakeProduct(PathExprPtr lhs, PathExprPtr rhs);
  static PathExprPtr MakeStar(PathExprPtr inner);
  static PathExprPtr MakePlus(PathExprPtr inner);
  static PathExprPtr MakeOptional(PathExprPtr inner);
  static PathExprPtr MakePower(PathExprPtr inner, size_t n);

  // Convenience atoms mirroring the set-builder notation.
  static PathExprPtr AnyEdge() { return Atom(EdgePattern::Any()); }
  static PathExprPtr From(VertexId i) { return Atom(EdgePattern::From(i)); }
  static PathExprPtr Labeled(LabelId alpha) {
    return Atom(EdgePattern::Labeled(alpha));
  }
  static PathExprPtr Into(VertexId j) { return Atom(EdgePattern::Into(j)); }
  static PathExprPtr SingleEdge(const Edge& e) {
    return Literal(PathSet({Path(e)}));
  }

 private:
  struct Private {};  // Locks constructors to the factories.

 public:
  PathExpr(Private, ExprKind kind) : kind_(kind) {}

 private:
  static std::shared_ptr<PathExpr> New(ExprKind kind) {
    return std::make_shared<PathExpr>(Private{}, kind);
  }

  ExprKind kind_;
  EdgePattern pattern_;
  PathSet literal_;
  size_t power_ = 0;
  std::vector<PathExprPtr> children_;
};

// Structural equality: same shape, same patterns, same literals, same
// exponents. Conservative with respect to the language — two structurally
// different trees may denote the same path set. Shared by Simplify's R ∪ R
// rule, the compiler's hash-consed IR, and the parser round-trip tests.
bool StructurallyEqual(const PathExpr& a, const PathExpr& b);

// Operator sugar: `a | b` is ∪, `a + b` is ⋈◦ (adjacency-guarded
// concatenation — the regex concatenation of §IV-A).
inline PathExprPtr operator|(PathExprPtr lhs, PathExprPtr rhs) {
  return PathExpr::MakeUnion(std::move(lhs), std::move(rhs));
}
inline PathExprPtr operator+(PathExprPtr lhs, PathExprPtr rhs) {
  return PathExpr::MakeJoin(std::move(lhs), std::move(rhs));
}

}  // namespace mrpa

#endif  // MRPA_CORE_EXPR_H_
