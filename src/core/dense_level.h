// Dense-level expansion caches: the per-level machinery behind the adaptive
// sparse/dense switch in the governed folds (DESIGN.md "Dense-frontier
// execution").
//
// When a level goes dense, the step pattern's id constraints are lowered
// ONCE into allow-bitmaps (frontier/bitmap.h), and each distinct frontier
// vertex's matched run is computed ONCE with the dispatched SIMD filter
// kernels and memoized. The fold then replays the frontier against the
// memo — the guard sequence (hard-limit, ChargePaths, CheckStep,
// ChargeBytes) is untouched, so governed output stays byte-identical to the
// sparse walk; only the per-edge Matches work is amortized.
//
// Two directions, two caches:
//
//   * ForwardLevelCache — matched OUT-edges per tail vertex, in out-run
//     (label, head) order: the exact sequence ForEachMatchingOutEdge
//     yields. Backs FoldJoin and the parallel shard fold.
//   * BackwardLevelCache — matched IN-edge indices per head vertex,
//     ascending: the subsequence of InEdgeIndices(v) whose edges match.
//     Backs the chain planner's backward evaluator, whose replay must also
//     visit the NON-matching candidates (CheckStep fires per candidate
//     there), so this cache exposes the matched subsequence for a
//     two-pointer walk rather than a pre-filtered run.
//
// Caches are per (universe, step, level) and single-threaded, like the
// PathArena they sit beside. Spans returned by MatchedRun/MatchedInEdges
// are invalidated by the next call on the same cache (a miss may grow the
// backing pool); consume before re-calling.

#ifndef MRPA_CORE_DENSE_LEVEL_H_
#define MRPA_CORE_DENSE_LEVEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/edge_pattern.h"
#include "core/edge_universe.h"
#include "core/ids.h"
#include "frontier/bitmap.h"

namespace mrpa {

// True when `pattern` does nontrivial per-edge match work a dense memo can
// amortize: a constrained label, or any tail/head constraint. A fully
// unconstrained step copies every out-edge either way — nothing to memoize —
// so the auto policy keeps it sparse (ShouldGoDense's benefits_from_filter
// input).
bool StepBenefitsFromDense(const EdgePattern& pattern);

// Lowers `constraint` into `bits` over ids [0, size): set ⇒ allowed.
// Returns false (bits untouched) when the constraint is unconstrained — the
// caller passes a null bitmap to the kernels instead, skipping the probe
// entirely. Out-of-range listed ids are ignored; they cannot name a real
// vertex/label, so dropping them preserves Matches semantics over the
// universe.
bool LowerConstraintToBitmap(const IdConstraint& constraint, uint32_t size,
                             frontier::BitmapFrontier& bits);

class ForwardLevelCache {
 public:
  // Lowers `step`'s constraints for one expansion level over `universe`.
  // Both must outlive the cache.
  ForwardLevelCache(const EdgeUniverse& universe, const EdgePattern& step);

  // The out-edges of `v` matching the step, in out-run (label, head) order —
  // elementwise identical to what ForEachMatchingOutEdge(universe, v, step)
  // would yield. First call per vertex filters (SIMD) and memoizes;
  // subsequent calls are a table lookup. The span is invalidated by the
  // next MatchedRun call.
  std::span<const Edge> MatchedRun(VertexId v);

  // Total uint64 bitmap words written while lowering the step's allow-sets
  // (the dense build cost; feeds obs frontier.words_scanned).
  uint64_t build_words() const { return build_words_; }

 private:
  static constexpr uint32_t kUnset = UINT32_MAX;

  const EdgeUniverse& universe_;
  const EdgePattern& step_;
  // When the step pins a single non-negated label, filter the
  // OutEdgesWithLabel sub-run instead of lowering a one-bit label bitmap.
  std::optional<LabelId> pinned_label_;
  frontier::BitmapFrontier label_bits_;
  frontier::BitmapFrontier head_bits_;
  bool label_constrained_ = false;
  bool head_constrained_ = false;
  uint64_t build_words_ = 0;

  std::vector<uint32_t> offset_;   // per vertex, into pool_; kUnset = miss
  std::vector<uint32_t> length_;   // per vertex
  std::vector<Edge> pool_;         // memoized matched runs, concatenated
  std::vector<uint32_t> idx_buf_;  // scratch for the filter kernel
};

class BackwardLevelCache {
 public:
  BackwardLevelCache(const EdgeUniverse& universe, const EdgePattern& step);

  // The subsequence of universe.InEdgeIndices(v) whose edges match the
  // step, ascending. Memoized per head vertex; the span is invalidated by
  // the next MatchedInEdges call.
  std::span<const EdgeIndex> MatchedInEdges(VertexId v);

  uint64_t build_words() const { return build_words_; }

 private:
  static constexpr uint32_t kUnset = UINT32_MAX;

  const EdgeUniverse& universe_;
  const EdgePattern& step_;
  // One bit per canonical edge index: set ⇒ the edge matches the step's
  // tail∧label constraints (head is fixed per in-run, tested once). Built
  // with one filter_edges sweep over AllEdges().
  frontier::BitmapFrontier match_bits_;
  uint64_t build_words_ = 0;

  std::vector<uint32_t> offset_;
  std::vector<uint32_t> length_;
  std::vector<EdgeIndex> pool_;
  std::vector<uint32_t> idx_buf_;
};

}  // namespace mrpa

#endif  // MRPA_CORE_DENSE_LEVEL_H_
