#include "compiler/cost_model.h"

#include <algorithm>

namespace mrpa {

CostModel::CostModel(const EdgeUniverse& universe,
                     const obs::ObsRegistry* registry)
    : universe_(universe), registry_(registry) {
  const double num_vertices =
      std::max<double>(1.0, static_cast<double>(universe.num_vertices()));
  fanout_ = static_cast<double>(universe.num_edges()) / num_vertices;

  if (registry == nullptr) return;
  const obs::HistogramSnapshot widths =
      registry->SnapshotHistogram(obs::Hist::kTraversalLevelWidth);
  if (widths.count == 0) return;  // No history: stay structural.
  const double mean_width =
      static_cast<double>(widths.sum) / static_cast<double>(widths.count);
  // Staleness check: a mean frontier wider than the edge set cannot have
  // been observed on THIS universe (each level holds at most |E| distinct
  // extensions of a path). Such stats come from another (or a since-mutated)
  // graph; trusting them would steer the planner with noise.
  if (widths.max > universe.num_edges() ||
      mean_width > static_cast<double>(universe.num_edges())) {
    return;
  }
  // Observed mean level width is frontier · fanout · selectivity averaged
  // over history; use it to damp the structural fanout toward what this
  // workload actually sees (geometric blend keeps both scales in play).
  calibrated_ = true;
  if (mean_width > 0.0 && fanout_ > 0.0) {
    fanout_ = std::min(fanout_, mean_width);
  }
}

double CostModel::EstimateChainCost(const std::vector<EdgePattern>& steps,
                                    ChainDirection direction) const {
  if (steps.empty()) return 0.0;
  const double num_edges =
      std::max<double>(1.0, static_cast<double>(universe_.num_edges()));

  auto card = [&](const EdgePattern& p) {
    return static_cast<double>(EstimatePatternCardinality(universe_, p));
  };

  double frontier = direction == ChainDirection::kForward
                        ? card(steps.front())
                        : card(steps.back());
  double cost = frontier;
  for (size_t k = 1; k < steps.size(); ++k) {
    const EdgePattern& step = direction == ChainDirection::kForward
                                  ? steps[k]
                                  : steps[steps.size() - 1 - k];
    const double selectivity = std::min(1.0, card(step) / num_edges);
    frontier *= fanout_ * selectivity;
    cost += frontier;
  }
  return cost;
}

PlannerCostHints CostModel::Hints(const std::vector<EdgePattern>& steps) const {
  PlannerCostHints hints;
  if (!calibrated_ || steps.empty()) return hints;
  hints.valid = true;
  hints.forward_cost = EstimateChainCost(steps, ChainDirection::kForward);
  hints.backward_cost = EstimateChainCost(steps, ChainDirection::kBackward);
  return hints;
}

frontier::DensityPolicy CostModel::FrontierPolicy() const {
  frontier::DensityPolicy policy;
  if (!calibrated_) return policy;  // Structural defaults, like invalid hints.
  return frontier::CalibrateDensityPolicy(policy, registry_,
                                          universe_.num_vertices(),
                                          universe_.num_edges());
}

}  // namespace mrpa
