// The compiler's algebra IR: hash-consed path-expression nodes.
//
// PathExpr (core/expr.h) is the right surface syntax — immutable,
// shareable, one tree per query — but the wrong substrate for an optimizer:
// structural equality is a recursive walk, repeated subtrees are distinct
// allocations, and rewrite passes would re-discover the same facts at every
// node visit. IrModule interns every node once (hash-consing), so
//
//   * structural equality IS id equality — the prefix-factoring pass finds
//     common join factors by comparing two uint32s;
//   * per-node analyses (nullability, product-/star-freeness, size) are
//     computed once at intern time and read back as fields;
//   * passes are pure functions IrId -> IrId over a growing arena; the
//     original query stays valid alongside every rewritten version, which
//     is what lets the pipeline harness diff any pass against the oracle.
//
// Lower() maps a PathExpr tree in (deduplicating as it goes); ToExpr() maps
// any interned id back out. Both directions preserve structure exactly —
// StructurallyEqual(e, ToExpr(Lower(e))) holds for every expression — so
// the IR adds no semantics of its own: a pass is correct iff the PathExpr
// trees on either side denote the same governed result.

#ifndef MRPA_COMPILER_IR_H_
#define MRPA_COMPILER_IR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/edge_pattern.h"
#include "core/expr.h"
#include "core/path_set.h"

namespace mrpa {

using IrId = uint32_t;
inline constexpr IrId kNoIr = 0xffffffffu;

// Same constructor set as ExprKind; kept separate so the IR can evolve
// (annotations, fused operators) without touching the core algebra.
enum class IrKind : uint8_t {
  kEmpty,
  kEpsilon,
  kAtom,
  kLiteral,
  kUnion,
  kJoin,
  kProduct,
  kStar,
  kPlus,
  kOptional,
  kPower,
};

std::string_view IrKindName(IrKind kind);

struct IrNode {
  IrKind kind = IrKind::kEmpty;
  IrId lhs = kNoIr;  // First child, kNoIr for leaves.
  IrId rhs = kNoIr;  // Second child (binary kinds only).
  // kAtom: index into IrModule atoms(); kLiteral: index into literals();
  // kPower: the exponent n.
  uint32_t payload = 0;

  // Analyses, fixed at intern time (children are always interned first):
  bool nullable = false;      // ε ∈ L(node) (unbounded semantics).
  bool product_free = true;   // No ×◦ anywhere below.
  bool star_free = true;      // No * / + anywhere below.
  bool literal_free = true;   // No explicit path-set literal below (literals
                              // may hold edges outside any bound universe).
  uint32_t size = 1;          // Expression-TREE node count (not DAG).
};

class IrModule {
 public:
  IrModule() = default;

  // Not copyable (ids are arena-relative); movable for factory returns.
  IrModule(const IrModule&) = delete;
  IrModule& operator=(const IrModule&) = delete;
  IrModule(IrModule&&) noexcept = default;
  IrModule& operator=(IrModule&&) noexcept = default;

  // --- Interning constructors -------------------------------------------
  // Each returns the id of the unique node with that shape: interning the
  // same (kind, children, payload) twice returns the same id.
  IrId Empty();
  IrId Epsilon();
  IrId Atom(const EdgePattern& pattern);
  IrId Literal(const PathSet& paths);
  IrId Union(IrId lhs, IrId rhs);
  IrId Join(IrId lhs, IrId rhs);
  IrId Product(IrId lhs, IrId rhs);
  IrId Star(IrId inner);
  IrId Plus(IrId inner);
  IrId Optional(IrId inner);
  IrId Power(IrId inner, uint32_t n);

  // --- Conversion --------------------------------------------------------
  IrId Lower(const PathExpr& expr);
  PathExprPtr ToExpr(IrId id) const;

  // --- Access ------------------------------------------------------------
  const IrNode& node(IrId id) const { return nodes_[id]; }
  const EdgePattern& atom(uint32_t index) const { return atoms_[index]; }
  const PathSet& literal(uint32_t index) const { return literals_[index]; }
  const EdgePattern& atom_of(IrId id) const {
    return atoms_[nodes_[id].payload];
  }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  IrId Intern(IrKind kind, IrId lhs, IrId rhs, uint32_t payload);

  std::vector<IrNode> nodes_;
  std::vector<EdgePattern> atoms_;
  std::vector<PathSet> literals_;
  // Structural keys: (kind, lhs, rhs, payload) packed into a string for the
  // node table; canonical renderings for atom / literal payload dedup (both
  // representations are canonical — sorted id sets, sorted path vectors —
  // so the rendering is injective).
  std::unordered_map<uint64_t, std::vector<IrId>> node_index_;
  std::unordered_map<std::string, uint32_t> atom_index_;
  std::unordered_map<std::string, uint32_t> literal_index_;
};

}  // namespace mrpa

#endif  // MRPA_COMPILER_IR_H_
