#include "compiler/ir.h"

#include <cassert>

#include "util/hash.h"

namespace mrpa {

std::string_view IrKindName(IrKind kind) {
  switch (kind) {
    case IrKind::kEmpty:
      return "empty";
    case IrKind::kEpsilon:
      return "epsilon";
    case IrKind::kAtom:
      return "atom";
    case IrKind::kLiteral:
      return "literal";
    case IrKind::kUnion:
      return "union";
    case IrKind::kJoin:
      return "join";
    case IrKind::kProduct:
      return "product";
    case IrKind::kStar:
      return "star";
    case IrKind::kPlus:
      return "plus";
    case IrKind::kOptional:
      return "optional";
    case IrKind::kPower:
      return "power";
  }
  return "?";
}

IrId IrModule::Intern(IrKind kind, IrId lhs, IrId rhs, uint32_t payload) {
  uint64_t key = HashCombine(static_cast<uint64_t>(kind), lhs);
  key = HashCombine(key, rhs);
  key = HashCombine(key, payload);
  std::vector<IrId>& bucket = node_index_[key];
  for (IrId id : bucket) {
    const IrNode& n = nodes_[id];
    if (n.kind == kind && n.lhs == lhs && n.rhs == rhs &&
        n.payload == payload) {
      return id;
    }
  }

  IrNode node;
  node.kind = kind;
  node.lhs = lhs;
  node.rhs = rhs;
  node.payload = payload;
  const IrNode* l = lhs != kNoIr ? &nodes_[lhs] : nullptr;
  const IrNode* r = rhs != kNoIr ? &nodes_[rhs] : nullptr;
  switch (kind) {
    case IrKind::kEmpty:
    case IrKind::kAtom:
      node.nullable = false;
      break;
    case IrKind::kEpsilon:
      node.nullable = true;
      break;
    case IrKind::kLiteral:
      node.nullable = literals_[payload].ContainsEpsilon();
      break;
    case IrKind::kUnion:
      node.nullable = l->nullable || r->nullable;
      break;
    case IrKind::kJoin:
    case IrKind::kProduct:
      node.nullable = l->nullable && r->nullable;
      break;
    case IrKind::kStar:
    case IrKind::kOptional:
      node.nullable = true;
      break;
    case IrKind::kPlus:
      node.nullable = l->nullable;
      break;
    case IrKind::kPower:
      node.nullable = payload == 0 || l->nullable;
      break;
  }
  node.product_free = kind != IrKind::kProduct &&
                      (l == nullptr || l->product_free) &&
                      (r == nullptr || r->product_free);
  node.star_free = kind != IrKind::kStar && kind != IrKind::kPlus &&
                   (l == nullptr || l->star_free) &&
                   (r == nullptr || r->star_free);
  node.literal_free = kind != IrKind::kLiteral &&
                      (l == nullptr || l->literal_free) &&
                      (r == nullptr || r->literal_free);
  node.size = 1 + (l != nullptr ? l->size : 0) + (r != nullptr ? r->size : 0);

  const IrId id = static_cast<IrId>(nodes_.size());
  nodes_.push_back(node);
  bucket.push_back(id);
  return id;
}

IrId IrModule::Empty() { return Intern(IrKind::kEmpty, kNoIr, kNoIr, 0); }
IrId IrModule::Epsilon() { return Intern(IrKind::kEpsilon, kNoIr, kNoIr, 0); }

IrId IrModule::Atom(const EdgePattern& pattern) {
  const std::string key = pattern.ToString();
  auto [it, inserted] =
      atom_index_.try_emplace(key, static_cast<uint32_t>(atoms_.size()));
  if (inserted) atoms_.push_back(pattern);
  return Intern(IrKind::kAtom, kNoIr, kNoIr, it->second);
}

IrId IrModule::Literal(const PathSet& paths) {
  const std::string key = paths.ToString();
  auto [it, inserted] =
      literal_index_.try_emplace(key, static_cast<uint32_t>(literals_.size()));
  if (inserted) literals_.push_back(paths);
  return Intern(IrKind::kLiteral, kNoIr, kNoIr, it->second);
}

IrId IrModule::Union(IrId lhs, IrId rhs) {
  return Intern(IrKind::kUnion, lhs, rhs, 0);
}
IrId IrModule::Join(IrId lhs, IrId rhs) {
  return Intern(IrKind::kJoin, lhs, rhs, 0);
}
IrId IrModule::Product(IrId lhs, IrId rhs) {
  return Intern(IrKind::kProduct, lhs, rhs, 0);
}
IrId IrModule::Star(IrId inner) {
  return Intern(IrKind::kStar, inner, kNoIr, 0);
}
IrId IrModule::Plus(IrId inner) {
  return Intern(IrKind::kPlus, inner, kNoIr, 0);
}
IrId IrModule::Optional(IrId inner) {
  return Intern(IrKind::kOptional, inner, kNoIr, 0);
}
IrId IrModule::Power(IrId inner, uint32_t n) {
  return Intern(IrKind::kPower, inner, kNoIr, n);
}

IrId IrModule::Lower(const PathExpr& expr) {
  switch (expr.kind()) {
    case ExprKind::kEmpty:
      return Empty();
    case ExprKind::kEpsilon:
      return Epsilon();
    case ExprKind::kAtom:
      return Atom(expr.pattern());
    case ExprKind::kLiteral:
      return Literal(expr.literal());
    case ExprKind::kUnion:
      return Union(Lower(*expr.children()[0]), Lower(*expr.children()[1]));
    case ExprKind::kJoin:
      return Join(Lower(*expr.children()[0]), Lower(*expr.children()[1]));
    case ExprKind::kProduct:
      return Product(Lower(*expr.children()[0]), Lower(*expr.children()[1]));
    case ExprKind::kStar:
      return Star(Lower(*expr.children()[0]));
    case ExprKind::kPlus:
      return Plus(Lower(*expr.children()[0]));
    case ExprKind::kOptional:
      return Optional(Lower(*expr.children()[0]));
    case ExprKind::kPower:
      return Power(Lower(*expr.children()[0]),
                   static_cast<uint32_t>(expr.power()));
  }
  return Empty();
}

PathExprPtr IrModule::ToExpr(IrId id) const {
  assert(id < nodes_.size());
  const IrNode& n = nodes_[id];
  switch (n.kind) {
    case IrKind::kEmpty:
      return PathExpr::Empty();
    case IrKind::kEpsilon:
      return PathExpr::Epsilon();
    case IrKind::kAtom:
      return PathExpr::Atom(atoms_[n.payload]);
    case IrKind::kLiteral:
      return PathExpr::Literal(literals_[n.payload]);
    case IrKind::kUnion:
      return PathExpr::MakeUnion(ToExpr(n.lhs), ToExpr(n.rhs));
    case IrKind::kJoin:
      return PathExpr::MakeJoin(ToExpr(n.lhs), ToExpr(n.rhs));
    case IrKind::kProduct:
      return PathExpr::MakeProduct(ToExpr(n.lhs), ToExpr(n.rhs));
    case IrKind::kStar:
      return PathExpr::MakeStar(ToExpr(n.lhs));
    case IrKind::kPlus:
      return PathExpr::MakePlus(ToExpr(n.lhs));
    case IrKind::kOptional:
      return PathExpr::MakeOptional(ToExpr(n.lhs));
    case IrKind::kPower:
      return PathExpr::MakePower(ToExpr(n.lhs), n.payload);
  }
  return PathExpr::Empty();
}

}  // namespace mrpa
