#include "compiler/compiler.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace mrpa {
namespace {

// Fixed-precision float rendering for ExplainPlan (std::to_string's 6
// digits are noisy and locale-independent formatting matters for goldens).
std::string Fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return std::string(buf);
}

void AppendStatSuffix(const PassStats& stats, std::string& out) {
  std::string inner;
  auto add = [&inner](const char* key, size_t value) {
    if (value == 0) return;
    if (!inner.empty()) inner += ", ";
    inner += key;
    inner += "=";
    inner += std::to_string(value);
  };
  add("rewrites", stats.rewrites);
  add("dead_branches", stats.dead_branches);
  add("filters_pushed", stats.filters_pushed);
  add("prefixes_factored", stats.prefixes_factored);
  add("joins_reordered", stats.joins_reordered);
  if (!inner.empty()) out += " (" + inner + ")";
}

}  // namespace

Result<CompiledQuery> CompileQuery(const PathExprPtr& expr,
                                   const EdgeUniverse& universe,
                                   const CompileOptions& options) {
  if (expr == nullptr) {
    return Status::InvalidArgument("CompileQuery: null expression");
  }

  CompiledQuery query;
  query.universe_ = &universe;
  query.eval_ = options.eval;
  query.eval_.exec = nullptr;  // Run() threads the caller's context.
  query.source_ = expr->ToString();

  IrModule module;
  IrId root = module.Lower(*expr);
  if (options.optimize) {
    const std::vector<const Pass*>& passes =
        options.passes.empty() ? DefaultPassPipeline() : options.passes;
    PassContext pass_ctx;
    pass_ctx.universe = &universe;
    root = RunPipeline(module, root, passes, pass_ctx, &query.trace_,
                       options.registry);
  }
  query.plan_expr_ = module.ToExpr(root);

  // Plan emission: a pure atom chain runs the chain evaluator with the
  // direction chosen by the cost model — which degrades to the planner's
  // seed heuristic whenever its hints are invalid (no registry, no
  // recorded traversal history, or stale history). Emission is independent
  // of `optimize`: direction never changes the denoted set.
  if (std::optional<std::vector<EdgePattern>> chain =
          ExtractAtomChain(*query.plan_expr_);
      chain.has_value()) {
    const CostModel model(universe, options.registry);
    query.cost_calibrated_ = model.calibrated();
    query.cost_fanout_ = model.fanout();
    query.cost_hints_ = model.Hints(*chain);
    query.chain_plan_ = PlanChain(universe, *chain, query.cost_hints_);
    query.chain_steps_ = std::move(chain);
  }

  const IrNode& root_node = module.node(root);
  if (root_node.product_free && root_node.literal_free) {
    if (Result<DfaSizeReport> report =
            MeasureMinimization(*query.plan_expr_, universe);
        report.ok()) {
      query.dfa_report_ = *report;
    }
  }

  if (options.registry != nullptr) {
    options.registry->Add(obs::Metric::kCompilerQueriesCompiled, 1);
  }
  return query;
}

Result<GovernedPathSet> CompiledQuery::Run(ExecContext& ctx) const {
  const ExecStats entry_stats = ctx.Snapshot();

  // An already-expired deadline (or cancelled token, or previously tripped
  // context) never starts speculation: fail closed with the empty truncated
  // result before doing any work. Deadline polling inside the evaluators is
  // strided, so without this check a short speculation could run to
  // completion under a dead deadline and leak a nonempty answer.
  if (!ctx.CheckDeadline().ok()) {
    GovernedPathSet out;
    out.truncated = true;
    out.limit = ctx.limit_status();
    out.stats = ctx.Snapshot();
    return out;
  }

  // Speculate under a quiet context: unlimited countable budgets, shared
  // absolute deadline and cancel token, fault probes off (ShardContext's
  // contract). Every correct plan computes the identical canonical set
  // here, so everything the caller can observe below is plan-independent.
  ExecContext quiet =
      ExecContext::ShardContext(ctx, ExecLimits::Unlimited());
  Result<PathSet> full = [&]() -> Result<PathSet> {
    if (is_chain()) {
      Result<GovernedPathSet> governed = EvaluateChainGoverned(
          *universe_, *chain_steps_, chain_plan_.direction, quiet,
          eval_.limits);
      if (!governed.ok()) return governed.status();
      if (governed->truncated) return governed->limit;
      return std::move(governed->paths);
    }
    EvalOptions eval = eval_;
    eval.exec = &quiet;
    return plan_expr_->Evaluate(*universe_, eval);
  }();

  if (!full.ok()) {
    const StatusCode code = full.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      // The documented caveat: the speculation died on wall clock or
      // cancellation, so there is no canonical prefix to replay — an empty
      // truncated result carries the trip. Poll the caller's context so
      // its sticky status (deadline and token are shared) records it too.
      ctx.CheckDeadline();
      GovernedPathSet out;
      out.truncated = true;
      out.limit = ctx.limit_status().ok() ? full.status() : ctx.limit_status();
      out.stats = ctx.Snapshot();
      return out;
    }
    return full.status();  // A real error (hard limits, invalid input).
  }

  // Replay: charge the caller's context once per canonical path, in
  // canonical order, emitting while the checks pass. The sequence of
  // checks — and thus every counter, trip, and deterministic fault probe —
  // is a pure function of the canonical set and the context's state.
  std::vector<Path> emitted;
  emitted.reserve(full->size());
  for (const Path& path : full->paths()) {
    if (!ctx.CheckStep(1).ok()) break;
    if (!ctx.ChargePaths(1).ok()) break;
    if (!ctx.ChargeBytes(ApproxBytes(path)).ok()) break;
    emitted.push_back(path);
  }

  GovernedPathSet out;
  out.paths = PathSet::FromSortedUnique(std::move(emitted));
  out.truncated = ctx.Exceeded();
  out.limit = ctx.limit_status();
  out.stats = ctx.Snapshot();
  if (ctx.observer() != nullptr) {
    AddExecStatsDelta(*ctx.observer(), entry_stats, out.stats);
  }
  return out;
}

std::string CompiledQuery::ExplainPlan() const {
  std::string out;
  out += "query: " + source_ + "\n";
  out += "plan:  " + plan_expr_->ToString() + "\n";
  out += "passes:\n";
  if (trace_.empty()) {
    out += "  (none)\n";
  }
  for (const PassTraceEntry& entry : trace_) {
    out += "  " + entry.pass + ": " + std::to_string(entry.size_before) +
           " -> " + std::to_string(entry.size_after) + " nodes";
    AppendStatSuffix(entry.stats, out);
    out += "\n";
  }
  if (is_chain()) {
    out += "execution: chain steps=" + std::to_string(chain_steps_->size()) +
           " direction=" +
           (chain_plan_.direction == ChainDirection::kForward ? "forward"
                                                              : "backward") +
           " seeds fwd=" + std::to_string(chain_plan_.forward_seed_estimate) +
           " bwd=" + std::to_string(chain_plan_.backward_seed_estimate) + "\n";
  } else {
    out += "execution: evaluate\n";
  }
  if (cost_hints_.valid) {
    out += "cost: model fanout=" + Fixed2(cost_fanout_) +
           " fwd=" + Fixed2(cost_hints_.forward_cost) +
           " bwd=" + Fixed2(cost_hints_.backward_cost) + "\n";
  } else {
    out += "cost: heuristic (uncalibrated)\n";
  }
  if (dfa_report_.has_value()) {
    out += "dfa: minimized=" + std::to_string(dfa_report_->minimized_states) +
           "/" + std::to_string(dfa_report_->materialized_states) +
           " states classes=" + std::to_string(dfa_report_->edge_classes) +
           "\n";
  }
  return out;
}

}  // namespace mrpa
