// The optimizer's cost model: whole-chain frontier estimates, calibrated by
// ObsRegistry traversal statistics.
//
// The chain planner's seed heuristic (engine/chain_planner.h) compares only
// the two END patterns of a join chain. That is usually right, but a chain
// can be cheap to seed yet explosive in the middle — [v,_,_] ⋈ E ⋈ [_,α,w]
// seeds forward with deg(v) but then fans out through ALL of E. This model
// propagates the whole chain:
//
//   frontier_0 = card(step_0)                        (index estimate)
//   frontier_k = frontier_{k-1} · fanout · sel(step_k)
//   cost       = Σ frontier_k
//
// where sel(p) = card(p) / |E| is the probability a uniformly random edge
// matches p, and `fanout` is the expected number of candidate edges each
// frontier path offers — |E| / |V| structurally, REPLACED by the observed
// mean level width ratio when the attached ObsRegistry has recorded
// traversal history (the kTraversalLevelWidth histogram). Backward cost is
// the mirror image over the reversed chain.
//
// Degradation contract (differentially tested): Hints() emits valid=false —
// and the hinted PlanChain overload then behaves exactly like the seed
// heuristic — whenever the registry is absent, has no recorded levels, or
// its statistics are STALE for this universe (a mean level width exceeding
// the edge count cannot have come from the graph being planned).

#ifndef MRPA_COMPILER_COST_MODEL_H_
#define MRPA_COMPILER_COST_MODEL_H_

#include <vector>

#include "core/edge_pattern.h"
#include "core/edge_universe.h"
#include "engine/chain_planner.h"
#include "obs/obs.h"

namespace mrpa {

class CostModel {
 public:
  // `registry` supplies calibration and may be null (uncalibrated).
  explicit CostModel(const EdgeUniverse& universe,
                     const obs::ObsRegistry* registry = nullptr);

  // True when the registry offered usable, non-stale traversal statistics.
  bool calibrated() const { return calibrated_; }

  // The per-step fanout factor in use (structural or observed).
  double fanout() const { return fanout_; }

  // Abstract whole-chain frontier work for one direction. Comparable only
  // against the other direction of the same chain.
  double EstimateChainCost(const std::vector<EdgePattern>& steps,
                           ChainDirection direction) const;

  // Both directions, packaged for the hinted PlanChain overload. valid iff
  // calibrated() — an uncalibrated model yields hints that degrade the
  // planner to its seed heuristic.
  PlannerCostHints Hints(const std::vector<EdgePattern>& steps) const;

  // The sparse/dense execution policy for this universe, thresholds
  // re-anchored on the SAME level-width history that calibrates the fanout
  // (frontier::CalibrateDensityPolicy, including its staleness guard).
  // Uncalibrated models return the structural defaults — the policy analogue
  // of valid=false hints. Attach to TraversalSpec::density /
  // EvaluateChainGoverned to close the PR 7 feedback loop at plan time
  // rather than per run.
  frontier::DensityPolicy FrontierPolicy() const;

 private:
  const EdgeUniverse& universe_;
  const obs::ObsRegistry* registry_ = nullptr;
  bool calibrated_ = false;
  double fanout_ = 0.0;
};

}  // namespace mrpa

#endif  // MRPA_COMPILER_COST_MODEL_H_
