// The query compiler: PathExpr → algebra IR → optimizer passes → an
// executable plan with a governed, replay-accounted executor.
//
// CompileQuery lowers a parsed expression (engine/parser.h) into the
// hash-consed IR (compiler/ir.h), runs the registered pass pipeline
// (compiler/passes.h), and emits the plan the existing engines consume:
// a pure ⋈◦ atom chain compiles to the chain evaluator with its direction
// chosen by the cost model (compiler/cost_model.h, degrading to the seed
// heuristic when ObsRegistry statistics are absent or stale); everything
// else compiles to the bottom-up evaluator over the optimized tree.
//
// Execution discipline (the query-level version of the PR 2 parallel-fold
// contract): Run() SPECULATES the plan under a quiet shard context —
// unlimited countable budgets, the caller's absolute deadline and cancel
// token, fault probes off — and then REPLAYS governance accounting against
// the caller's real ExecContext once per canonical result path, in
// canonical order (CheckStep, ChargePaths, ChargeBytes(ApproxBytes)),
// emitting each path only while the checks pass. Because every correct
// plan speculates the IDENTICAL canonical path set, the replay sequence —
// and therefore the governed output: paths, order, truncation flag, limit
// Status, and stats minus elapsed time — is byte-identical across plans
// for countable budgets and deterministic injected faults. That identity
// is the compiler's correctness contract, enforced pass-by-pass by the
// pipeline harness. Two documented caveats: a deadline/cancellation trip
// during speculation yields an EMPTY truncated result (there is no
// canonical prefix to salvage), and EvalOptions::limits (PathSetLimits)
// keeps its hard-error semantics on INTERMEDIATE sets, which are plan-
// dependent — leave it unlimited when differential identity matters.

#ifndef MRPA_COMPILER_COMPILER_H_
#define MRPA_COMPILER_COMPILER_H_

#include <optional>
#include <string>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/ir.h"
#include "compiler/passes.h"
#include "core/edge_universe.h"
#include "core/expr.h"
#include "core/path_set.h"
#include "engine/chain_planner.h"
#include "obs/obs.h"
#include "regex/dfa_minimizer.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

struct CompileOptions {
  // When false the pass pipeline is skipped entirely — the compiled plan
  // is the input expression as written. This is the differential oracle.
  bool optimize = true;
  // Pipeline override; empty means DefaultPassPipeline() (when optimizing).
  std::vector<const Pass*> passes;
  // Star-expansion bound and intermediate-set limits for the evaluators.
  // eval.exec is ignored — Run() supplies the context.
  EvalOptions eval;
  // Optional: receives compiler.* counters/histograms at compile time and
  // calibrates the cost model; may be null.
  obs::ObsRegistry* registry = nullptr;
};

class CompiledQuery {
 public:
  // The optimized (or verbatim, when !optimize) expression the plan runs.
  const PathExprPtr& plan_expr() const { return plan_expr_; }

  // Chain emission: non-empty steps mean the plan runs the chain evaluator.
  bool is_chain() const { return chain_steps_.has_value(); }
  const std::vector<EdgePattern>& chain_steps() const { return *chain_steps_; }
  const ChainPlan& chain_plan() const { return chain_plan_; }
  const PlannerCostHints& cost_hints() const { return cost_hints_; }
  bool cost_model_calibrated() const { return cost_calibrated_; }

  // One entry per executed pass, in pipeline order.
  const std::vector<PassTraceEntry>& pass_trace() const { return trace_; }

  // Minimization measurements for product- and literal-free plans (what
  // the dfa-minimize pass saw); nullopt when outside that fragment.
  const std::optional<DfaSizeReport>& dfa_report() const { return dfa_report_; }

  // Speculate + replay, as documented above. `ctx` carries the budgets,
  // deadline, cancellation, fault probes, and (optionally) an ObsRegistry.
  Result<GovernedPathSet> Run(ExecContext& ctx) const;

  // Deterministic multi-line plan rendering (golden-tested): the source and
  // optimized expressions, the per-pass trace, the emitted execution
  // strategy with the cost model's verdict, and the DFA report when
  // available. No timing, no pointers — identical plans print identically.
  std::string ExplainPlan() const;

 private:
  friend Result<CompiledQuery> CompileQuery(const PathExprPtr& expr,
                                            const EdgeUniverse& universe,
                                            const CompileOptions& options);

  const EdgeUniverse* universe_ = nullptr;
  EvalOptions eval_;
  std::string source_;
  PathExprPtr plan_expr_;
  std::optional<std::vector<EdgePattern>> chain_steps_;
  ChainPlan chain_plan_;
  PlannerCostHints cost_hints_;
  bool cost_calibrated_ = false;
  double cost_fanout_ = 0.0;
  std::vector<PassTraceEntry> trace_;
  std::optional<DfaSizeReport> dfa_report_;
};

// Lowers, optimizes, and plans `expr` against `universe`. The universe
// reference must outlive the returned query. Fails only on structurally
// invalid input (null expression).
Result<CompiledQuery> CompileQuery(const PathExprPtr& expr,
                                   const EdgeUniverse& universe,
                                   const CompileOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_COMPILER_COMPILER_H_
