// The optimizer pass pipeline over the algebra IR.
//
// A pass is a pure function IrId → IrId that must preserve the governed
// denotation EXACTLY — same path set under the same bounded-evaluation
// options — because the executor (compiler/compiler.h) replays governance
// accounting off the result set, and the pipeline harness
// (tests/compiler_pipeline_test.cc) diffs every pass, alone and in random
// pipeline orders, against the unoptimized oracle byte for byte. The
// rewrites each pass is allowed to use are therefore restricted to
// identities that hold PATHWISE under bounded star expansion, with
// explicit structural guards:
//
//   simplify        the bounded-star-SAFE subset of core/simplify.h's
//                   identity table: ∅/ε units and annihilators, idempotent
//                   ∪ (by hash-consed id equality), degenerate closures
//                   (∅* = ε* = ∅? = ε, ∅+ = ∅), power unrolling (R^0 = ε,
//                   R^1 = R, ∅^n = ∅, ε^n = ε), and literal normalization
//                   ({} = ∅, {ε} = ε). The nested-closure collapses
//                   ((R*)* = R*, (R?)* = R*, …) are deliberately absent:
//                   they are language identities, but under bounded star
//                   expansion (EvalOptions::max_star_expansion) the nested
//                   form reaches more repetitions than the collapsed one,
//                   so collapsing SHRINKS governed results on cyclic
//                   graphs.
//   dead-branch     atoms whose index cardinality upper bound is ZERO (an
//                   exact answer: nothing matches) become ∅; ∅/ε then
//                   propagate structurally. Needs a bound universe.
//   filter-pushdown at a ⋈◦ seam between two ε-free sides, the head
//                   constraint guaranteed by the left side's LAST atom and
//                   the tail constraint guaranteed by the right side's
//                   FIRST atom must agree on the seam vertex, so each atom
//                   is narrowed by the other's constraint — a σ-filter
//                   pushed into the per-label CSR scan. Never pushes into
//                   star/plus/power bodies (the body serves every
//                   repetition, the seam only the outermost one) and never
//                   across a nullable side (ε joins with everything).
//   prefix-factor   (A ⋈◦ B) ∪ (A ⋈◦ C) → A ⋈◦ (B ∪ C) across whole union
//                   spines, detecting common leading factors by hash-consed
//                   id equality — the left-distributivity law the property
//                   suite pins. Factored prefixes evaluate once and share
//                   their PathArena nodes at runtime.
//   join-reorder    re-associates every ⋈◦ spine into canonical left-deep
//                   form (associativity; the direction decision itself is
//                   made at emit time by the cost model + chain planner).
//   dfa-minimize    for product- and literal-free subtrees up to a size
//                   cap over a bound universe: materialize the minimized
//                   DFA (regex/dfa_minimizer.h); a machine with no
//                   reachable accepting state proves L = ∅ over the
//                   universe's edges, and the subtree collapses to ∅.
//
// Passes are stateless singletons; registry lookup is by name. RunPipeline
// applies a sequence and records a per-pass trace (sizes, rewrite counts,
// wall time) that feeds ExplainPlan and the compiler.* metrics.

#ifndef MRPA_COMPILER_PASSES_H_
#define MRPA_COMPILER_PASSES_H_

#include <string>
#include <string_view>
#include <vector>

#include "compiler/ir.h"
#include "core/edge_universe.h"
#include "obs/obs.h"
#include "util/exec_context.h"

namespace mrpa {

// Shared, read-only inputs for a pass run. Everything is optional: a pass
// whose precondition is missing (no universe for dead-branch, say) must
// return its input unchanged.
struct PassContext {
  const EdgeUniverse* universe = nullptr;
  // The budget regime the plan will run under; advisory (a pass may skip
  // expensive analysis under tight budgets), never semantic.
  const ExecLimits* limits = nullptr;
};

// What a pass did, accumulated across a pipeline.
struct PassStats {
  size_t rewrites = 0;           // Nodes whose shape changed, roughly.
  size_t dead_branches = 0;      // Subtrees proven ∅ (cardinality or DFA).
  size_t filters_pushed = 0;     // Atom constraints narrowed at join seams.
  size_t prefixes_factored = 0;  // Union operands folded under a factor.
  size_t joins_reordered = 0;    // Join spines re-associated.
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  // Must return an id denoting the same governed path set as `root`.
  virtual IrId Run(IrModule& module, IrId root, const PassContext& ctx,
                   PassStats& stats) const = 0;
};

// The registered passes in default pipeline order: simplify, dead-branch,
// filter-pushdown, prefix-factor, join-reorder, dfa-minimize. Simplify
// first exposes structure; dfa-minimize last sees the narrowed atoms.
const std::vector<const Pass*>& DefaultPassPipeline();

// Lookup by name(); nullptr when unknown.
const Pass* FindPass(std::string_view name);

// One pipeline step's record, for ExplainPlan and tests.
struct PassTraceEntry {
  std::string pass;
  size_t size_before = 0;  // Expression-tree node counts.
  size_t size_after = 0;
  PassStats stats;
};

// Applies `passes` in order. `trace` (optional) receives one entry per
// pass; `registry` (optional) receives compiler.* counters and the
// per-pass wall-time histogram.
IrId RunPipeline(IrModule& module, IrId root,
                 const std::vector<const Pass*>& passes,
                 const PassContext& ctx,
                 std::vector<PassTraceEntry>* trace = nullptr,
                 obs::ObsRegistry* registry = nullptr);

}  // namespace mrpa

#endif  // MRPA_COMPILER_PASSES_H_
