#include "compiler/passes.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>
#include <utility>

#include "engine/chain_planner.h"
#include "regex/dfa_minimizer.h"

namespace mrpa {
namespace {

bool Is(const IrModule& m, IrId id, IrKind kind) {
  return m.node(id).kind == kind;
}

// --- Bounded-safe rebuild helpers ----------------------------------------
// Every constructor below applies only identities that hold PATHWISE under
// bounded star expansion (see the table in passes.h). Passes funnel all
// node construction through these, so ∅/ε introduced anywhere propagates
// structurally for free. Each applied collapse counts as one rewrite.

IrId RebuildUnion(IrModule& m, IrId l, IrId r, PassStats& stats) {
  if (Is(m, l, IrKind::kEmpty)) {
    ++stats.rewrites;
    return r;
  }
  if (Is(m, r, IrKind::kEmpty)) {
    ++stats.rewrites;
    return l;
  }
  if (l == r) {  // Hash-consing: id equality IS structural equality.
    ++stats.rewrites;
    return l;
  }
  return m.Union(l, r);
}

IrId RebuildJoin(IrModule& m, IrId l, IrId r, PassStats& stats) {
  if (Is(m, l, IrKind::kEmpty) || Is(m, r, IrKind::kEmpty)) {
    ++stats.rewrites;
    return m.Empty();
  }
  if (Is(m, l, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return r;
  }
  if (Is(m, r, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return l;
  }
  return m.Join(l, r);
}

IrId RebuildProduct(IrModule& m, IrId l, IrId r, PassStats& stats) {
  if (Is(m, l, IrKind::kEmpty) || Is(m, r, IrKind::kEmpty)) {
    ++stats.rewrites;
    return m.Empty();
  }
  if (Is(m, l, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return r;
  }
  if (Is(m, r, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return l;
  }
  return m.Product(l, r);
}

IrId RebuildStar(IrModule& m, IrId inner, PassStats& stats) {
  if (Is(m, inner, IrKind::kEmpty) || Is(m, inner, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return m.Epsilon();
  }
  return m.Star(inner);
}

IrId RebuildPlus(IrModule& m, IrId inner, PassStats& stats) {
  if (Is(m, inner, IrKind::kEmpty)) {
    ++stats.rewrites;
    return m.Empty();
  }
  if (Is(m, inner, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return m.Epsilon();
  }
  return m.Plus(inner);
}

IrId RebuildOptional(IrModule& m, IrId inner, PassStats& stats) {
  if (Is(m, inner, IrKind::kEmpty) || Is(m, inner, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return m.Epsilon();
  }
  return m.Optional(inner);
}

IrId RebuildPower(IrModule& m, IrId inner, uint32_t n, PassStats& stats) {
  if (n == 0) {
    ++stats.rewrites;
    return m.Epsilon();
  }
  if (Is(m, inner, IrKind::kEmpty)) {
    ++stats.rewrites;
    return m.Empty();
  }
  if (Is(m, inner, IrKind::kEpsilon)) {
    ++stats.rewrites;
    return m.Epsilon();
  }
  if (n == 1) {
    ++stats.rewrites;
    return inner;
  }
  return m.Power(inner, n);
}

// Rebuilds `id`'s operator over (possibly rewritten) children through the
// collapse helpers above. `n` must be a COPY of the node — interning during
// recursion can reallocate the node table.
IrId Reconstruct(IrModule& m, const IrNode& n, IrId l, IrId r,
                 PassStats& stats) {
  switch (n.kind) {
    case IrKind::kUnion:
      return RebuildUnion(m, l, r, stats);
    case IrKind::kJoin:
      return RebuildJoin(m, l, r, stats);
    case IrKind::kProduct:
      return RebuildProduct(m, l, r, stats);
    case IrKind::kStar:
      return RebuildStar(m, l, stats);
    case IrKind::kPlus:
      return RebuildPlus(m, l, stats);
    case IrKind::kOptional:
      return RebuildOptional(m, l, stats);
    case IrKind::kPower:
      return RebuildPower(m, l, n.payload, stats);
    default:
      return kNoIr;  // Leaves never reach here.
  }
}

// Post-order rewriter skeleton shared by every pass: memoized over the
// hash-consed ids (shared subtrees rewrite once), leaves handled by
// `leaf(id)`, interior nodes by recursing then `finish(node, l, r)` — which
// defaults to Reconstruct when a pass only acts at specific sites.
template <typename LeafFn, typename FinishFn>
class Rewriter {
 public:
  Rewriter(IrModule& m, PassStats& stats, LeafFn leaf, FinishFn finish)
      : m_(m), stats_(stats), leaf_(std::move(leaf)),
        finish_(std::move(finish)) {}

  IrId Rewrite(IrId id) {
    if (auto it = memo_.find(id); it != memo_.end()) return it->second;
    const IrNode n = m_.node(id);  // Copy: interning may reallocate.
    IrId out;
    switch (n.kind) {
      case IrKind::kEmpty:
      case IrKind::kEpsilon:
      case IrKind::kAtom:
      case IrKind::kLiteral:
        out = leaf_(id, n);
        break;
      default: {
        const IrId l = Rewrite(n.lhs);
        const IrId r = n.rhs != kNoIr ? Rewrite(n.rhs) : kNoIr;
        out = finish_(id, n, l, r);
        break;
      }
    }
    memo_.emplace(id, out);
    return out;
  }

 private:
  IrModule& m_;
  PassStats& stats_;
  LeafFn leaf_;
  FinishFn finish_;
  std::unordered_map<IrId, IrId> memo_;
};

template <typename LeafFn, typename FinishFn>
IrId RewriteBottomUp(IrModule& m, IrId root, PassStats& stats, LeafFn leaf,
                     FinishFn finish) {
  Rewriter<LeafFn, FinishFn> rw(m, stats, std::move(leaf), std::move(finish));
  return rw.Rewrite(root);
}

// --- simplify -------------------------------------------------------------

class SimplifyPass final : public Pass {
 public:
  std::string_view name() const override { return "simplify"; }

  IrId Run(IrModule& m, IrId root, const PassContext&,
           PassStats& stats) const override {
    return RewriteBottomUp(
        m, root, stats,
        [&](IrId id, const IrNode& n) {
          if (n.kind != IrKind::kLiteral) return id;
          const PathSet& paths = m.literal(n.payload);
          if (paths.empty()) {
            ++stats.rewrites;
            return m.Empty();
          }
          if (paths.size() == 1 && paths.ContainsEpsilon()) {
            ++stats.rewrites;
            return m.Epsilon();
          }
          return id;
        },
        [&](IrId, const IrNode& n, IrId l, IrId r) {
          return Reconstruct(m, n, l, r, stats);
        });
  }
};

// --- dead-branch ----------------------------------------------------------

class DeadBranchPass final : public Pass {
 public:
  std::string_view name() const override { return "dead-branch"; }

  IrId Run(IrModule& m, IrId root, const PassContext& ctx,
           PassStats& stats) const override {
    if (ctx.universe == nullptr) return root;  // Precondition missing.
    const EdgeUniverse& universe = *ctx.universe;
    return RewriteBottomUp(
        m, root, stats,
        [&](IrId id, const IrNode& n) {
          // A zero UPPER bound is an exact answer: no edge of E matches, so
          // the atom denotes ∅ (EstimatePatternCardinality only returns 0
          // when an index proves it).
          if (n.kind == IrKind::kAtom &&
              EstimatePatternCardinality(universe, m.atom(n.payload)) == 0) {
            ++stats.rewrites;
            ++stats.dead_branches;
            return m.Empty();
          }
          return id;
        },
        [&](IrId, const IrNode& n, IrId l, IrId r) {
          return Reconstruct(m, n, l, r, stats);
        });
  }
};

// --- filter-pushdown ------------------------------------------------------

// a ∩ b over the id-set algebra, exact in every quadrant:
//   pos ∩ pos = pos(S1 ∩ S2)      pos ∩ neg = pos(S1 \ S2)
//   neg ∩ pos = pos(S2 \ S1)      neg ∩ neg = neg(S1 ∪ S2)
IdConstraint IntersectConstraints(const IdConstraint& a,
                                  const IdConstraint& b) {
  if (a.IsUnconstrained()) return b;
  if (b.IsUnconstrained()) return a;
  const std::vector<uint32_t>& sa = *a.ids();  // Sorted by invariant.
  const std::vector<uint32_t>& sb = *b.ids();
  std::vector<uint32_t> out;
  if (!a.negated() && !b.negated()) {
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(out));
    return IdConstraint(std::move(out), false);
  }
  if (!a.negated() && b.negated()) {
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
    return IdConstraint(std::move(out), false);
  }
  if (a.negated() && !b.negated()) {
    std::set_difference(sb.begin(), sb.end(), sa.begin(), sa.end(),
                        std::back_inserter(out));
    return IdConstraint(std::move(out), false);
  }
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(out));
  return IdConstraint(std::move(out), true);
}

// Matches no id at all: a non-negated empty set.
bool MatchesNothing(const IdConstraint& c) {
  return !c.IsUnconstrained() && !c.negated() && c.ids()->empty();
}

// The atom every path of `id` ENDS with, when one is structurally
// guaranteed: an atom is its own last site; a join's last site is its right
// side's, but only when the right side is ε-free (a nullable right side
// lets paths end inside the left). Unions, closures, powers, and literals
// guarantee nothing.
std::optional<IrId> LastAtomSite(const IrModule& m, IrId id) {
  const IrNode& n = m.node(id);
  if (n.kind == IrKind::kAtom) return id;
  if (n.kind == IrKind::kJoin && !m.node(n.rhs).nullable) {
    return LastAtomSite(m, n.rhs);
  }
  return std::nullopt;
}

// Mirror: the atom every path STARTS with.
std::optional<IrId> FirstAtomSite(const IrModule& m, IrId id) {
  const IrNode& n = m.node(id);
  if (n.kind == IrKind::kAtom) return id;
  if (n.kind == IrKind::kJoin && !m.node(n.lhs).nullable) {
    return FirstAtomSite(m, n.lhs);
  }
  return std::nullopt;
}

// Swaps the last-site atom of `id` for `pattern`, following exactly the
// spine LastAtomSite walked.
IrId ReplaceLastAtom(IrModule& m, IrId id, const EdgePattern& pattern,
                     PassStats& stats) {
  const IrNode n = m.node(id);
  if (n.kind == IrKind::kAtom) return m.Atom(pattern);
  return RebuildJoin(m, n.lhs, ReplaceLastAtom(m, n.rhs, pattern, stats),
                     stats);
}

IrId ReplaceFirstAtom(IrModule& m, IrId id, const EdgePattern& pattern,
                      PassStats& stats) {
  const IrNode n = m.node(id);
  if (n.kind == IrKind::kAtom) return m.Atom(pattern);
  return RebuildJoin(m, ReplaceFirstAtom(m, n.lhs, pattern, stats), n.rhs,
                     stats);
}

class FilterPushdownPass final : public Pass {
 public:
  std::string_view name() const override { return "filter-pushdown"; }

  IrId Run(IrModule& m, IrId root, const PassContext&,
           PassStats& stats) const override {
    return RewriteBottomUp(
        m, root, stats, [&](IrId id, const IrNode&) { return id; },
        [&](IrId, const IrNode& n, IrId l, IrId r) {
          if (n.kind != IrKind::kJoin) return Reconstruct(m, n, l, r, stats);
          return PushAtSeam(m, l, r, stats);
        });
  }

 private:
  // At l ⋈◦ r: every joint path's seam vertex is simultaneously the head of
  // l's guaranteed last atom and the tail of r's guaranteed first atom, so
  // both constraints narrow to their intersection — the σ-filter lands in
  // each atom's CSR scan. Soundness needs BOTH sides ε-free: if either side
  // admits ε, ε ⋈◦ p = p bypasses the seam entirely.
  static IrId PushAtSeam(IrModule& m, IrId l, IrId r, PassStats& stats) {
    if (Is(m, l, IrKind::kEmpty) || Is(m, r, IrKind::kEmpty) ||
        Is(m, l, IrKind::kEpsilon) || Is(m, r, IrKind::kEpsilon)) {
      return RebuildJoin(m, l, r, stats);
    }
    if (m.node(l).nullable || m.node(r).nullable) {
      return RebuildJoin(m, l, r, stats);
    }
    const std::optional<IrId> last = LastAtomSite(m, l);
    const std::optional<IrId> first = FirstAtomSite(m, r);
    if (!last.has_value() || !first.has_value()) {
      return RebuildJoin(m, l, r, stats);
    }
    // Copies, not references: interning the narrowed atoms below can
    // reallocate the module's atom table.
    const EdgePattern lp = m.atom_of(*last);
    const EdgePattern fp = m.atom_of(*first);
    const IdConstraint seam = IntersectConstraints(lp.head(), fp.tail());
    if (MatchesNothing(seam)) {
      // No vertex can sit at the seam: the join denotes ∅ outright.
      ++stats.rewrites;
      ++stats.dead_branches;
      return m.Empty();
    }
    IrId new_l = l;
    IrId new_r = r;
    if (seam != lp.head()) {
      new_l = ReplaceLastAtom(m, l, EdgePattern(lp.tail(), lp.label(), seam),
                              stats);
      ++stats.filters_pushed;
    }
    if (seam != fp.tail()) {
      new_r = ReplaceFirstAtom(m, r, EdgePattern(seam, fp.label(), fp.head()),
                               stats);
      ++stats.filters_pushed;
    }
    return RebuildJoin(m, new_l, new_r, stats);
  }
};

// --- prefix-factor --------------------------------------------------------

void FlattenUnion(const IrModule& m, IrId id, std::vector<IrId>& out) {
  const IrNode& n = m.node(id);
  if (n.kind == IrKind::kUnion) {
    FlattenUnion(m, n.lhs, out);
    FlattenUnion(m, n.rhs, out);
    return;
  }
  out.push_back(id);
}

void FlattenJoin(const IrModule& m, IrId id, std::vector<IrId>& out) {
  const IrNode& n = m.node(id);
  if (n.kind == IrKind::kJoin) {
    FlattenJoin(m, n.lhs, out);
    FlattenJoin(m, n.rhs, out);
    return;
  }
  out.push_back(id);
}

IrId FoldJoinLeftDeep(IrModule& m, const std::vector<IrId>& factors,
                      PassStats& stats) {
  IrId acc = factors.front();
  for (size_t i = 1; i < factors.size(); ++i) {
    acc = RebuildJoin(m, acc, factors[i], stats);
  }
  return acc;
}

class PrefixFactorPass final : public Pass {
 public:
  std::string_view name() const override { return "prefix-factor"; }

  IrId Run(IrModule& m, IrId root, const PassContext&,
           PassStats& stats) const override {
    return RewriteBottomUp(
        m, root, stats, [&](IrId id, const IrNode&) { return id; },
        [&](IrId, const IrNode& n, IrId l, IrId r) {
          if (n.kind != IrKind::kUnion) return Reconstruct(m, n, l, r, stats);
          // Children are already rewritten, so their union spines are fully
          // factored; flatten this spine and factor across ALL operands.
          std::vector<IrId> operands;
          FlattenUnion(m, RebuildUnion(m, l, r, stats), operands);
          return FactorOperands(m, operands, stats);
        });
  }

 private:
  // Groups the union's operands by their LEADING join factor (leftmost
  // non-join node of the join spine) and rewrites each group of two or more
  // as factor ⋈◦ (tails ∪ …) — left-distributivity, exact because ⋈◦
  // distributes over ∪ and PathSet is canonical (order-insensitive).
  // Recursing on the grouped tails factors shared SECOND factors too, so
  // A⋈B⋈X ∪ A⋈B⋈Y becomes A⋈(B⋈(X ∪ Y)). Hash-consing makes "same
  // factor" a uint32 compare. Non-join operands and singleton groups pass
  // through untouched (no re-association churn).
  static IrId FactorOperands(IrModule& m, const std::vector<IrId>& operands,
                             PassStats& stats) {
    if (operands.size() == 1) return operands.front();

    struct Group {
      IrId leader = kNoIr;          // kNoIr: not a join, never merged.
      IrId original = kNoIr;        // The untouched operand.
      std::vector<IrId> tails;      // Join remainders under `leader`.
    };
    std::vector<Group> groups;  // First-occurrence order.
    for (IrId op : operands) {
      const IrNode& n = m.node(op);
      if (n.kind != IrKind::kJoin) {
        groups.push_back(Group{kNoIr, op, {}});
        continue;
      }
      std::vector<IrId> factors;
      FlattenJoin(m, op, factors);
      const IrId leader = factors.front();
      const std::vector<IrId> rest(factors.begin() + 1, factors.end());
      const IrId tail = FoldJoinLeftDeep(m, rest, stats);
      bool merged = false;
      for (Group& g : groups) {
        if (g.leader == leader) {
          g.tails.push_back(tail);
          merged = true;
          break;
        }
      }
      if (!merged) groups.push_back(Group{leader, op, {tail}});
    }

    IrId result = kNoIr;
    for (const Group& g : groups) {
      IrId term;
      if (g.leader == kNoIr || g.tails.size() == 1) {
        term = g.original;  // Nothing shared: keep the operand as written.
      } else {
        stats.prefixes_factored += g.tails.size() - 1;
        ++stats.rewrites;
        term = RebuildJoin(m, g.leader, FactorOperands(m, g.tails, stats),
                           stats);
      }
      result = result == kNoIr ? term : RebuildUnion(m, result, term, stats);
    }
    return result;
  }
};

// --- join-reorder ---------------------------------------------------------

class JoinReorderPass final : public Pass {
 public:
  std::string_view name() const override { return "join-reorder"; }

  IrId Run(IrModule& m, IrId root, const PassContext&,
           PassStats& stats) const override {
    return RewriteBottomUp(
        m, root, stats, [&](IrId id, const IrNode&) { return id; },
        [&](IrId id, const IrNode& n, IrId l, IrId r) {
          if (n.kind != IrKind::kJoin) return Reconstruct(m, n, l, r, stats);
          // Canonical left-deep re-association (⋈◦ is associative, so this
          // is exact pathwise). The canonical shape is what ExtractAtomChain
          // flattens and the cost model + chain planner give a DIRECTION at
          // emit time — the reorder itself never permutes operands.
          const IrId joined = RebuildJoin(m, l, r, stats);
          if (!Is(m, joined, IrKind::kJoin)) return joined;
          std::vector<IrId> factors;
          FlattenJoin(m, joined, factors);
          const IrId left_deep = FoldJoinLeftDeep(m, factors, stats);
          if (left_deep != id) {
            ++stats.joins_reordered;
            ++stats.rewrites;
          }
          return left_deep;
        });
  }
};

// --- dfa-minimize ---------------------------------------------------------

// Subtrees larger than this skip the subset construction (it is exponential
// in the worst case; the expressions the suites and benches compile sit far
// below the cap).
constexpr uint32_t kDfaNodeCap = 32;

bool NoReachableAcceptingState(const MinimizedDfa& dfa) {
  std::vector<bool> seen(dfa.num_states(), false);
  std::vector<uint32_t> stack = {dfa.start()};
  seen[dfa.start()] = true;
  while (!stack.empty()) {
    const uint32_t s = stack.back();
    stack.pop_back();
    if (dfa.accepting(s)) return false;
    for (uint32_t c = 0; c < dfa.num_classes(); ++c) {
      const uint32_t t = dfa.Step(s, c);
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  return true;
}

class DfaMinimizePass final : public Pass {
 public:
  std::string_view name() const override { return "dfa-minimize"; }

  IrId Run(IrModule& m, IrId root, const PassContext& ctx,
           PassStats& stats) const override {
    if (ctx.universe == nullptr) return root;  // Precondition missing.
    const EdgeUniverse& universe = *ctx.universe;
    return RewriteBottomUp(
        m, root, stats, [&](IrId id, const IrNode&) { return id; },
        [&](IrId, const IrNode& n, IrId l, IrId r) {
          const IrId rebuilt = Reconstruct(m, n, l, r, stats);
          return TryProveEmpty(m, rebuilt, universe, stats);
        });
  }

 private:
  // Minimizes the subtree's DFA over the universe's edge classes; if no
  // accepting state is reachable, L(subtree) ∩ E* = ∅ — and since bounded
  // evaluation only ever yields paths in the unbounded language whose
  // edges all come from E, the governed result is empty too, exactly.
  // Guards: product seams are outside the DFA construction's domain;
  // literals may hold edges outside E (the DFA argument says nothing about
  // those); nullable subtrees are trivially non-empty; ∅ is already done.
  // Single constrained atoms ARE eligible: [i, α, {j}] can be empty even
  // when the cardinality index (which only sees one position at a time)
  // reports a positive upper bound — this pass is what catches those.
  static IrId TryProveEmpty(IrModule& m, IrId id, const EdgeUniverse& universe,
                            PassStats& stats) {
    const IrNode& n = m.node(id);
    if (n.kind == IrKind::kEmpty || n.size > kDfaNodeCap) return id;
    if (!n.product_free || !n.literal_free) return id;
    if (n.nullable) return id;  // ε in the language: trivially non-empty.
    const PathExprPtr expr = m.ToExpr(id);
    const Result<MinimizedDfa> dfa = BuildMinimizedDfa(*expr, universe);
    if (!dfa.ok()) return id;
    if (!NoReachableAcceptingState(*dfa)) return id;
    ++stats.rewrites;
    ++stats.dead_branches;
    return m.Empty();
  }
};

const SimplifyPass kSimplifyPass;
const DeadBranchPass kDeadBranchPass;
const FilterPushdownPass kFilterPushdownPass;
const PrefixFactorPass kPrefixFactorPass;
const JoinReorderPass kJoinReorderPass;
const DfaMinimizePass kDfaMinimizePass;

}  // namespace

const std::vector<const Pass*>& DefaultPassPipeline() {
  static const std::vector<const Pass*> pipeline = {
      &kSimplifyPass,     &kDeadBranchPass,  &kFilterPushdownPass,
      &kPrefixFactorPass, &kJoinReorderPass, &kDfaMinimizePass,
  };
  return pipeline;
}

const Pass* FindPass(std::string_view name) {
  for (const Pass* pass : DefaultPassPipeline()) {
    if (pass->name() == name) return pass;
  }
  return nullptr;
}

IrId RunPipeline(IrModule& module, IrId root,
                 const std::vector<const Pass*>& passes,
                 const PassContext& ctx, std::vector<PassTraceEntry>* trace,
                 obs::ObsRegistry* registry) {
  for (const Pass* pass : passes) {
    PassStats stats;
    const size_t size_before = module.node(root).size;
    const auto start = std::chrono::steady_clock::now();
    const IrId next = pass->Run(module, root, ctx, stats);
    const auto end = std::chrono::steady_clock::now();
    const size_t size_after = module.node(next).size;
    if (trace != nullptr) {
      trace->push_back(PassTraceEntry{std::string(pass->name()), size_before,
                                      size_after, stats});
    }
    if (registry != nullptr) {
      registry->Add(obs::Metric::kCompilerPassRuns, 1);
      registry->Add(obs::Metric::kCompilerRewrites, stats.rewrites);
      registry->Add(obs::Metric::kCompilerDeadBranches, stats.dead_branches);
      registry->Add(obs::Metric::kCompilerFiltersPushed, stats.filters_pushed);
      registry->Add(obs::Metric::kCompilerPrefixesFactored,
                    stats.prefixes_factored);
      registry->Add(obs::Metric::kCompilerJoinsReordered,
                    stats.joins_reordered);
      registry->Record(
          obs::Hist::kCompilerPassNanos,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                  .count()));
    }
    root = next;
  }
  return root;
}

}  // namespace mrpa
