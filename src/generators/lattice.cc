#include "generators/generators.h"

namespace mrpa {

Result<MultiRelationalGraph> GenerateLattice(const LatticeParams& params) {
  if (params.width == 0 || params.height == 0) {
    return Status::InvalidArgument("lattice dimensions must be positive");
  }

  MultiGraphBuilder builder;
  const LabelId east = builder.AddLabel("east");
  const LabelId south = builder.AddLabel("south");
  builder.ReserveVertices(params.width * params.height);

  auto vertex_at = [&](uint32_t x, uint32_t y) -> VertexId {
    return y * params.width + x;
  };

  for (uint32_t y = 0; y < params.height; ++y) {
    for (uint32_t x = 0; x < params.width; ++x) {
      const VertexId v = vertex_at(x, y);
      if (x + 1 < params.width) {
        builder.AddEdge(v, east, vertex_at(x + 1, y));
      } else if (params.wrap && params.width > 1) {
        builder.AddEdge(v, east, vertex_at(0, y));
      }
      if (y + 1 < params.height) {
        builder.AddEdge(v, south, vertex_at(x, y + 1));
      } else if (params.wrap && params.height > 1) {
        builder.AddEdge(v, south, vertex_at(x, 0));
      }
    }
  }
  return builder.Build();
}

}  // namespace mrpa
