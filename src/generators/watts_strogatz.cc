#include "generators/generators.h"
#include "util/random.h"

namespace mrpa {

Result<MultiRelationalGraph> GenerateWattsStrogatz(
    const WattsStrogatzParams& params) {
  if (params.num_vertices < 3) {
    return Status::InvalidArgument("need at least 3 vertices");
  }
  if (params.num_labels == 0) {
    return Status::InvalidArgument("num_labels must be positive");
  }
  if (params.neighbors_each_side == 0 ||
      params.neighbors_each_side * 2 >= params.num_vertices) {
    return Status::InvalidArgument(
        "neighbors_each_side must be in [1, (|V|-1)/2]");
  }
  if (params.rewire_prob < 0.0 || params.rewire_prob > 1.0) {
    return Status::InvalidArgument("rewire_prob must lie in [0, 1]");
  }

  Rng rng(params.seed);
  MultiGraphBuilder builder;
  builder.ReserveVertices(params.num_vertices);
  builder.ReserveLabels(params.num_labels);

  const uint32_t n = params.num_vertices;
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t k = 1; k <= params.neighbors_each_side; ++k) {
      VertexId head = (v + k) % n;
      if (rng.Chance(params.rewire_prob)) {
        // Rewire: uniform non-self target (may duplicate an existing edge;
        // the builder's set semantics collapse those, as in the standard
        // simple-graph WS construction).
        do {
          head = static_cast<VertexId>(rng.Below(n));
        } while (head == v);
      }
      builder.AddEdge(v, static_cast<LabelId>(rng.Below(params.num_labels)),
                      head);
    }
  }
  return builder.Build();
}

}  // namespace mrpa
