#include "generators/generators.h"
#include "util/random.h"

namespace mrpa {

Result<MultiRelationalGraph> GenerateBarabasiAlbert(
    const BarabasiAlbertParams& params) {
  if (params.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (params.num_labels == 0) {
    return Status::InvalidArgument("num_labels must be positive");
  }
  if (params.edges_per_vertex == 0) {
    return Status::InvalidArgument("edges_per_vertex must be positive");
  }

  Rng rng(params.seed);
  MultiGraphBuilder builder;
  builder.ReserveVertices(params.num_vertices);
  builder.ReserveLabels(params.num_labels);

  // `attachment` holds one entry per (in-degree + 1) unit of attachment
  // mass, so a uniform draw from it is a preferential draw over vertices.
  std::vector<VertexId> attachment;
  attachment.reserve(static_cast<size_t>(params.num_vertices) *
                     (params.edges_per_vertex + 1));
  attachment.push_back(0);  // Seed vertex 0 with baseline mass.

  for (VertexId v = 1; v < params.num_vertices; ++v) {
    const uint32_t fanout =
        std::min<uint32_t>(params.edges_per_vertex, v);
    for (uint32_t k = 0; k < fanout; ++k) {
      VertexId target =
          attachment[static_cast<size_t>(rng.Below(attachment.size()))];
      if (target == v) {
        target = static_cast<VertexId>(rng.Below(v));  // No self-loops.
      }
      LabelId label = static_cast<LabelId>(rng.Below(params.num_labels));
      builder.AddEdge(v, label, target);
      attachment.push_back(target);  // Target gained in-degree.
    }
    attachment.push_back(v);  // Baseline mass for the newcomer.
  }
  return builder.Build();
}

}  // namespace mrpa
