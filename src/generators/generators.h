// Synthetic multi-relational graph generators.
//
// The paper has no datasets (it is formal), so every experiment runs on
// deterministic synthetic graphs whose shape parameters (|V|, |Ω|, density,
// degree distribution) are what the algebra's cost actually depends on.
// All generators take an explicit seed; identical (parameters, seed) pairs
// produce identical graphs on every platform (see util/random.h).

#ifndef MRPA_GENERATORS_GENERATORS_H_
#define MRPA_GENERATORS_GENERATORS_H_

#include <cstdint>

#include "graph/multi_graph.h"
#include "util/status.h"

namespace mrpa {

// G(n, m, |Ω|): multi-relational Erdős–Rényi. Draws `num_edges` distinct
// (tail, label, head) triples uniformly from V × Ω × V. Self-loops allowed
// unless `allow_self_loops` is false.
struct ErdosRenyiParams {
  uint32_t num_vertices = 0;
  uint32_t num_labels = 1;
  size_t num_edges = 0;
  bool allow_self_loops = true;
  uint64_t seed = 1;
};
Result<MultiRelationalGraph> GenerateErdosRenyi(const ErdosRenyiParams& params);

// Multi-relational Barabási–Albert preferential attachment: vertices arrive
// one at a time and attach `edges_per_vertex` out-edges to existing vertices
// with probability proportional to (in-degree + 1); each new edge draws a
// uniform label. Produces the heavy-tailed in-degree distributions real
// multi-relational data (citation, social) exhibits.
struct BarabasiAlbertParams {
  uint32_t num_vertices = 0;
  uint32_t num_labels = 1;
  uint32_t edges_per_vertex = 2;
  uint64_t seed = 1;
};
Result<MultiRelationalGraph> GenerateBarabasiAlbert(
    const BarabasiAlbertParams& params);

// A `width` × `height` directed lattice with a distinct label per direction
// ("east" = label 0, "south" = label 1), optionally wrapping (torus).
// Useful for experiments needing predictable path counts: the number of
// joint east/south paths between lattice corners is a binomial coefficient.
struct LatticeParams {
  uint32_t width = 0;
  uint32_t height = 0;
  bool wrap = false;
};
Result<MultiRelationalGraph> GenerateLattice(const LatticeParams& params);

// A schema-shaped social network in the style of the property-graph
// datasets the paper's intro motivates (people know people, people create
// and like items):
//   knows   : person -> person  (preferential attachment)
//   created : person -> item    (each item has exactly one creator)
//   likes   : person -> item    (uniform, num_likes total)
// Labels: 0 = knows, 1 = created, 2 = likes (named in the dictionary).
struct SocialNetworkParams {
  uint32_t num_people = 0;
  uint32_t num_items = 0;
  uint32_t knows_per_person = 3;
  size_t num_likes = 0;
  uint64_t seed = 1;
};
Result<MultiRelationalGraph> GenerateSocialNetwork(
    const SocialNetworkParams& params);

// Well-known label ids for GenerateSocialNetwork outputs.
inline constexpr LabelId kSocialKnows = 0;
inline constexpr LabelId kSocialCreated = 1;
inline constexpr LabelId kSocialLikes = 2;

// Multi-relational Watts–Strogatz small world: a directed ring lattice
// (each vertex points to its next `neighbors_each_side` ring successors)
// with each edge's head rewired uniformly with probability `rewire_prob`;
// labels drawn uniformly. Produces the high-clustering / short-path regime
// between the lattice and ER extremes.
struct WattsStrogatzParams {
  uint32_t num_vertices = 0;
  uint32_t num_labels = 1;
  uint32_t neighbors_each_side = 2;
  double rewire_prob = 0.1;
  uint64_t seed = 1;
};
Result<MultiRelationalGraph> GenerateWattsStrogatz(
    const WattsStrogatzParams& params);

}  // namespace mrpa

#endif  // MRPA_GENERATORS_GENERATORS_H_
