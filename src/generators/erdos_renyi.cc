#include <unordered_set>

#include "generators/generators.h"
#include "util/hash.h"
#include "util/random.h"

namespace mrpa {

Result<MultiRelationalGraph> GenerateErdosRenyi(
    const ErdosRenyiParams& params) {
  if (params.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (params.num_labels == 0) {
    return Status::InvalidArgument("num_labels must be positive");
  }
  const uint64_t n = params.num_vertices;
  const uint64_t loop_slots = params.allow_self_loops ? 0 : n;
  const uint64_t capacity =
      (n * n - loop_slots) * static_cast<uint64_t>(params.num_labels);
  if (params.num_edges > capacity) {
    return Status::InvalidArgument(
        "requested " + std::to_string(params.num_edges) +
        " distinct edges but V×Ω×V only holds " + std::to_string(capacity));
  }

  Rng rng(params.seed);
  MultiGraphBuilder builder;
  builder.ReserveVertices(params.num_vertices);
  builder.ReserveLabels(params.num_labels);

  // Rejection sampling of distinct triples. Dense requests (> 1/2 of the
  // space) would degenerate, so fall back to sampling the complement size
  // via shuffle when the request is very dense.
  if (params.num_edges * 2 <= capacity) {
    std::unordered_set<uint64_t> seen;
    seen.reserve(params.num_edges * 2);
    while (seen.size() < params.num_edges) {
      VertexId tail = static_cast<VertexId>(rng.Below(n));
      VertexId head = static_cast<VertexId>(rng.Below(n));
      if (!params.allow_self_loops && tail == head) continue;
      LabelId label = static_cast<LabelId>(rng.Below(params.num_labels));
      uint64_t key = (static_cast<uint64_t>(tail) * n + head) *
                         params.num_labels +
                     label;
      if (seen.insert(key).second) builder.AddEdge(tail, label, head);
    }
  } else {
    // Enumerate the full space and sample without replacement.
    std::vector<uint64_t> keys;
    keys.reserve(capacity);
    for (uint64_t t = 0; t < n; ++t) {
      for (uint64_t h = 0; h < n; ++h) {
        if (!params.allow_self_loops && t == h) continue;
        for (uint64_t l = 0; l < params.num_labels; ++l) {
          keys.push_back((t * n + h) * params.num_labels + l);
        }
      }
    }
    rng.Shuffle(keys);
    for (size_t i = 0; i < params.num_edges; ++i) {
      uint64_t key = keys[i];
      LabelId label = static_cast<LabelId>(key % params.num_labels);
      uint64_t pair = key / params.num_labels;
      builder.AddEdge(static_cast<VertexId>(pair / n), label,
                      static_cast<VertexId>(pair % n));
    }
  }
  return builder.Build();
}

}  // namespace mrpa
