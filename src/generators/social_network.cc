#include <unordered_set>

#include "generators/generators.h"
#include "util/random.h"

namespace mrpa {

Result<MultiRelationalGraph> GenerateSocialNetwork(
    const SocialNetworkParams& params) {
  if (params.num_people == 0) {
    return Status::InvalidArgument("num_people must be positive");
  }
  if (params.num_items == 0) {
    return Status::InvalidArgument("num_items must be positive");
  }

  Rng rng(params.seed);
  MultiGraphBuilder builder;
  // Fix the label ids promised in generators.h.
  const LabelId knows = builder.AddLabel("knows");
  const LabelId created = builder.AddLabel("created");
  const LabelId likes = builder.AddLabel("likes");

  // People occupy ids [0, num_people); items [num_people, num_people+items).
  const uint32_t total = params.num_people + params.num_items;
  builder.ReserveVertices(total);
  auto item_vertex = [&](uint32_t item) -> VertexId {
    return params.num_people + item;
  };

  // knows: preferential attachment over people (heavy-tailed popularity).
  if (params.num_people > 1) {
    std::vector<VertexId> attachment = {0};
    for (VertexId p = 1; p < params.num_people; ++p) {
      const uint32_t fanout = std::min<uint32_t>(params.knows_per_person, p);
      for (uint32_t k = 0; k < fanout; ++k) {
        VertexId target =
            attachment[static_cast<size_t>(rng.Below(attachment.size()))];
        if (target == p) target = static_cast<VertexId>(rng.Below(p));
        builder.AddEdge(p, knows, target);
        attachment.push_back(target);
      }
      attachment.push_back(p);
    }
  }

  // created: every item gets exactly one uniformly drawn creator.
  for (uint32_t item = 0; item < params.num_items; ++item) {
    VertexId creator = static_cast<VertexId>(rng.Below(params.num_people));
    builder.AddEdge(creator, created, item_vertex(item));
  }

  // likes: num_likes distinct (person, item) pairs, uniform.
  const uint64_t like_capacity =
      static_cast<uint64_t>(params.num_people) * params.num_items;
  const size_t target_likes = static_cast<size_t>(
      std::min<uint64_t>(params.num_likes, like_capacity));
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_likes * 2);
  while (seen.size() < target_likes) {
    uint64_t person = rng.Below(params.num_people);
    uint64_t item = rng.Below(params.num_items);
    if (seen.insert(person * params.num_items + item).second) {
      builder.AddEdge(static_cast<VertexId>(person), likes,
                      item_vertex(static_cast<uint32_t>(item)));
    }
  }

  return builder.Build();
}

}  // namespace mrpa
