// Traversal observability: counters, histograms, and trace spans.
//
// PRs 1–3 gave the engine governance, a parallel fold, and a prefix-sharing
// arena, but left the stack a black box: ExecStats is a flat struct with no
// per-level, per-shard, or per-operator breakdown, and no machine-readable
// export. ObsRegistry is the one sink all engines report into:
//
//   * Counters — monotone u64 metrics from a fixed, compile-time enum
//     (Metric). Storage is a cache-line-padded slab of relaxed atomics per
//     shard slot, so concurrent shard workers never contend on a line; a
//     counter's value is the sum over slots, and the per-slot values are
//     the per-shard breakdown (the conservation tests assert
//     total == Σ slots and paths_emitted == |result|).
//
//   * Histograms — log2-bucketed u64 distributions (Hist enum), same
//     per-slot slab design, plus count/sum/min/max.
//
//   * Trace spans — a tree per evaluation: RAII TraceSpan records
//     (name, parent, level, shard, start_ns, end_ns, note). Engines open a
//     root span per operator (traverse, traverse.parallel, chain.backward,
//     recognizer.batch, generator.generate) and child spans per level and
//     per shard, so a deadline or byte-budget trip is attributable to the
//     exact level/shard/operator that burned it (ExecContext annotates the
//     innermost open span on every trip). Span storage is bounded
//     (kMaxSpans); overflow drops spans, never blocks, and is counted.
//
// Cost contract: every hook in the engines is gated on the registry
// pointer threaded through ExecContext — a traversal without a registry
// attached executes the hot loops unchanged (the hooks sit at level and
// operator boundaries, never inside the per-edge loops), so disabled-mode
// overhead is below the E15 noise floor (EXPERIMENTS.md E18). Enabled mode
// costs bulk counter adds at operator exit plus one span per
// level/shard/operator.
//
// The registry is zero-dependency (stdlib only). Thread safety: Add/Record
// are lock-free relaxed atomics, safe from any thread; Begin/End/Annotate
// span take a mutex (span rate is per-level, not per-edge); Value/Snapshot/
// ToJson are safe concurrently with writers but see a torn-in-time view —
// quiesce writers for exact readings (every test does).

#ifndef MRPA_OBS_OBS_H_
#define MRPA_OBS_OBS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mrpa::obs {

// The well-known counters. Fixed at compile time so hot hooks are an array
// index, not a name lookup; names (MetricName) drive the JSON export.
enum class Metric : uint32_t {
  // Mirrors of the ExecContext accounting, added as deltas at operator
  // exit (AddExecStatsDelta in util/exec_context.h). Identical between
  // Traverse and TraverseParallel by the PR 2 replay guarantee.
  kExecStepsExpanded = 0,
  kExecPathsYielded,
  kExecBytesCharged,
  // Where governance trips landed, by kind. Incremented once per context
  // trip (the sticky first trip only), from the cold paths.
  kExecTripsStepBudget,
  kExecTripsPathBudget,
  kExecTripsByteBudget,
  kExecTripsDeadline,
  kExecTripsCancelled,
  kExecTripsFault,
  // The §III fold (sequential and parallel replay — equal by design).
  kTraversalRuns,
  kTraversalSeedEdges,
  kTraversalLevels,
  kTraversalPathsEmitted,
  // Parallel-engine speculation, attributed per shard slot. NOT mirrored by
  // the sequential fold (speculation has no sequential counterpart) and
  // excluded from the sequential≡parallel counter identity.
  kParallelShards,
  kParallelSpeculativeNodes,
  // PathArena churn. nodes_allocated counts the nodes the governed
  // evaluation paid for (bytes_charged / PathArena::kNodeBytes — the
  // conservation law); materializations counts boundary path copies.
  kArenaNodesAllocated,
  kArenaMaterializations,
  kArenaTruncatedNodes,
  // The DFS iterator.
  kIteratorPathsYielded,
  kIteratorFramesFilled,
  // The chain planner's decisions.
  kPlannerPlansForward,
  kPlannerPlansBackward,
  kPlannerFallbacks,
  // Governed batch recognition.
  kRecognizerBatchCandidates,
  kRecognizerBatchAccepted,
  // Regular path generation.
  kGeneratorRounds,
  kGeneratorPathsEmitted,
  // Snapshot storage (src/storage/): loads that completed validation,
  // bytes made addressable (owned buffer or mmap), sections whose checksum
  // passed, checksum mismatches caught (counted even when the load fails),
  // and total validation wall time.
  kStorageSnapshotsLoaded,
  kStorageBytesMapped,
  kStorageSectionsValidated,
  kStorageChecksumFailures,
  kStorageLoadNanos,
  // The serving substrate (src/service/): admission outcomes (admitted =
  // granted a slot; rejected = terminal refusals — unknown tenant or a
  // deadline that cannot fit the estimated cost; shed = overload refusals —
  // token bucket, queue bounds, or priority eviction), retry attempts
  // beyond each call's first try, snapshot hot-swaps published, retired
  // images reclaimed at epoch quiescence, and queries that ran to a result
  // (truncated included).
  kServiceAdmitted,
  kServiceRejected,
  kServiceShed,
  kServiceRetries,
  kServiceHotSwaps,
  kServiceSnapshotsReclaimed,
  kServiceQueriesExecuted,
  // The query compiler (src/compiler/): queries compiled, optimizer pass
  // executions, IR nodes rewritten by any pass, and the per-pass rewrite
  // breakdown — union/join branches proven dead (zero-cardinality atoms or
  // DFA-empty subtrees), σ-filters pushed into adjacent atom scans at join
  // seams, common join prefixes factored out of unions, and join chains
  // re-associated / direction-chosen by the cost model.
  kCompilerQueriesCompiled,
  kCompilerPassRuns,
  kCompilerRewrites,
  kCompilerDeadBranches,
  kCompilerFiltersPushed,
  kCompilerPrefixesFactored,
  kCompilerJoinsReordered,
  // Dense-frontier strategy telemetry (DESIGN.md "Dense-frontier
  // execution"): expansion levels run dense vs. sparse, and uint64 bitmap
  // words the dense machinery built or scanned. Strategy-dependent — a
  // parallel run's per-shard decisions legitimately differ from the
  // sequential run's — so these sit outside the sequential counter-identity
  // set, like parallel.*.
  kFrontierDenseLevels,
  kFrontierSparseLevels,
  kFrontierWordsScanned,
  // The live-graph delta layer (src/delta/): insertion and tombstone
  // verdicts applied to the overlay, active runs sealed into immutable
  // generations, merge views materialized (passthrough views included),
  // edges emitted by view merges, and base+delta compactions that published
  // (or, registry-less, validated) a fresh image.
  kDeltaInserts,
  kDeltaTombstones,
  kDeltaGenerationsSealed,
  kDeltaViewsBuilt,
  kDeltaEdgesMerged,
  kDeltaCompactions,
  // The network front door (src/net/): connections the listener accepted
  // vs refused (draining, or at the connection cap), frames decoded off /
  // written onto sockets, hostile or malformed byte streams that closed a
  // connection fail-closed, requests dispatched through QueryService, and
  // read-side pauses where per-connection backpressure stopped the parser
  // until the client drained its responses.
  kNetConnectionsAccepted,
  kNetConnectionsRefused,
  kNetFramesRead,
  kNetFramesWritten,
  kNetProtocolErrors,
  kNetRequestsDispatched,
  kNetBackpressurePauses,
  kCount
};

enum class Hist : uint32_t {
  // Input frontier width per expansion level of the §III fold.
  kTraversalLevelWidth = 0,
  // Peak node count of each arena flushed (per evaluation / per shard).
  kArenaPeakNodes,
  // Edge length of each candidate judged by governed batch recognition.
  kRecognizerPathLength,
  // Accepted-path count per generator round.
  kGeneratorRoundWidth,
  // Serving substrate: end-to-end latency of each executed query (admission
  // wait + evaluation, nanoseconds) — the admission controller reads this
  // back as its cost estimate; tenant queue depth sampled at each enqueue;
  // retired-but-unreclaimed image count sampled at each hot-swap (epoch
  // lag); nanoseconds a request waited for an in-flight slot.
  kServiceExecNanos,
  kServiceQueueDepth,
  kServiceEpochLag,
  kServiceAdmitWaitNanos,
  // Wall time of each optimizer pass execution (nanoseconds).
  kCompilerPassNanos,
  // Wall time of each dense-level decision probe + allow-set build
  // (nanoseconds): the bitmap/popcount/filter kernel work that sits OFF the
  // guarded expansion loop. Sequential fold only — shard workers keep their
  // observability thin.
  kFrontierKernelNanos,
  // Wall time of each delta merge-view materialization and of each full
  // compaction (seal + merge + serialize + validate + swap), nanoseconds.
  kDeltaViewBuildNanos,
  kDeltaCompactNanos,
  // Network front door: size of every frame moved across a socket (read and
  // written both recorded), and server-side latency of each dispatched
  // request (frame decoded → response frame queued, nanoseconds).
  kNetFrameBytes,
  kNetRequestNanos,
  kCount
};

// Stable metric names for export, in enum order ("exec.steps_expanded", …).
std::string_view MetricName(Metric m);
std::string_view HistName(Hist h);

using SpanId = uint32_t;
inline constexpr SpanId kNoSpan = std::numeric_limits<SpanId>::max();

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  int64_t level = -1;  // -1 = not applicable.
  int64_t shard = -1;  // -1 = not applicable.
  // Nanoseconds since the registry epoch. end_ns is -1 while the span is
  // open; closed spans satisfy start_ns <= end_ns, and children nest
  // inside their parent (the invariant suite asserts both).
  int64_t start_ns = 0;
  int64_t end_ns = -1;
  // Free-form annotation, e.g. the Status of a governance trip that fired
  // inside the span.
  std::string note;
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0.
  uint64_t max = 0;
  // buckets[i] counts recorded values v with BucketIndex(v) == i, i.e.
  // v == 0 for bucket 0 and 2^(i-1) <= v < 2^i for bucket i >= 1. The
  // inclusive upper bound of bucket i is BucketUpperBound(i).
  std::array<uint64_t, 40> buckets{};
};

class ObsRegistry {
 public:
  // Shard attribution slots. Shard indices hash in with `shard % kSlots`,
  // so sums over slots stay exact for any shard count; 16 slots cover the
  // widest pool the suites run (8 threads × contiguous shard ids) without
  // aliasing in practice.
  static constexpr size_t kShardSlots = 16;
  static constexpr size_t kNumBuckets = 40;
  // Hard bound on retained spans: overflow increments spans_dropped() and
  // returns kNoSpan rather than growing without limit (a benchmark loop
  // attaches one registry across thousands of iterations).
  static constexpr size_t kMaxSpans = 1u << 16;

  ObsRegistry();

  // One sink per evaluation scope; the atomics make it immovable.
  ObsRegistry(const ObsRegistry&) = delete;
  ObsRegistry& operator=(const ObsRegistry&) = delete;

  static constexpr size_t BucketIndex(uint64_t v) {
    return v == 0 ? 0
                  : std::min<size_t>(kNumBuckets - 1,
                                     static_cast<size_t>(std::bit_width(v)));
  }
  static constexpr uint64_t BucketUpperBound(size_t i) {
    return i == 0 ? 0
           : i >= kNumBuckets - 1
               ? std::numeric_limits<uint64_t>::max()
               : (uint64_t{1} << i) - 1;
  }

  // Lock-free; safe from any thread. `shard` selects the attribution slot.
  void Add(Metric m, uint64_t n, size_t shard = 0) {
    counters_[shard % kShardSlots]
        .v[static_cast<size_t>(m)]
        .fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value(Metric m) const;
  uint64_t ValueForSlot(Metric m, size_t slot) const;

  void Record(Hist h, uint64_t value, size_t shard = 0);
  HistogramSnapshot SnapshotHistogram(Hist h) const;

  // Span lifecycle. BeginSpan returns kNoSpan when the budget is exhausted;
  // EndSpan/AnnotateSpan ignore kNoSpan, so callers never branch.
  SpanId BeginSpan(std::string_view name, SpanId parent = kNoSpan,
                   int64_t level = -1, int64_t shard = -1);
  void EndSpan(SpanId id);
  void AnnotateSpan(SpanId id, std::string_view note);

  std::vector<SpanRecord> Spans() const;
  uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }

  // The machine-readable export. Schema (locked by tests/obs_json_test.cc):
  //   { "counters":   [ {"name": str, "total": int, "shards": [int × 16]} ],
  //     "histograms": [ {"name": str, "count": int, "sum": int, "min": int,
  //                      "max": int,
  //                      "buckets": [ {"le": int, "count": int} ]} ],
  //     "spans":      [ {"id": int, "parent": int, "name": str,
  //                      "level": int, "shard": int, "start_ns": int,
  //                      "end_ns": int, "note": str} ],
  //     "spans_dropped": int }
  // Every Metric/Hist appears (zeros included) in enum-name-sorted order;
  // histogram buckets list only non-empty buckets; all strings are escaped
  // through obs/json_writer.h.
  std::string ToJson() const;

  // Zeroes every counter and histogram and clears the span log. Callers
  // must quiesce writers first.
  void Reset();

 private:
  static constexpr size_t kNumMetrics = static_cast<size_t>(Metric::kCount);
  static constexpr size_t kNumHists = static_cast<size_t>(Hist::kCount);

  // One slab per shard slot, aligned to its own cache line(s): workers for
  // different shards write disjoint slabs, so the hot fetch_add never
  // false-shares with another thread's slab.
  struct alignas(64) CounterSlab {
    std::array<std::atomic<uint64_t>, kNumMetrics> v{};
  };
  struct HistCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{std::numeric_limits<uint64_t>::max()};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  struct alignas(64) HistSlab {
    std::array<HistCell, kNumHists> h;
  };

  std::array<CounterSlab, kShardSlots> counters_;
  std::array<HistSlab, kShardSlots> hists_;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex span_mu_;
  std::vector<SpanRecord> spans_;
  std::atomic<uint64_t> spans_dropped_{0};
};

// RAII span: begins on construction (inert when `registry` is null — the
// universal disabled-mode gate), ends on destruction or explicit End().
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(ObsRegistry* registry, std::string_view name,
            SpanId parent = kNoSpan, int64_t level = -1, int64_t shard = -1)
      : registry_(registry),
        id_(registry != nullptr ? registry->BeginSpan(name, parent, level,
                                                      shard)
                                : kNoSpan) {}
  ~TraceSpan() { End(); }

  TraceSpan(TraceSpan&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
    other.id_ = kNoSpan;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  SpanId id() const { return id_; }
  explicit operator bool() const { return registry_ != nullptr; }

  void End() {
    if (registry_ != nullptr) {
      registry_->EndSpan(id_);
      registry_ = nullptr;
      id_ = kNoSpan;
    }
  }

 private:
  ObsRegistry* registry_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace mrpa::obs

#endif  // MRPA_OBS_OBS_H_
