// Minimal JSON emission helpers for the observability subsystem.
//
// The registry export (ObsRegistry::ToJson) and the bench trace files
// (bench/bench_common.h, --trace) hand-roll their JSON — the repo takes no
// serialization dependency — so every string that reaches an output file
// MUST pass through JsonEscape: span names and notes are arbitrary text
// (tests deliberately inject quotes, backslashes, and control characters),
// and benchmark labels contain user-controlled argument strings. The
// golden-schema test (tests/obs_json_test.cc) parses the emitted documents
// with a strict reader, so unescaped output fails CI rather than a
// downstream dashboard.

#ifndef MRPA_OBS_JSON_WRITER_H_
#define MRPA_OBS_JSON_WRITER_H_

#include <string>
#include <string_view>

namespace mrpa::obs {

// Appends the JSON escaping of `s` (without surrounding quotes) to `out`.
// Escapes the two mandatory characters (`"` and `\`), the common control
// short forms (\b \f \n \r \t), and every other byte < 0x20 as \u00XX.
// Bytes >= 0x80 pass through untouched: the writer treats input as UTF-8
// and JSON permits raw UTF-8 in strings.
void AppendJsonEscaped(std::string& out, std::string_view s);

// `s` as a complete JSON string token, quotes included.
std::string JsonQuote(std::string_view s);

}  // namespace mrpa::obs

#endif  // MRPA_OBS_JSON_WRITER_H_
