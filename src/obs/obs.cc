#include "obs/obs.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace mrpa::obs {

namespace {

constexpr std::string_view kMetricNames[] = {
    "exec.steps_expanded",
    "exec.paths_yielded",
    "exec.bytes_charged",
    "exec.trips.step_budget",
    "exec.trips.path_budget",
    "exec.trips.byte_budget",
    "exec.trips.deadline",
    "exec.trips.cancelled",
    "exec.trips.fault",
    "traversal.runs",
    "traversal.seed_edges",
    "traversal.levels",
    "traversal.paths_emitted",
    "parallel.shards",
    "parallel.speculative_nodes",
    "arena.nodes_allocated",
    "arena.materializations",
    "arena.truncated_nodes",
    "iterator.paths_yielded",
    "iterator.frames_filled",
    "planner.plans_forward",
    "planner.plans_backward",
    "planner.fallbacks",
    "recognizer.batch_candidates",
    "recognizer.batch_accepted",
    "generator.rounds",
    "generator.paths_emitted",
    "storage.snapshots_loaded",
    "storage.bytes_mapped",
    "storage.sections_validated",
    "storage.checksum_failures",
    "storage.load_nanos",
    "service.admitted",
    "service.rejected",
    "service.shed",
    "service.retries",
    "service.hot_swaps",
    "service.snapshots_reclaimed",
    "service.queries_executed",
    "compiler.queries_compiled",
    "compiler.pass_runs",
    "compiler.rewrites",
    "compiler.dead_branches",
    "compiler.filters_pushed",
    "compiler.prefixes_factored",
    "compiler.joins_reordered",
    "frontier.dense_levels",
    "frontier.sparse_levels",
    "frontier.words_scanned",
    "delta.inserts",
    "delta.tombstones",
    "delta.generations_sealed",
    "delta.views_built",
    "delta.edges_merged",
    "delta.compactions",
    "net.connections_accepted",
    "net.connections_refused",
    "net.frames_read",
    "net.frames_written",
    "net.protocol_errors",
    "net.requests_dispatched",
    "net.backpressure_pauses",
};
static_assert(std::size(kMetricNames) == static_cast<size_t>(Metric::kCount),
              "kMetricNames must cover every Metric");

constexpr std::string_view kHistNames[] = {
    "traversal.level_width",
    "arena.peak_nodes",
    "recognizer.path_length",
    "generator.round_width",
    "service.exec_nanos",
    "service.queue_depth",
    "service.epoch_lag",
    "service.admit_wait_nanos",
    "compiler.pass_nanos",
    "frontier.kernel_nanos",
    "delta.view_build_nanos",
    "delta.compact_nanos",
    "net.frame_bytes",
    "net.request_nanos",
};
static_assert(std::size(kHistNames) == static_cast<size_t>(Hist::kCount),
              "kHistNames must cover every Hist");

void AppendUint(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void AppendInt(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

// Atomic max/min via CAS; relaxed is enough — readers quiesce writers.
void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string_view MetricName(Metric m) {
  return kMetricNames[static_cast<size_t>(m)];
}

std::string_view HistName(Hist h) {
  return kHistNames[static_cast<size_t>(h)];
}

ObsRegistry::ObsRegistry() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t ObsRegistry::Value(Metric m) const {
  uint64_t total = 0;
  for (const CounterSlab& slab : counters_) {
    total += slab.v[static_cast<size_t>(m)].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ObsRegistry::ValueForSlot(Metric m, size_t slot) const {
  return counters_[slot % kShardSlots]
      .v[static_cast<size_t>(m)]
      .load(std::memory_order_relaxed);
}

void ObsRegistry::Record(Hist h, uint64_t value, size_t shard) {
  HistCell& cell = hists_[shard % kShardSlots].h[static_cast<size_t>(h)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(cell.min, value);
  AtomicMax(cell.max, value);
  cell.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot ObsRegistry::SnapshotHistogram(Hist h) const {
  HistogramSnapshot snap;
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const HistSlab& slab : hists_) {
    const HistCell& cell = slab.h[static_cast<size_t>(h)];
    snap.count += cell.count.load(std::memory_order_relaxed);
    snap.sum += cell.sum.load(std::memory_order_relaxed);
    min = std::min(min, cell.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, cell.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count == 0 ? 0 : min;
  return snap;
}

SpanId ObsRegistry::BeginSpan(std::string_view name, SpanId parent,
                              int64_t level, int64_t shard) {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
  std::lock_guard<std::mutex> lock(span_mu_);
  if (spans_.size() >= kMaxSpans) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return kNoSpan;
  }
  SpanRecord rec;
  rec.id = static_cast<SpanId>(spans_.size());
  rec.parent = parent;
  rec.name.assign(name);
  rec.level = level;
  rec.shard = shard;
  rec.start_ns = now;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void ObsRegistry::EndSpan(SpanId id) {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(span_mu_);
  if (id < spans_.size() && spans_[id].end_ns < 0) {
    spans_[id].end_ns = std::max(now, spans_[id].start_ns);
  }
}

void ObsRegistry::AnnotateSpan(SpanId id, std::string_view note) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(span_mu_);
  if (id < spans_.size()) {
    SpanRecord& rec = spans_[id];
    if (!rec.note.empty()) rec.note += "; ";
    rec.note.append(note);
  }
}

std::vector<SpanRecord> ObsRegistry::Spans() const {
  std::lock_guard<std::mutex> lock(span_mu_);
  return spans_;
}

std::string ObsRegistry::ToJson() const {
  // Name-sorted index orders so the export is stable across enum reorders.
  std::array<size_t, kNumMetrics> metric_order;
  for (size_t i = 0; i < kNumMetrics; ++i) metric_order[i] = i;
  std::sort(metric_order.begin(), metric_order.end(),
            [](size_t a, size_t b) { return kMetricNames[a] < kMetricNames[b]; });
  std::array<size_t, kNumHists> hist_order;
  for (size_t i = 0; i < kNumHists; ++i) hist_order[i] = i;
  std::sort(hist_order.begin(), hist_order.end(),
            [](size_t a, size_t b) { return kHistNames[a] < kHistNames[b]; });

  std::string out;
  out.reserve(4096);
  out += "{\n  \"counters\": [\n";
  for (size_t n = 0; n < kNumMetrics; ++n) {
    const Metric m = static_cast<Metric>(metric_order[n]);
    out += "    {\"name\": ";
    out += JsonQuote(MetricName(m));
    out += ", \"total\": ";
    AppendUint(out, Value(m));
    out += ", \"shards\": [";
    for (size_t s = 0; s < kShardSlots; ++s) {
      if (s != 0) out += ", ";
      AppendUint(out, ValueForSlot(m, s));
    }
    out += "]}";
    if (n + 1 < kNumMetrics) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"histograms\": [\n";
  for (size_t n = 0; n < kNumHists; ++n) {
    const Hist h = static_cast<Hist>(hist_order[n]);
    const HistogramSnapshot snap = SnapshotHistogram(h);
    out += "    {\"name\": ";
    out += JsonQuote(HistName(h));
    out += ", \"count\": ";
    AppendUint(out, snap.count);
    out += ", \"sum\": ";
    AppendUint(out, snap.sum);
    out += ", \"min\": ";
    AppendUint(out, snap.min);
    out += ", \"max\": ";
    AppendUint(out, snap.max);
    out += ", \"buckets\": [";
    bool first = true;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"le\": ";
      AppendUint(out, BucketUpperBound(i));
      out += ", \"count\": ";
      AppendUint(out, snap.buckets[i]);
      out += '}';
    }
    out += "]}";
    if (n + 1 < kNumHists) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"spans\": [\n";
  const std::vector<SpanRecord> spans = Spans();
  for (size_t n = 0; n < spans.size(); ++n) {
    const SpanRecord& rec = spans[n];
    out += "    {\"id\": ";
    AppendUint(out, rec.id);
    out += ", \"parent\": ";
    // kNoSpan exports as -1: JSON has no uint32 sentinel convention.
    AppendInt(out, rec.parent == kNoSpan ? -1
                                         : static_cast<int64_t>(rec.parent));
    out += ", \"name\": ";
    out += JsonQuote(rec.name);
    out += ", \"level\": ";
    AppendInt(out, rec.level);
    out += ", \"shard\": ";
    AppendInt(out, rec.shard);
    out += ", \"start_ns\": ";
    AppendInt(out, rec.start_ns);
    out += ", \"end_ns\": ";
    AppendInt(out, rec.end_ns);
    out += ", \"note\": ";
    out += JsonQuote(rec.note);
    out += '}';
    if (n + 1 < spans.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"spans_dropped\": ";
  AppendUint(out, spans_dropped());
  out += "\n}\n";
  return out;
}

void ObsRegistry::Reset() {
  for (CounterSlab& slab : counters_) {
    for (auto& v : slab.v) v.store(0, std::memory_order_relaxed);
  }
  for (HistSlab& slab : hists_) {
    for (HistCell& cell : slab.h) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum.store(0, std::memory_order_relaxed);
      cell.min.store(std::numeric_limits<uint64_t>::max(),
                     std::memory_order_relaxed);
      cell.max.store(0, std::memory_order_relaxed);
      for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(span_mu_);
  spans_.clear();
  spans_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace mrpa::obs
