#include "delta/compactor.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/fault_injector.h"

namespace mrpa::delta {

Result<CompactionResult> Compactor::Compact(const EdgeUniverse& base,
                                            DeltaOverlay& delta,
                                            ExecContext* exec) {
  const auto start = std::chrono::steady_clock::now();

  // A drop deferred by the previous compaction may be completable by now;
  // if not, the still-present generations are simply folded again below
  // (idempotent over the new base).
  ReclaimDrops(delta);

  // Seal first so the fold covers everything applied so far. Sealing is the
  // one overlay effect that survives a failed compaction; it changes
  // visibility (readers now see the verdicts), never content.
  delta.Seal();
  const size_t generations = delta.sealed_generations();
  const uint64_t folded_through = delta.sealed_through();

  if (Status injected = FaultProbe(kFaultSiteDeltaCompact); !injected.ok()) {
    return injected;
  }

  Result<OverlayUniverse> view = delta.View(base, exec);
  if (!view.ok()) return view.status();

  storage::SnapshotWriter writer;
  Result<std::vector<uint8_t>> bytes = writer.Serialize(*view);
  if (!bytes.ok()) return bytes.status();
  if (exec != nullptr) {
    MRPA_RETURN_IF_ERROR(exec->ChargeBytes(bytes->size()));
    MRPA_RETURN_IF_ERROR(exec->CheckDeadline());
  }

  CompactionResult result;
  result.edges = view->num_edges();
  result.generations_folded = generations;
  result.image_bytes = bytes->size();

  // Compacted bytes are untrusted until the fail-closed pipeline passes —
  // the same rule as any snapshot arriving from disk.
  storage::SnapshotLoadOptions load_options;
  load_options.exec = exec;
  load_options.obs = options_.obs;
  storage::SnapshotReader reader(load_options);
  Result<storage::SnapshotUniverse> universe = Status::Internal("unreached");
  std::string image_path;
  if (!options_.path.empty()) {
    // Never touch the file backing a live mapping: each compaction gets a
    // fresh versioned file, staged through a temp name and renamed into
    // place so no reader can ever observe a partial image.
    image_path = options_.path + "." + std::to_string(++image_seq_);
    const std::string tmp_path = image_path + ".tmp";
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out.is_open()) {
        return Status::IOError("compactor: cannot open " + tmp_path);
      }
      out.write(reinterpret_cast<const char*>(bytes->data()),
                static_cast<std::streamsize>(bytes->size()));
      if (!out.good()) {
        out.close();
        std::remove(tmp_path.c_str());
        return Status::IOError("compactor: short write to " + tmp_path);
      }
    }
    if (std::rename(tmp_path.c_str(), image_path.c_str()) != 0) {
      std::remove(tmp_path.c_str());
      return Status::IOError("compactor: cannot rename " + tmp_path);
    }
    universe = reader.MapFile(image_path);
    if (!universe.ok()) {
      std::remove(image_path.c_str());
      return universe.status();
    }
  } else if (options_.keep_image) {
    universe = reader.FromBuffer(*bytes);  // Validate a copy; keep the bytes.
  } else {
    universe = reader.FromBuffer(std::move(*bytes));
  }
  if (!universe.ok()) return universe.status();

  if (Status injected = FaultProbe(kFaultSiteDeltaSwap); !injected.ok()) {
    // Unlink removes the name only; the mapping held by `universe` stays
    // valid until it goes out of scope.
    if (!image_path.empty()) std::remove(image_path.c_str());
    return injected;
  }
  if (registry_ != nullptr) {
    Result<uint64_t> version =
        registry_->HotSwap(std::move(universe).value());
    if (!version.ok()) {
      if (!image_path.empty()) std::remove(image_path.c_str());
      return version.status();
    }
    result.version = *version;
  }

  if (!image_path.empty()) {
    // The new image is live (or validated, in registry-less mode): the file
    // backing the previous compaction is superseded. Readers still mapped
    // onto it are unaffected — the unlink drops the name, the registry's
    // reclamation drops the pages.
    if (!live_image_path_.empty()) std::remove(live_image_path_.c_str());
    live_image_path_ = image_path;
    result.image_path = image_path;
  }

  // The folded generations are redundant with the new base, but dropping
  // them is only safe once no reader can build a view over a PRE-swap base
  // — otherwise the folded mutations would vanish from that view. Gate the
  // drop on registry drain; until then the generations stay (views over
  // either base remain correct).
  if (registry_ == nullptr) {
    delta.DropGenerationsThrough(folded_through);
  } else {
    pending_drop_version_ = result.version;
    pending_drop_through_ = folded_through;
    result.generations_dropped = ReclaimDrops(delta);
  }

  if (options_.keep_image) result.image = std::move(*bytes);
  if (options_.obs != nullptr) {
    options_.obs->Add(obs::Metric::kDeltaCompactions, 1);
    options_.obs->Record(
        obs::Hist::kDeltaCompactNanos,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
  return result;
}

bool Compactor::ReclaimDrops(DeltaOverlay& delta) {
  if (pending_drop_through_ == 0) return true;
  if (registry_ != nullptr) {
    registry_->ReclaimNow();
    if (registry_->OldestLiveVersion() < pending_drop_version_) return false;
  }
  delta.DropGenerationsThrough(pending_drop_through_);
  pending_drop_through_ = 0;
  pending_drop_version_ = 0;
  return true;
}

}  // namespace mrpa::delta
