#include "delta/compactor.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/fault_injector.h"

namespace mrpa::delta {

Result<CompactionResult> Compactor::Compact(const EdgeUniverse& base,
                                            DeltaOverlay& delta,
                                            ExecContext* exec) {
  const auto start = std::chrono::steady_clock::now();

  // Seal first so the fold covers everything applied so far. Sealing is the
  // one overlay effect that survives a failed compaction; it changes
  // visibility (readers now see the verdicts), never content.
  delta.Seal();
  const size_t generations = delta.sealed_generations();

  if (Status injected = FaultProbe(kFaultSiteDeltaCompact); !injected.ok()) {
    return injected;
  }

  Result<OverlayUniverse> view = delta.View(base, exec);
  if (!view.ok()) return view.status();

  storage::SnapshotWriter writer;
  Result<std::vector<uint8_t>> bytes = writer.Serialize(*view);
  if (!bytes.ok()) return bytes.status();
  if (exec != nullptr) {
    MRPA_RETURN_IF_ERROR(exec->ChargeBytes(bytes->size()));
    MRPA_RETURN_IF_ERROR(exec->CheckDeadline());
  }

  CompactionResult result;
  result.edges = view->num_edges();
  result.generations_folded = generations;
  result.image_bytes = bytes->size();

  // Compacted bytes are untrusted until the fail-closed pipeline passes —
  // the same rule as any snapshot arriving from disk.
  storage::SnapshotLoadOptions load_options;
  load_options.exec = exec;
  load_options.obs = options_.obs;
  storage::SnapshotReader reader(load_options);
  Result<storage::SnapshotUniverse> universe = Status::Internal("unreached");
  if (!options_.path.empty()) {
    {
      std::ofstream out(options_.path, std::ios::binary | std::ios::trunc);
      if (!out.is_open()) {
        return Status::IOError("compactor: cannot open " + options_.path);
      }
      out.write(reinterpret_cast<const char*>(bytes->data()),
                static_cast<std::streamsize>(bytes->size()));
      if (!out.good()) {
        return Status::IOError("compactor: short write to " + options_.path);
      }
    }
    universe = reader.MapFile(options_.path);
  } else if (options_.keep_image) {
    universe = reader.FromBuffer(*bytes);  // Validate a copy; keep the bytes.
  } else {
    universe = reader.FromBuffer(std::move(*bytes));
  }
  if (!universe.ok()) return universe.status();

  if (Status injected = FaultProbe(kFaultSiteDeltaSwap); !injected.ok()) {
    return injected;
  }
  if (registry_ != nullptr) {
    Result<uint64_t> version =
        registry_->HotSwap(std::move(universe).value());
    if (!version.ok()) return version.status();
    result.version = *version;
  }

  // The image is live (or validated, in registry-less mode): the folded
  // generations are now redundant with the new base.
  delta.DropGenerations(generations);

  if (options_.keep_image) result.image = std::move(*bytes);
  if (options_.obs != nullptr) {
    options_.obs->Add(obs::Metric::kDeltaCompactions, 1);
    options_.obs->Record(
        obs::Hist::kDeltaCompactNanos,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
  return result;
}

}  // namespace mrpa::delta
