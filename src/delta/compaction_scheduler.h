// CompactionScheduler: the background thread that closes the delta loop.
//
// PR 9 shipped the mechanism — DeltaOverlay's writer-mutex'd Seal/Drop
// entry points and Compactor's fold-validate-publish-drop pipeline — but
// left the POLICY to callers: something must decide when to compact. This
// is that something, deliberately minimal:
//
//   trigger  =  enough time since the last compaction (min_interval — a
//               rate limit, so a hot writer cannot make compaction a
//               permanent tax on the machine)
//           AND enough accumulated delta (min_delta_bytes over sealed +
//               pending verdict bytes — so an idle overlay is never folded
//               just because the clock ticked).
//
// Each cycle pins the registry's current image with an epoch guard, folds
// base+delta through Compactor::Compact (publishing a fresh image via
// HotSwap), releases the guard, and then calls ReclaimDrops — the guard
// held during the fold pins the PRE-swap version, so the drop of the
// folded generations typically defers until the guard is gone; reclaiming
// right after release keeps the overlay small without waiting for the next
// cycle. Compaction failures (injected faults, validation errors) are
// counted and retried next cycle — the Compactor guarantees failures leave
// the overlay, registry, and disk untouched.
//
// Threading: Start() spawns one dedicated thread; Stop() (and the
// destructor) wakes it and joins. The overlay's writer mutex makes the
// scheduler safe beside the application's writer thread with no external
// locking — tests/compaction_scheduler_test.cc runs exactly that race
// under TSan.

#ifndef MRPA_DELTA_COMPACTION_SCHEDULER_H_
#define MRPA_DELTA_COMPACTION_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

#include "delta/compactor.h"
#include "delta/delta_overlay.h"
#include "service/snapshot_registry.h"
#include "util/status.h"

namespace mrpa::delta {

class CompactionScheduler {
 public:
  struct Options {
    // Minimum spacing between compaction attempts (the rate limit).
    std::chrono::milliseconds min_interval{100};
    // Minimum accumulated delta — sealed + pending verdicts, in entry
    // bytes — before a compaction is worth its fold.
    size_t min_delta_bytes = 16 * 1024;
    // How often the thread re-evaluates the trigger while idle.
    std::chrono::milliseconds poll_interval{10};
  };

  // All three referents must outlive the scheduler. The registry must have
  // a published image before the first compaction can run (cycles are
  // skipped until it does).
  CompactionScheduler(service::SnapshotRegistry& registry,
                      DeltaOverlay& delta, Compactor& compactor,
                      Options options);
  ~CompactionScheduler();

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  // Spawns the scheduler thread. kAlreadyExists if running.
  Status Start();
  // Wakes and joins the thread. Idempotent; a compaction in progress
  // completes first (the Compactor's phases are not interruptible —
  // stopping mid-publish would be exactly the torn state it exists to
  // prevent).
  void Stop();

  bool running() const;

  // Cycle counters (test hooks; racy-read safe).
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  // True when the accumulated delta and the rate limit both say go.
  bool ShouldCompact(std::chrono::steady_clock::time_point now) const;

  service::SnapshotRegistry& registry_;
  DeltaOverlay& delta_;
  Compactor& compactor_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;

  std::chrono::steady_clock::time_point last_compaction_;
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace mrpa::delta

#endif  // MRPA_DELTA_COMPACTION_SCHEDULER_H_
