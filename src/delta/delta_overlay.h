// DeltaOverlay + OverlayUniverse: the live-graph layer (an LSM tree over
// the immutable CSR snapshot).
//
// Everything below src/delta/ is build-once/read-many: MultiRelationalGraph
// and SnapshotUniverse are immutable images, and the whole traversal stack
// (sequential/parallel folds, chain planner, dense-frontier path, compiler,
// projection) consumes them through the span-based EdgeUniverse surface.
// Real deployments mutate continuously. The delta layer closes the gap
// without touching a single engine:
//
//   * DeltaOverlay  — the write side. A single writer applies AddEdge /
//     RemoveEdge verdicts into an active run (one latest-wins verdict per
//     edge, kept in canonical order); Seal() freezes the active run into an
//     immutable generation. Readers only ever observe sealed generations,
//     so the overlay is single-writer/multi-reader by construction: the
//     writer owns the active run exclusively, the sealed generation list is
//     swapped under a short mutex, and a sealed generation is never
//     modified again. Writer-side entry points (Apply/Seal/HasEdgeOver/
//     DropGenerationsThrough) additionally serialize on an internal writer
//     mutex, so a background compactor thread may Seal and drop generations
//     concurrently with the application's writer without external locking.
//
//   * OverlayUniverse — the read side. View(base) composes the sealed
//     generations over any base EdgeUniverse (an in-memory graph, a mapped
//     snapshot, even another overlay view) into a full EdgeUniverse. The
//     EdgeUniverse contract returns contiguous spans (AllEdges tiled by
//     OutEdges, index arrays into AllEdges), so a per-read lazy merge
//     cannot satisfy it; instead the view MATERIALIZES the merge once at
//     construction — a linear base+delta merge, not an O(|E| log |E|)
//     rebuild — and every query between mutations amortizes it. With no
//     sealed generations the view is a zero-cost passthrough serving the
//     base's own spans. Background compaction (compactor.h) is what keeps
//     the merge input small: it rewrites base+delta into a fresh MRGS image
//     and resets the overlay.
//
// Set semantics match DynamicMultiGraph: E is a set, AddEdge of a present
// edge is kAlreadyExists, RemoveEdge of an absent edge is kNotFound —
// "present" meaning the writer's linearized view (base, then sealed
// generations oldest-to-newest, then the active run; latest verdict wins).
// Vertex/label spaces grow monotonically with applied insertions and are
// published to readers at seal time.
//
// Governance: mutations probe the deterministic fault site `delta.apply`
// (an injected failure leaves the overlay untouched) and charge the entry
// bytes to an optional ExecContext; View charges a conservative upper bound
// of each phase's materialization BEFORE allocating it and polls the
// deadline at phase boundaries, so a byte budget actually bounds view-build
// allocation (a tripped budget fails before the memory is consumed).
//
// Lifetime: a view borrows nothing from the overlay (sealed generations are
// shared_ptr-held) but a PASSTHROUGH view serves the base's spans — the
// base must outlive the view, the usual span rule. Callers composing over a
// registry-guarded snapshot hold the guard for the view's lifetime.
//
// Correctness: tests/delta_differential_test.cc proves, at every step of a
// randomized mutation trace, that a view is byte-identical — paths, order,
// truncation, limit Status, stats minus elapsed — to a graph rebuilt from
// scratch, across density modes, pool widths, budgets, and injected faults.

#ifndef MRPA_DELTA_DELTA_OVERLAY_H_
#define MRPA_DELTA_DELTA_OVERLAY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/edge.h"
#include "core/edge_universe.h"
#include "core/ids.h"
#include "obs/obs.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa::delta {

// Deterministic fault-injection sites. `delta.apply` is probed once per
// AddEdge/RemoveEdge (before any state changes); `delta.compact` and
// `delta.swap` gate the two irreversible phases of Compactor::Compact.
inline constexpr std::string_view kFaultSiteDeltaApply = "delta.apply";
inline constexpr std::string_view kFaultSiteDeltaCompact = "delta.compact";
inline constexpr std::string_view kFaultSiteDeltaSwap = "delta.swap";

// One delta verdict: after this entry's generation, `edge` is present
// (insertion) or absent (tombstone), overriding the base and every older
// generation.
struct DeltaEntry {
  Edge edge;
  bool tombstone = false;
};

// A sealed, immutable run generation: entries in canonical (tail, label,
// head) order — i.e. per-(vertex, label) sorted runs laid end to end — with
// at most one entry per edge (the active run is latest-wins). The grown_*
// fields publish the vertex/label high-water marks as of this seal. `seq`
// is a monotone per-overlay seal number (1-based): drops are expressed as
// "through seq S", which stays idempotent when a deferred drop from an
// older compaction completes after a newer one already folded the same
// generations.
struct DeltaGeneration {
  std::vector<DeltaEntry> entries;
  uint32_t grown_vertices = 0;
  uint32_t grown_labels = 0;
  uint64_t seq = 0;
};

// The merged read view. Materialized at construction (or passthrough when
// the overlay had no sealed generations); immutable and safe to share
// across reader threads afterwards.
class OverlayUniverse final : public EdgeUniverse {
 public:
  // An empty universe over nothing.
  OverlayUniverse() = default;

  OverlayUniverse(OverlayUniverse&&) noexcept = default;
  OverlayUniverse& operator=(OverlayUniverse&&) noexcept = default;
  OverlayUniverse(const OverlayUniverse&) = default;
  OverlayUniverse& operator=(const OverlayUniverse&) = default;

  // --- EdgeUniverse -------------------------------------------------------
  uint32_t num_vertices() const override {
    return base_ != nullptr ? base_->num_vertices() : num_vertices_;
  }
  uint32_t num_labels() const override {
    return base_ != nullptr ? base_->num_labels() : num_labels_;
  }
  size_t num_edges() const override {
    return base_ != nullptr ? base_->num_edges() : edges_.size();
  }
  std::span<const Edge> AllEdges() const override {
    return base_ != nullptr ? base_->AllEdges() : std::span<const Edge>(edges_);
  }
  std::span<const Edge> OutEdges(VertexId v) const override;
  std::span<const EdgeIndex> InEdgeIndices(VertexId v) const override;
  std::span<const EdgeIndex> LabelEdgeIndices(LabelId l) const override;
  bool HasEdge(const Edge& e) const override;

  // True when the overlay had no sealed delta at view time: every accessor
  // delegates to the base (which must outlive this view). A materialized
  // view (false) owns all of its storage and borrows nothing.
  bool passthrough() const { return base_ != nullptr; }

  // Delta verdicts folded into the materialized merge (0 for passthrough):
  // insertions that produced a new edge and tombstones that suppressed a
  // base edge. No-op verdicts (re-insert of a present edge, tombstone of an
  // edge a newer generation re-inserted) count toward neither.
  size_t inserts_applied() const { return inserts_applied_; }
  size_t tombstones_applied() const { return tombstones_applied_; }

 private:
  friend class DeltaOverlay;

  const EdgeUniverse* base_ = nullptr;  // Non-null iff passthrough.

  uint32_t num_vertices_ = 0;
  uint32_t num_labels_ = 0;
  size_t inserts_applied_ = 0;
  size_t tombstones_applied_ = 0;
  std::vector<Edge> edges_;             // Canonical order, unique.
  std::vector<size_t> out_offsets_;     // Size num_vertices_ + 1.
  std::vector<EdgeIndex> in_index_;     // Grouped by head.
  std::vector<size_t> in_offsets_;      // Size num_vertices_ + 1.
  std::vector<EdgeIndex> label_index_;  // Grouped by label.
  std::vector<size_t> label_offsets_;   // Size num_labels_ + 1.
};

class DeltaOverlay {
 public:
  // The registry (optional) receives delta.* metrics: verdicts applied,
  // generations sealed, views built, edges merged. Must outlive the
  // overlay.
  explicit DeltaOverlay(obs::ObsRegistry* obs = nullptr) : obs_(obs) {}

  DeltaOverlay(const DeltaOverlay&) = delete;
  DeltaOverlay& operator=(const DeltaOverlay&) = delete;

  // --- Writer side (serialized on an internal writer mutex) ---------------
  // One LOGICAL writer: concurrent callers are safe (each call is atomic
  // under the writer mutex) but the interleaving of concurrent mutations is
  // unspecified. A background compactor thread composes safely with the
  // application's writer thread.
  // Records the insertion of `e` over `base`; grows the vertex/label spaces
  // to cover its ids. kAlreadyExists when e is present in the writer's
  // linearized view. An injected delta.apply fault (or a tripped `exec`
  // budget) leaves the overlay untouched.
  Status AddEdge(const EdgeUniverse& base, const Edge& e,
                 ExecContext* exec = nullptr);

  // Records a tombstone for `e`. kNotFound when e is absent.
  Status RemoveEdge(const EdgeUniverse& base, const Edge& e,
                    ExecContext* exec = nullptr);

  // Freezes the active run into an immutable generation readers can see.
  // Returns the number of entries sealed (0 = no-op, no generation made).
  size_t Seal();

  // True iff e is present in the writer's linearized view (active run, then
  // sealed generations newest-first, then the base).
  bool HasEdgeOver(const EdgeUniverse& base, const Edge& e) const;

  // --- Reader side (any thread, concurrent with the writer) --------------
  // Composes the sealed generations over `base` into a full EdgeUniverse.
  // Charges the merged materialization to `exec` (bytes + a deadline poll);
  // a tripped budget fails with the tripping Status and materializes
  // nothing. Pending (unsealed) verdicts are invisible.
  Result<OverlayUniverse> View(const EdgeUniverse& base,
                               ExecContext* exec = nullptr) const;

  // --- Introspection ------------------------------------------------------
  size_t pending_ops() const;
  size_t sealed_generations() const;
  // Total entries across sealed generations.
  size_t sealed_ops() const;
  // Seal number of the NEWEST sealed generation; 0 when none is sealed.
  uint64_t sealed_through() const;
  // No sealed generations AND no pending verdicts.
  bool empty() const;

  // Drops every sealed generation with seal number <= `through` — the
  // compactor's commit step after their content is folded into a new base
  // image. Callers must not drop generations while any reader could still
  // build a view over a base that predates the fold (the compactor gates
  // this on the registry's epoch reclamation); idempotent, so overlapping
  // deferred drops from successive compactions are safe. When the drop
  // empties the overlay entirely, the grown vertex/label marks reset (the
  // new base covers them).
  void DropGenerationsThrough(uint64_t through);

 private:
  Status Apply(const EdgeUniverse& base, const Edge& e, bool tombstone,
               ExecContext* exec);
  // Requires writer_mu_ held.
  bool HasEdgeOverLocked(const EdgeUniverse& base, const Edge& e) const;

  // Sealed generations, oldest first. Guarded by gen_mu_; the generation
  // objects themselves are immutable once published. Lock order:
  // writer_mu_ before gen_mu_, never the reverse.
  mutable std::mutex gen_mu_;
  std::vector<std::shared_ptr<const DeltaGeneration>> generations_;

  // Writer-side state: the active run, its space high-water marks, and the
  // seal counter. Guarded by writer_mu_ so a background compactor (Seal +
  // DropGenerationsThrough) composes with the application's writer thread.
  mutable std::mutex writer_mu_;
  std::map<Edge, bool> active_;  // edge -> tombstone, latest verdict wins.
  uint32_t pending_grown_vertices_ = 0;
  uint32_t pending_grown_labels_ = 0;
  uint64_t last_seal_seq_ = 0;

  obs::ObsRegistry* obs_ = nullptr;
};

}  // namespace mrpa::delta

#endif  // MRPA_DELTA_DELTA_OVERLAY_H_
