#include "delta/delta_overlay.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/fault_injector.h"

namespace mrpa::delta {

namespace {

// The verdict for `e` in one sealed generation: nullptr when the generation
// says nothing about e. Binary search — entries are in canonical order.
const DeltaEntry* FindEntry(const DeltaGeneration& gen, const Edge& e) {
  auto it = std::lower_bound(
      gen.entries.begin(), gen.entries.end(), e,
      [](const DeltaEntry& entry, const Edge& edge) { return entry.edge < edge; });
  if (it == gen.entries.end() || it->edge != e) return nullptr;
  return &*it;
}

int64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// --- OverlayUniverse ---------------------------------------------------------

std::span<const Edge> OverlayUniverse::OutEdges(VertexId v) const {
  if (base_ != nullptr) return base_->OutEdges(v);
  if (v >= num_vertices_) return {};
  return std::span<const Edge>(edges_).subspan(
      out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]);
}

std::span<const EdgeIndex> OverlayUniverse::InEdgeIndices(VertexId v) const {
  if (base_ != nullptr) return base_->InEdgeIndices(v);
  if (v >= num_vertices_) return {};
  return std::span<const EdgeIndex>(in_index_).subspan(
      in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]);
}

std::span<const EdgeIndex> OverlayUniverse::LabelEdgeIndices(LabelId l) const {
  if (base_ != nullptr) return base_->LabelEdgeIndices(l);
  if (l >= num_labels_) return {};
  return std::span<const EdgeIndex>(label_index_).subspan(
      label_offsets_[l], label_offsets_[l + 1] - label_offsets_[l]);
}

bool OverlayUniverse::HasEdge(const Edge& e) const {
  if (base_ != nullptr) return base_->HasEdge(e);
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

// --- DeltaOverlay: writer side ----------------------------------------------

Status DeltaOverlay::Apply(const EdgeUniverse& base, const Edge& e,
                           bool tombstone, ExecContext* exec) {
  if (Status injected = FaultProbe(kFaultSiteDeltaApply); !injected.ok()) {
    return injected;
  }
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const bool present = HasEdgeOverLocked(base, e);
  if (!tombstone && present) {
    return Status::AlreadyExists("edge " + e.ToString() + " already in E");
  }
  if (tombstone && !present) {
    return Status::NotFound("edge " + e.ToString() + " not in E");
  }
  if (exec != nullptr) {
    MRPA_RETURN_IF_ERROR(exec->ChargeBytes(sizeof(DeltaEntry)));
  }
  active_[e] = tombstone;
  if (!tombstone) {
    pending_grown_vertices_ = std::max(
        pending_grown_vertices_, std::max(e.tail, e.head) + 1);
    pending_grown_labels_ = std::max(pending_grown_labels_, e.label + 1);
  }
  if (obs_ != nullptr) {
    obs_->Add(tombstone ? obs::Metric::kDeltaTombstones
                        : obs::Metric::kDeltaInserts,
              1);
  }
  return Status::OK();
}

Status DeltaOverlay::AddEdge(const EdgeUniverse& base, const Edge& e,
                             ExecContext* exec) {
  return Apply(base, e, /*tombstone=*/false, exec);
}

Status DeltaOverlay::RemoveEdge(const EdgeUniverse& base, const Edge& e,
                                ExecContext* exec) {
  return Apply(base, e, /*tombstone=*/true, exec);
}

size_t DeltaOverlay::Seal() {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  if (active_.empty()) return 0;
  auto gen = std::make_shared<DeltaGeneration>();
  gen->entries.reserve(active_.size());
  // std::map iterates in key order, which IS canonical edge order.
  for (const auto& [edge, tombstone] : active_) {
    gen->entries.push_back({edge, tombstone});
  }
  gen->grown_vertices = pending_grown_vertices_;
  gen->grown_labels = pending_grown_labels_;
  gen->seq = ++last_seal_seq_;
  const size_t sealed = gen->entries.size();
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    generations_.push_back(std::move(gen));
  }
  active_.clear();
  if (obs_ != nullptr) obs_->Add(obs::Metric::kDeltaGenerationsSealed, 1);
  return sealed;
}

bool DeltaOverlay::HasEdgeOver(const EdgeUniverse& base, const Edge& e) const {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  return HasEdgeOverLocked(base, e);
}

bool DeltaOverlay::HasEdgeOverLocked(const EdgeUniverse& base,
                                     const Edge& e) const {
  if (auto it = active_.find(e); it != active_.end()) return !it->second;
  std::vector<std::shared_ptr<const DeltaGeneration>> gens;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    gens = generations_;
  }
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (const DeltaEntry* entry = FindEntry(**it, e); entry != nullptr) {
      return !entry->tombstone;
    }
  }
  return base.HasEdge(e);
}

size_t DeltaOverlay::pending_ops() const {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  return active_.size();
}

size_t DeltaOverlay::sealed_generations() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return generations_.size();
}

size_t DeltaOverlay::sealed_ops() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  size_t total = 0;
  for (const auto& gen : generations_) total += gen->entries.size();
  return total;
}

uint64_t DeltaOverlay::sealed_through() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return generations_.empty() ? 0 : generations_.back()->seq;
}

bool DeltaOverlay::empty() const {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  std::lock_guard<std::mutex> lock(gen_mu_);
  return active_.empty() && generations_.empty();
}

void DeltaOverlay::DropGenerationsThrough(uint64_t through) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  std::lock_guard<std::mutex> lock(gen_mu_);
  // Generations are sealed in seq order, so the prefix with seq <= through
  // is exactly the fold the compactor committed. Already-dropped seqs make
  // this a no-op — overlapping deferred drops stay idempotent.
  auto keep = generations_.begin();
  while (keep != generations_.end() && (*keep)->seq <= through) ++keep;
  generations_.erase(generations_.begin(), keep);
  if (generations_.empty() && active_.empty()) {
    // Fully compacted: the new base image covers every applied insertion, so
    // future views grow from ITS spaces, not stale high-water marks.
    pending_grown_vertices_ = 0;
    pending_grown_labels_ = 0;
  }
}

// --- DeltaOverlay: reader side ----------------------------------------------

Result<OverlayUniverse> DeltaOverlay::View(const EdgeUniverse& base,
                                           ExecContext* exec) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const DeltaGeneration>> gens;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    gens = generations_;
  }

  OverlayUniverse view;
  if (gens.empty()) {
    view.base_ = &base;
    if (obs_ != nullptr) obs_->Add(obs::Metric::kDeltaViewsBuilt, 1);
    return view;
  }

  // Phase 1: collapse the generations oldest → newest; the newest verdict
  // for an edge wins. Linear merges — every input is in canonical order.
  // The charge is an upper bound (dedup only shrinks the collapse) taken
  // BEFORE the allocation, so a byte budget bounds the build rather than
  // auditing it after the memory is already consumed.
  size_t total_entries = 0;
  for (const auto& gen : gens) total_entries += gen->entries.size();
  if (exec != nullptr) {
    MRPA_RETURN_IF_ERROR(exec->ChargeBytes(total_entries * sizeof(DeltaEntry)));
  }
  std::vector<DeltaEntry> combined(gens.front()->entries);
  for (size_t g = 1; g < gens.size(); ++g) {
    const std::vector<DeltaEntry>& next = gens[g]->entries;
    std::vector<DeltaEntry> merged;
    merged.reserve(combined.size() + next.size());
    size_t i = 0;
    size_t j = 0;
    while (i < combined.size() && j < next.size()) {
      if (combined[i].edge < next[j].edge) {
        merged.push_back(combined[i++]);
      } else if (next[j].edge < combined[i].edge) {
        merged.push_back(next[j++]);
      } else {
        merged.push_back(next[j++]);
        ++i;
      }
    }
    merged.insert(merged.end(), combined.begin() + static_cast<ptrdiff_t>(i),
                  combined.end());
    merged.insert(merged.end(), next.begin() + static_cast<ptrdiff_t>(j),
                  next.end());
    combined = std::move(merged);
  }

  // Phase 2: merge the collapsed delta over the base edge array. An edge in
  // both streams survives iff the delta verdict is an insertion (re-insert
  // of a tombstoned-then-restored base edge lands here); an edge only in the
  // delta survives iff it is an insertion. The merged edge array and the
  // phase-3 index arrays it implies are again charged as an upper bound
  // (tombstones only shrink the merge) before the reserve.
  const std::span<const Edge> base_edges = base.AllEdges();
  size_t insert_verdicts = 0;
  for (const DeltaEntry& entry : combined) {
    insert_verdicts += entry.tombstone ? 0 : 1;
  }
  if (exec != nullptr) {
    MRPA_RETURN_IF_ERROR(exec->ChargeBytes(
        (base_edges.size() + insert_verdicts) *
        (sizeof(Edge) + 2 * sizeof(EdgeIndex))));
    MRPA_RETURN_IF_ERROR(exec->CheckDeadline());
  }
  view.edges_.reserve(base_edges.size() + insert_verdicts);
  {
    size_t i = 0;
    size_t j = 0;
    while (i < base_edges.size() && j < combined.size()) {
      if (base_edges[i] < combined[j].edge) {
        view.edges_.push_back(base_edges[i++]);
      } else if (combined[j].edge < base_edges[i]) {
        if (!combined[j].tombstone) {
          view.edges_.push_back(combined[j].edge);
          ++view.inserts_applied_;
        }
        ++j;
      } else {
        if (combined[j].tombstone) {
          ++view.tombstones_applied_;
        } else {
          view.edges_.push_back(base_edges[i]);
        }
        ++i;
        ++j;
      }
    }
    for (; i < base_edges.size(); ++i) view.edges_.push_back(base_edges[i]);
    for (; j < combined.size(); ++j) {
      if (!combined[j].tombstone) {
        view.edges_.push_back(combined[j].edge);
        ++view.inserts_applied_;
      }
    }
  }

  // Phase 3: the derived indices, by counting sort (same shape as the CSR
  // substrate). Growth marks are monotone across generations, so the last
  // generation carries the high water.
  view.num_vertices_ =
      std::max(base.num_vertices(), gens.back()->grown_vertices);
  view.num_labels_ = std::max(base.num_labels(), gens.back()->grown_labels);
  view.out_offsets_.assign(view.num_vertices_ + 1, 0);
  view.in_offsets_.assign(view.num_vertices_ + 1, 0);
  view.label_offsets_.assign(view.num_labels_ + 1, 0);
  for (const Edge& e : view.edges_) {
    ++view.out_offsets_[e.tail + 1];
    ++view.in_offsets_[e.head + 1];
    ++view.label_offsets_[e.label + 1];
  }
  for (size_t v = 1; v < view.out_offsets_.size(); ++v) {
    view.out_offsets_[v] += view.out_offsets_[v - 1];
    view.in_offsets_[v] += view.in_offsets_[v - 1];
  }
  for (size_t l = 1; l < view.label_offsets_.size(); ++l) {
    view.label_offsets_[l] += view.label_offsets_[l - 1];
  }
  view.in_index_.resize(view.edges_.size());
  view.label_index_.resize(view.edges_.size());
  std::vector<size_t> in_cursor(view.in_offsets_.begin(),
                                view.in_offsets_.end() - 1);
  std::vector<size_t> label_cursor(view.label_offsets_.begin(),
                                   view.label_offsets_.end() - 1);
  for (size_t idx = 0; idx < view.edges_.size(); ++idx) {
    const Edge& e = view.edges_[idx];
    view.in_index_[in_cursor[e.head]++] = static_cast<EdgeIndex>(idx);
    view.label_index_[label_cursor[e.label]++] = static_cast<EdgeIndex>(idx);
  }

  if (obs_ != nullptr) {
    obs_->Add(obs::Metric::kDeltaViewsBuilt, 1);
    obs_->Add(obs::Metric::kDeltaEdgesMerged, view.edges_.size());
    obs_->Record(obs::Hist::kDeltaViewBuildNanos,
                 static_cast<uint64_t>(ElapsedNanos(start)));
  }
  return view;
}

}  // namespace mrpa::delta
