#include "delta/compaction_scheduler.h"

#include <atomic>
#include <utility>

namespace mrpa::delta {

CompactionScheduler::CompactionScheduler(service::SnapshotRegistry& registry,
                                         DeltaOverlay& delta,
                                         Compactor& compactor,
                                         Options options)
    : registry_(registry),
      delta_(delta),
      compactor_(compactor),
      options_(options) {
  if (options_.poll_interval.count() <= 0) {
    options_.poll_interval = std::chrono::milliseconds(1);
  }
  // A first compaction is allowed immediately: backdate the rate limiter.
  last_compaction_ =
      std::chrono::steady_clock::now() - options_.min_interval;
}

CompactionScheduler::~CompactionScheduler() { Stop(); }

Status CompactionScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::AlreadyExists("scheduler already running");
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void CompactionScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool CompactionScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

bool CompactionScheduler::ShouldCompact(
    std::chrono::steady_clock::time_point now) const {
  if (now - last_compaction_ < options_.min_interval) return false;
  const size_t delta_bytes =
      (delta_.pending_ops() + delta_.sealed_ops()) * sizeof(DeltaEntry);
  return delta_bytes >= options_.min_delta_bytes;
}

void CompactionScheduler::Run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; });
      if (stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    if (!ShouldCompact(now)) continue;
    // Pin the current base for the duration of the fold. No image yet
    // published → nothing to fold over; wait for one.
    service::SnapshotRegistry::Guard guard = registry_.Acquire();
    if (!guard) continue;
    Result<CompactionResult> result =
        compactor_.Compact(guard.universe(), delta_);
    last_compaction_ = std::chrono::steady_clock::now();
    if (result.ok()) {
      compactions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Failures are clean by the Compactor's contract; try again next
      // cycle.
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    // Our own guard pinned the pre-swap version through the fold, so the
    // generation drop usually deferred. Release it and reclaim now rather
    // than carrying the folded generations to the next cycle.
    guard = service::SnapshotRegistry::Guard();
    compactor_.ReclaimDrops(delta_);
  }
}

}  // namespace mrpa::delta
