// Compactor: folds a DeltaOverlay into a fresh MRGS snapshot image and
// (optionally) hot-swaps it into a serving SnapshotRegistry.
//
// The delta layer trades write latency for read-side merge work; left
// alone, generations pile up and every View() pays a wider collapse.
// Compaction is the background half of the bargain: seal whatever is
// pending, materialize the merged view, serialize it through the PR 5
// SnapshotWriter (deterministic bytes), run the result through the PR 5
// fail-closed validation pipeline — compacted images are untrusted bytes
// like any other snapshot — and publish it through the PR 6
// SnapshotRegistry's epoch-safe HotSwap, so in-flight queries finish on the
// image they were admitted under while new queries see the compacted one.
// Only after the new image is live are the folded generations dropped from
// the overlay; a failure at ANY phase (injected `delta.compact`/`delta.swap`
// fault, serialization error, validation error, a failed HotSwap) leaves
// the overlay's generations AND the registry exactly as they were.
//
// Names do not survive compaction: SnapshotWriter's EdgeUniverse overload
// writes empty name tables (the abstract surface has no names), so a
// compacted image serves ids only. Callers that need names keep them at a
// layer above the edge relation.
//
// Single-writer discipline: Compact mutates the overlay (Seal +
// DropGenerations), so it runs on — or synchronized with — the overlay's
// writer thread. Readers are unaffected throughout: they hold shared_ptr
// generations and registry guards.

#ifndef MRPA_DELTA_COMPACTOR_H_
#define MRPA_DELTA_COMPACTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/edge_universe.h"
#include "delta/delta_overlay.h"
#include "obs/obs.h"
#include "service/snapshot_registry.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa::delta {

struct CompactorOptions {
  // Non-empty: the image is written to this path and served zero-copy
  // (MapFile). Empty: the image is validated and served from an owned
  // buffer (FromBuffer).
  std::string path;
  // Keep a copy of the serialized image in CompactionResult::image — the
  // differential harnesses rebuild reference universes from it.
  bool keep_image = false;
  // Metrics sink for delta.compactions / delta.compact_nanos; also handed
  // to the validating reader. Must outlive the compactor.
  obs::ObsRegistry* obs = nullptr;
};

struct CompactionResult {
  // Registry version the compacted image was published under; 0 when the
  // compactor has no registry (validate-only mode).
  uint64_t version = 0;
  // Edges in the compacted image.
  size_t edges = 0;
  // Sealed generations folded in and dropped from the overlay.
  size_t generations_folded = 0;
  // Serialized image size.
  size_t image_bytes = 0;
  // The image bytes themselves; empty unless CompactorOptions::keep_image.
  std::vector<uint8_t> image;
};

class Compactor {
 public:
  // `registry` may be null: Compact then validates the image and returns it
  // without publishing (the corruption sweep runs this mode). Not owned;
  // must outlive the compactor.
  explicit Compactor(service::SnapshotRegistry* registry,
                     CompactorOptions options = {})
      : registry_(registry), options_(std::move(options)) {}

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  // Seals the overlay's pending verdicts, rewrites base+delta into a fresh
  // validated MRGS image, hot-swaps it (when a registry is attached), and
  // drops the folded generations. On ANY failure the overlay keeps its
  // sealed generations and the registry its current image — the only
  // observable effect is that pending verdicts may now be sealed (a
  // visibility change for readers, never a content change: sealing alters
  // no verdict).
  //
  // The serialized image and validation pass are charged to `exec`.
  Result<CompactionResult> Compact(const EdgeUniverse& base,
                                   DeltaOverlay& delta,
                                   ExecContext* exec = nullptr);

 private:
  service::SnapshotRegistry* registry_;
  CompactorOptions options_;
};

}  // namespace mrpa::delta

#endif  // MRPA_DELTA_COMPACTOR_H_
