// Compactor: folds a DeltaOverlay into a fresh MRGS snapshot image and
// (optionally) hot-swaps it into a serving SnapshotRegistry.
//
// The delta layer trades write latency for read-side merge work; left
// alone, generations pile up and every View() pays a wider collapse.
// Compaction is the background half of the bargain: seal whatever is
// pending, materialize the merged view, serialize it through the PR 5
// SnapshotWriter (deterministic bytes), run the result through the PR 5
// fail-closed validation pipeline — compacted images are untrusted bytes
// like any other snapshot — and publish it through the PR 6
// SnapshotRegistry's epoch-safe HotSwap, so in-flight queries finish on the
// image they were admitted under while new queries see the compacted one.
//
// Path mode never rewrites a live file: compaction N writes a fresh
// versioned file `<path>.<N>` (temp file + atomic rename), and the file
// backing the PREVIOUS compaction is unlinked only after the new image is
// published — an unlink removes the name only, so a prior image still
// mmap'ed by in-flight readers keeps serving until the registry reclaims
// it. A failure at ANY phase (injected `delta.compact`/`delta.swap` fault,
// serialization error, validation error, a failed HotSwap) removes the
// partial file it was writing and leaves the overlay's generations, the
// registry, AND the previously published on-disk image exactly as they
// were.
//
// The folded generations are dropped from the overlay only once no reader
// can build a view over a pre-swap base: the drop is gated on the
// registry's epoch reclamation (OldestLiveVersion() reaching the published
// version). While a pre-swap guard is still live the drop is DEFERRED —
// the generations stay in the overlay, so a straggler reader building a
// view over the old base still sees every folded mutation (no
// non-monotonic read); re-folding them over the new base is idempotent. A
// deferred drop completes on the next Compact, or explicitly via
// ReclaimDrops once readers have re-pinned the published version.
//
// Names do not survive compaction: SnapshotWriter's EdgeUniverse overload
// writes empty name tables (the abstract surface has no names), so a
// compacted image serves ids only. Callers that need names keep them at a
// layer above the edge relation.
//
// Threading: the overlay's writer-side entry points carry their own writer
// mutex, so Compact may run on a background thread concurrently with the
// application's writer. The Compactor OBJECT is not itself thread-safe
// (one compaction at a time); readers are unaffected throughout — they
// hold shared_ptr generations and registry guards.

#ifndef MRPA_DELTA_COMPACTOR_H_
#define MRPA_DELTA_COMPACTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/edge_universe.h"
#include "delta/delta_overlay.h"
#include "obs/obs.h"
#include "service/snapshot_registry.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa::delta {

struct CompactorOptions {
  // Non-empty: the image is served zero-copy (MapFile) from a fresh
  // versioned file `<path>.<N>` per compaction (see the header comment for
  // the write/rename/unlink protocol). Empty: the image is validated and
  // served from an owned buffer (FromBuffer).
  std::string path;
  // Keep a copy of the serialized image in CompactionResult::image — the
  // differential harnesses rebuild reference universes from it.
  bool keep_image = false;
  // Metrics sink for delta.compactions / delta.compact_nanos; also handed
  // to the validating reader. Must outlive the compactor.
  obs::ObsRegistry* obs = nullptr;
};

struct CompactionResult {
  // Registry version the compacted image was published under; 0 when the
  // compactor has no registry (validate-only mode).
  uint64_t version = 0;
  // Edges in the compacted image.
  size_t edges = 0;
  // Sealed generations folded into the image.
  size_t generations_folded = 0;
  // Serialized image size.
  size_t image_bytes = 0;
  // The image bytes themselves; empty unless CompactorOptions::keep_image.
  std::vector<uint8_t> image;
  // Path mode only: the versioned file backing the published image. The
  // compactor unlinks it when a LATER compaction supersedes it; the LAST
  // image's file is the caller's to remove.
  std::string image_path;
  // False when the folded generations could not be dropped yet because a
  // pre-swap registry guard was still live. They remain in the overlay
  // (views stay correct over either base) until a later Compact — or an
  // explicit ReclaimDrops — completes the drop.
  bool generations_dropped = true;
};

class Compactor {
 public:
  // `registry` may be null: Compact then validates the image and returns it
  // without publishing (the corruption sweep runs this mode). Not owned;
  // must outlive the compactor.
  explicit Compactor(service::SnapshotRegistry* registry,
                     CompactorOptions options = {})
      : registry_(registry), options_(std::move(options)) {}

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  // Seals the overlay's pending verdicts, rewrites base+delta into a fresh
  // validated MRGS image, hot-swaps it (when a registry is attached), and
  // drops the folded generations as soon as the registry confirms no
  // pre-swap reader remains (see the header comment). On ANY failure the
  // overlay keeps its sealed generations, the registry its current image,
  // and the filesystem its previously published file — the only observable
  // effect is that pending verdicts may now be sealed (a visibility change
  // for readers, never a content change: sealing alters no verdict).
  //
  // The serialized image and validation pass are charged to `exec`.
  Result<CompactionResult> Compact(const EdgeUniverse& base,
                                   DeltaOverlay& delta,
                                   ExecContext* exec = nullptr);

  // Completes a drop deferred by an earlier Compact: once every registry
  // image older than that compaction's published version has been
  // reclaimed, the folded generations are dropped from `delta`. Returns
  // true when no drop remains pending (also called opportunistically at
  // the start of every Compact).
  bool ReclaimDrops(DeltaOverlay& delta);

 private:
  service::SnapshotRegistry* registry_;
  CompactorOptions options_;
  // Monotone suffix for path-mode image files.
  uint64_t image_seq_ = 0;
  // Path-mode file backing the currently published image; unlinked when a
  // later compaction supersedes it.
  std::string live_image_path_;
  // Deferred-drop bookkeeping: generations with seal seq <= through are
  // dropped once the registry drains below `version`. through == 0 means
  // nothing pending.
  uint64_t pending_drop_version_ = 0;
  uint64_t pending_drop_through_ = 0;
};

}  // namespace mrpa::delta

#endif  // MRPA_DELTA_COMPACTOR_H_
