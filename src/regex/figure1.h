// The paper's Figure 1, as a reusable fixture.
//
// The expression (§IV-A):
//
//   [i, α, _] ⋈◦ [_, β, _]* ⋈◦ (([_, α, j] ⋈◦ {(j, α, i)}) ∪ [_, α, k])
//
// recognizing "all paths emanating from i, terminating at i or k, with the
// first and last label traversed being α, and all intermediate edge labels
// (zero or more) being β". Its automaton (Figure 1) is the canonical
// example for both the recognizer (E5) and the single-stack generator (E6),
// and the examples/ binaries print it.

#ifndef MRPA_REGEX_FIGURE1_H_
#define MRPA_REGEX_FIGURE1_H_

#include "core/expr.h"
#include "core/ids.h"
#include "graph/multi_graph.h"

namespace mrpa {

// The vertex/label bindings of the figure.
struct Figure1Params {
  VertexId i = 0;
  VertexId j = 1;
  VertexId k = 2;
  LabelId alpha = 0;
  LabelId beta = 1;
};

// Builds the Figure 1 expression for the given bindings.
PathExprPtr BuildFigure1Expr(const Figure1Params& params = {});

// A small concrete graph on which the Figure 1 language is non-trivial:
// vertices {i=0, j=1, k=2, 3, 4}, labels {α=0, β=1}, with α-edges from i,
// a β-chain through vertices 3 and 4, α-edges into j and k, and the edge
// (j, α, i) that closes the figure's loop branch. Used by tests, benches,
// and examples/regex_paths.
MultiRelationalGraph BuildFigure1Graph();

}  // namespace mrpa

#endif  // MRPA_REGEX_FIGURE1_H_
