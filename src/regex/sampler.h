// Uniform random sampling from a regular path language — the §IV-B
// generator's statistical sibling.
//
// Enumerating all accepted paths is exponential; counting them (the
// semiring DP of regex/path_analysis.h) is polynomial. Sampling combines
// the two: a backward counting table
//
//   A(q, v, r) = #accepted completions from DFA state q standing at
//                vertex v with ≤ r edges remaining
//
// turns generation into a guided random walk — at each step the next edge
// is drawn with probability proportional to the number of accepted
// completions through it, which makes every accepted path of length ≤ L
// EXACTLY equally likely. Use cases: statistical estimates over path
// populations too large to enumerate (mean length, label-mix, endpoint
// distributions), and fair test-input generation.
//
// Joint-only expressions (the LazyDfa restriction); determinism per seed.

#ifndef MRPA_REGEX_SAMPLER_H_
#define MRPA_REGEX_SAMPLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/edge_universe.h"
#include "core/expr.h"
#include "core/path.h"
#include "regex/lazy_dfa.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "util/status.h"

namespace mrpa {

struct SampleOptions {
  // Samples are uniform over accepted paths of length ≤ max_path_length
  // (the ε path included when accepted).
  size_t max_path_length = 8;
  uint64_t seed = 1;
  // Optional execution guard. The completion-count DP charges one step and
  // one table entry's bytes per memoized cell; the guided walk charges one
  // step per edge drawn. A trip aborts Prepare()/Sample() with the guard's
  // Status — there is no partial sample to salvage. Not owned; may be null.
  ExecContext* exec = nullptr;
};

class PathSampler {
 public:
  // Fails with InvalidArgument for expressions with ×◦ seams.
  static Result<PathSampler> Compile(const PathExpr& expr);

  // Binds the sampler to a universe and precomputes the completion-count
  // table. Fails with InvalidArgument when the (bounded) language is empty
  // or its size overflows uint64.
  Status Prepare(const EdgeUniverse& universe, const SampleOptions& options);

  // The exact number of accepted paths of length ≤ max_path_length (after
  // Prepare).
  uint64_t LanguageSize() const { return language_size_; }

  // Draws one path, uniformly from the bounded language. Requires a prior
  // successful Prepare.
  Result<Path> Sample();

  // Draws `count` paths (independent, with replacement).
  Result<std::vector<Path>> SampleMany(size_t count);

 private:
  explicit PathSampler(LazyDfa dfa) : dfa_(std::move(dfa)) {}

  struct Key {
    uint32_t state;
    VertexId vertex;
    uint32_t remaining;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  // A(q, v, r), memoized. Saturates at kOverflow (reported by Prepare).
  uint64_t Completions(uint32_t state, VertexId vertex, uint32_t remaining);

  LazyDfa dfa_;
  const EdgeUniverse* universe_ = nullptr;
  SampleOptions options_;
  std::map<Key, uint64_t> completion_counts_;
  uint64_t language_size_ = 0;
  bool epsilon_accepted_ = false;
  Rng rng_{1};
  bool prepared_ = false;
  bool overflowed_ = false;
  // The DP recursion cannot propagate Status; a guard trip is recorded
  // here and surfaced by Prepare()/Sample().
  Status guard_status_;
};

}  // namespace mrpa

#endif  // MRPA_REGEX_SAMPLER_H_
