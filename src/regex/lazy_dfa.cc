#include "regex/lazy_dfa.h"

#include <algorithm>

namespace mrpa {

LazyDfa::LazyDfa(Nfa nfa) : nfa_(std::move(nfa)) {
  std::vector<NfaPosition> start = {{nfa_.start(), true}};
  EpsilonClose(nfa_, start);
  StateSet initial;
  initial.reserve(start.size());
  for (const NfaPosition& pos : start) initial.push_back(pos.state);
  std::sort(initial.begin(), initial.end());
  initial.erase(std::unique(initial.begin(), initial.end()), initial.end());
  start_state_ = InternState(std::move(initial));
}

Result<LazyDfa> LazyDfa::Compile(const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  if (!nfa->IsJointOnly()) {
    return Status::InvalidArgument(
        "expression contains ×◦ seams; deterministic execution is "
        "restricted to joint-only expressions");
  }
  return LazyDfa(std::move(nfa).value());
}

uint32_t LazyDfa::Step(uint32_t state, const Edge& e) {
  std::string signature = SignatureOf(e);
  auto [class_it, inserted] = class_of_signature_.try_emplace(
      signature, static_cast<uint32_t>(class_of_signature_.size()));
  const uint32_t edge_class = class_it->second;
  (void)inserted;

  auto& cache = transition_cache_[state];
  auto it = cache.find(edge_class);
  if (it != cache.end()) return it->second;
  return ComputeStep(state, edge_class, signature);
}

std::string LazyDfa::SignatureOf(const Edge& e) const {
  std::string signature(nfa_.patterns().size(), '0');
  for (size_t i = 0; i < nfa_.patterns().size(); ++i) {
    if (nfa_.patterns()[i].Matches(e)) signature[i] = '1';
  }
  return signature;
}

uint32_t LazyDfa::InternState(StateSet states) {
  std::string key;
  key.reserve(states.size() * sizeof(uint32_t));
  for (uint32_t s : states) {
    key.append(reinterpret_cast<const char*>(&s), sizeof(s));
  }
  auto [it, inserted] = state_of_key_.try_emplace(
      key, static_cast<uint32_t>(dfa_states_.size()));
  if (inserted) {
    accepting_.push_back(std::binary_search(states.begin(), states.end(),
                                            nfa_.accept()));
    dfa_states_.push_back(std::move(states));
    transition_cache_.emplace_back();
  }
  return it->second;
}

uint32_t LazyDfa::ComputeStep(uint32_t dfa_state, uint32_t edge_class,
                              const std::string& signature) {
  // Every consume transition whose pattern bit is set fires; ε-close the
  // target set. Break flags are irrelevant (joint-only), so positions
  // collapse to bare states.
  std::vector<NfaPosition> next;
  for (uint32_t s : dfa_states_[dfa_state]) {
    for (const NfaTransition& t : nfa_.TransitionsFrom(s)) {
      if (t.type != NfaTransition::Type::kConsume) continue;
      if (signature[t.pattern_id] != '1') continue;
      next.push_back({t.target, false});
    }
  }
  uint32_t result = kDead;
  if (!next.empty()) {
    EpsilonClose(nfa_, next);
    StateSet states;
    states.reserve(next.size());
    for (const NfaPosition& pos : next) states.push_back(pos.state);
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    result = InternState(std::move(states));
  }
  // Index freshly: InternState may have grown transition_cache_,
  // invalidating earlier references.
  transition_cache_[dfa_state].emplace(edge_class, result);
  return result;
}

}  // namespace mrpa
