// Regular path generators (§IV-B).
//
// A generator enumerates every path in a bound graph G that a regular path
// expression recognizes. Two engines, identical outputs (a property the
// tests exercise):
//
//   * StackMachineGenerator — the paper's construction, literally: a
//     non-deterministic single-stack automaton whose stack alphabet is
//     P(E*). The stack starts at {ε}; every transition pops the working
//     path set, joins it on the right with the transition's edge set
//     (⋈◦ across joint seams, ×◦ after a break seam), and pushes the
//     result. Branches run "in parallel" — implemented as a level-
//     synchronous frontier where configurations at the same automaton
//     state merge their path sets (the union across clones the paper
//     describes). A branch halts on ∅ (empty working set) and contributes
//     its working set at every accept-state visit.
//
//   * ProductGraphGenerator — the engineering counterpart: walks the
//     implicit product of the automaton and the graph, extending each
//     frontier path only with the out-edges of its head vertex (index
//     lookup) instead of joining against the transition's full edge set.
//     Asymptotically the same output, far less wasted matching; the E6
//     bench quantifies the gap.
//
// Cyclic graphs make star languages infinite, so generation is bounded by
// GenerateOptions::max_path_length; `truncated` reports whether the bound
// was hit (false means the result is the complete language restricted to G).

#ifndef MRPA_REGEX_GENERATOR_H_
#define MRPA_REGEX_GENERATOR_H_

#include <cstddef>

#include "core/edge_universe.h"
#include "core/expr.h"
#include "core/path_set.h"
#include "regex/nfa.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

struct GenerateOptions {
  // Paths longer than this are not explored. The frontier at length L only
  // creates paths of length L+1, so generation always terminates.
  size_t max_path_length = 16;
  // Soft cap on accepted paths: once the accumulated output passes this,
  // generation stops at the end of the current round with truncated=true
  // (the returned set may slightly exceed the cap).
  std::optional<size_t> max_paths;
  // Optional execution guard: the deadline, step budget, byte budget, and
  // path budget are polled per frontier position and per materialized push.
  // A trip degrades gracefully — the paths accepted so far come back with
  // truncated=true and GenerateResult::limit carrying the trip Status.
  // Not owned; may be null (ungoverned).
  ExecContext* exec = nullptr;
};

struct GenerateResult {
  PathSet paths;
  // True when the length bound, the max_paths cap, or an execution-guard
  // trip stopped exploration while live branches remained (the language
  // may extend past what was enumerated).
  bool truncated = false;
  // OK unless an execution guard tripped; then the tripping Status
  // (kResourceExhausted / kDeadlineExceeded / kCancelled).
  Status limit;
  // Number of frontier expansion rounds executed.
  size_t rounds = 0;
};

// The literal §IV-B stack machine.
class StackMachineGenerator {
 public:
  static Result<StackMachineGenerator> Compile(const PathExpr& expr);

  Result<GenerateResult> Generate(const EdgeUniverse& universe,
                                  const GenerateOptions& options = {}) const;

  const Nfa& nfa() const { return nfa_; }

 private:
  explicit StackMachineGenerator(Nfa nfa) : nfa_(std::move(nfa)) {}
  Nfa nfa_;
};

// The index-backed product-graph search.
class ProductGraphGenerator {
 public:
  static Result<ProductGraphGenerator> Compile(const PathExpr& expr);

  Result<GenerateResult> Generate(const EdgeUniverse& universe,
                                  const GenerateOptions& options = {}) const;

  const Nfa& nfa() const { return nfa_; }

 private:
  explicit ProductGraphGenerator(Nfa nfa) : nfa_(std::move(nfa)) {}
  Nfa nfa_;
};

// Convenience: compiles and runs the product-graph generator.
Result<GenerateResult> GeneratePaths(const PathExpr& expr,
                                     const EdgeUniverse& universe,
                                     const GenerateOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_REGEX_GENERATOR_H_
