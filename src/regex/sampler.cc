#include "regex/sampler.h"

#include <limits>

namespace mrpa {

namespace {

// Saturating addition keeps overflow detectable without UB.
uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a > std::numeric_limits<uint64_t>::max() - b
             ? std::numeric_limits<uint64_t>::max()
             : a + b;
}

}  // namespace

Result<PathSampler> PathSampler::Compile(const PathExpr& expr) {
  Result<LazyDfa> dfa = LazyDfa::Compile(expr);
  if (!dfa.ok()) return dfa.status();
  return PathSampler(std::move(dfa).value());
}

uint64_t PathSampler::Completions(uint32_t state, VertexId vertex,
                                  uint32_t remaining) {
  Key key{state, vertex, remaining};
  if (auto it = completion_counts_.find(key);
      it != completion_counts_.end()) {
    return it->second;
  }
  if (options_.exec != nullptr) {
    if (guard_status_.ok()) {
      Status trip = options_.exec->CheckStep();
      if (trip.ok()) {
        trip = options_.exec->ChargeBytes(sizeof(Key) + sizeof(uint64_t));
      }
      if (!trip.ok()) guard_status_ = std::move(trip);
    }
    // Once tripped, unwind without memoizing: the zeros are placeholders,
    // not counts, and the caller surfaces guard_status_ instead.
    if (!guard_status_.ok()) return 0;
  }
  // "Stop here" is a completion iff the state accepts.
  uint64_t total = dfa_.accepting(state) ? 1 : 0;
  if (remaining > 0) {
    for (const Edge& e : universe_->OutEdges(vertex)) {
      uint32_t next = dfa_.Step(state, e);
      if (next == LazyDfa::kDead) continue;
      total = SaturatingAdd(total, Completions(next, e.head, remaining - 1));
    }
  }
  if (total == std::numeric_limits<uint64_t>::max()) overflowed_ = true;
  completion_counts_.emplace(key, total);
  return total;
}

Status PathSampler::Prepare(const EdgeUniverse& universe,
                            const SampleOptions& options) {
  universe_ = &universe;
  options_ = options;
  completion_counts_.clear();
  overflowed_ = false;
  guard_status_ = Status::OK();
  rng_.Seed(options.seed);

  epsilon_accepted_ = dfa_.accepting(dfa_.start());
  language_size_ = epsilon_accepted_ ? 1 : 0;
  if (options.max_path_length > 0) {
    for (const Edge& e : universe.AllEdges()) {
      uint32_t next = dfa_.Step(dfa_.start(), e);
      if (next == LazyDfa::kDead) continue;
      language_size_ = SaturatingAdd(
          language_size_,
          Completions(next, e.head,
                      static_cast<uint32_t>(options.max_path_length) - 1));
    }
  }
  if (!guard_status_.ok()) {
    prepared_ = false;
    return guard_status_;
  }
  if (overflowed_ ||
      language_size_ == std::numeric_limits<uint64_t>::max()) {
    prepared_ = false;
    return Status::InvalidArgument(
        "language size overflows uint64; lower max_path_length");
  }
  if (language_size_ == 0) {
    prepared_ = false;
    return Status::InvalidArgument(
        "the bounded language is empty; nothing to sample");
  }
  prepared_ = true;
  return Status::OK();
}

Result<Path> PathSampler::Sample() {
  if (!prepared_) {
    return Status::InvalidArgument("Prepare() must succeed before Sample()");
  }
  // Draw a rank in [0, language_size) and walk the counting table.
  uint64_t rank = rng_.Below(language_size_);

  if (epsilon_accepted_) {
    if (rank == 0) return Path();
    rank -= 1;
  }

  Path path;
  uint32_t state = dfa_.start();
  VertexId vertex = kInvalidVertex;
  uint32_t remaining = static_cast<uint32_t>(options_.max_path_length);

  // First edge: drawn from the whole edge set.
  for (const Edge& e : universe_->AllEdges()) {
    if (options_.exec != nullptr) {
      MRPA_RETURN_IF_ERROR(options_.exec->CheckStep());
    }
    uint32_t next = dfa_.Step(state, e);
    if (next == LazyDfa::kDead) continue;
    uint64_t below = Completions(next, e.head, remaining - 1);
    if (!guard_status_.ok()) return guard_status_;
    if (rank < below) {
      path.Append(e);
      state = next;
      vertex = e.head;
      remaining -= 1;
      break;
    }
    rank -= below;
  }
  if (path.empty()) {
    return Status::Internal("sampler rank walked past the language");
  }

  // Subsequent edges: either stop (if accepting) or continue.
  while (true) {
    if (dfa_.accepting(state)) {
      if (rank == 0) return path;
      rank -= 1;
    }
    if (remaining == 0) {
      return Status::Internal("sampler rank exceeded completions");
    }
    bool stepped = false;
    for (const Edge& e : universe_->OutEdges(vertex)) {
      if (options_.exec != nullptr) {
        MRPA_RETURN_IF_ERROR(options_.exec->CheckStep());
      }
      uint32_t next = dfa_.Step(state, e);
      if (next == LazyDfa::kDead) continue;
      uint64_t below = Completions(next, e.head, remaining - 1);
      if (!guard_status_.ok()) return guard_status_;
      if (rank < below) {
        path.Append(e);
        state = next;
        vertex = e.head;
        remaining -= 1;
        stepped = true;
        break;
      }
      rank -= below;
    }
    if (!stepped) {
      return Status::Internal("sampler rank exceeded completions");
    }
  }
}

Result<std::vector<Path>> PathSampler::SampleMany(size_t count) {
  std::vector<Path> samples;
  samples.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    Result<Path> sample = Sample();
    if (!sample.ok()) return sample.status();
    samples.push_back(std::move(sample).value());
  }
  return samples;
}

}  // namespace mrpa
