#include "regex/dfa_minimizer.h"

#include <algorithm>
#include <map>

#include "regex/lazy_dfa.h"

namespace mrpa {

namespace {

// The fully materialized, total automaton before minimization.
struct FullDfa {
  uint32_t start = 0;
  uint32_t dead = 0;  // Total: missing transitions route here.
  std::vector<bool> accepting;
  std::vector<std::vector<uint32_t>> transitions;
  std::vector<EdgePattern> patterns;
  std::unordered_map<std::string, uint32_t> class_of_signature;
};

Result<FullDfa> Materialize(const PathExpr& expr,
                            const EdgeUniverse& universe) {
  Result<LazyDfa> lazy = LazyDfa::Compile(expr);
  if (!lazy.ok()) return lazy.status();

  FullDfa full;
  full.patterns = lazy->nfa().patterns();

  // Discover every edge class occurring in the universe. One representative
  // edge per class is kept to drive the lazy automaton.
  std::vector<Edge> representative;
  for (const Edge& e : universe.AllEdges()) {
    std::string signature(full.patterns.size(), '0');
    for (size_t i = 0; i < full.patterns.size(); ++i) {
      if (full.patterns[i].Matches(e)) signature[i] = '1';
    }
    auto [it, inserted] = full.class_of_signature.try_emplace(
        signature, static_cast<uint32_t>(representative.size()));
    if (inserted) representative.push_back(e);
  }
  const size_t num_classes = representative.size();

  // Drive the lazy automaton to closure: BFS over its states across all
  // classes. Lazy state ids are dense and stable, so we can index by them.
  std::vector<std::vector<uint32_t>> lazy_transitions;
  std::vector<bool> lazy_accepting;
  size_t explored = 0;
  lazy_transitions.emplace_back();  // Start state row; filled below.
  lazy_accepting.push_back(lazy->accepting(lazy->start()));
  while (explored < lazy_transitions.size()) {
    const uint32_t state = static_cast<uint32_t>(explored);
    lazy_transitions[state].assign(num_classes, LazyDfa::kDead);
    for (size_t c = 0; c < num_classes; ++c) {
      uint32_t next = lazy->Step(state, representative[c]);
      lazy_transitions[state][c] = next;
      while (next != LazyDfa::kDead && next >= lazy_transitions.size()) {
        lazy_transitions.emplace_back();
        lazy_accepting.push_back(
            lazy->accepting(static_cast<uint32_t>(lazy_transitions.size()) -
                            1));
      }
    }
    ++explored;
  }

  // Totalize with a dead sink.
  const uint32_t dead = static_cast<uint32_t>(lazy_transitions.size());
  full.start = lazy->start();
  full.dead = dead;
  full.accepting = lazy_accepting;
  full.accepting.push_back(false);
  full.transitions = std::move(lazy_transitions);
  full.transitions.emplace_back(num_classes, dead);
  for (uint32_t s = 0; s < dead; ++s) {
    for (size_t c = 0; c < num_classes; ++c) {
      if (full.transitions[s][c] == LazyDfa::kDead) {
        full.transitions[s][c] = dead;
      }
    }
  }
  return full;
}

// Moore partition refinement: start from {accepting, rejecting}, split
// blocks whose members disagree on some (class → block) successor until a
// fixed point.
std::vector<uint32_t> Refine(const FullDfa& full) {
  const size_t n = full.accepting.size();
  const size_t num_classes =
      full.transitions.empty() ? 0 : full.transitions[0].size();
  std::vector<uint32_t> block(n);
  for (size_t s = 0; s < n; ++s) block[s] = full.accepting[s] ? 1 : 0;

  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of a state: (current block, successor blocks per class).
    std::map<std::vector<uint32_t>, uint32_t> new_ids;
    std::vector<uint32_t> next_block(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<uint32_t> signature;
      signature.reserve(num_classes + 1);
      signature.push_back(block[s]);
      for (size_t c = 0; c < num_classes; ++c) {
        signature.push_back(block[full.transitions[s][c]]);
      }
      auto [it, inserted] = new_ids.try_emplace(
          std::move(signature), static_cast<uint32_t>(new_ids.size()));
      next_block[s] = it->second;
    }
    // The refinement only ever splits blocks, so the partition changed iff
    // the block count grew.
    const size_t old_blocks =
        block.empty() ? 0 : *std::max_element(block.begin(), block.end()) + 1;
    changed = new_ids.size() != old_blocks;
    block = std::move(next_block);
  }
  return block;
}

}  // namespace

Result<MinimizedDfa> BuildMinimizedDfa(const PathExpr& expr,
                                       const EdgeUniverse& universe) {
  Result<FullDfa> full = Materialize(expr, universe);
  if (!full.ok()) return full.status();

  std::vector<uint32_t> block = Refine(full.value());
  const uint32_t num_blocks =
      block.empty() ? 0 : *std::max_element(block.begin(), block.end()) + 1;
  const size_t num_classes =
      full->transitions.empty() ? 0 : full->transitions[0].size();

  MinimizedDfa minimized;
  minimized.start_ = block[full->start];
  minimized.num_classes_ = num_classes;
  minimized.accepting_.assign(num_blocks, false);
  minimized.transitions_.assign(num_blocks,
                                std::vector<uint32_t>(num_classes, 0));
  for (size_t s = 0; s < full->accepting.size(); ++s) {
    if (full->accepting[s]) minimized.accepting_[block[s]] = true;
    for (size_t c = 0; c < num_classes; ++c) {
      minimized.transitions_[block[s]][c] = block[full->transitions[s][c]];
    }
  }
  minimized.patterns_ = full->patterns;
  minimized.class_of_signature_ = full->class_of_signature;
  return minimized;
}

std::optional<uint32_t> MinimizedDfa::ClassOf(const Edge& e) const {
  std::string signature(patterns_.size(), '0');
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].Matches(e)) signature[i] = '1';
  }
  auto it = class_of_signature_.find(signature);
  if (it == class_of_signature_.end()) return std::nullopt;
  return it->second;
}

Result<bool> MinimizedDfa::Recognize(const Path& path) const {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "minimized-DFA recognition requires a joint input path");
  }
  uint32_t state = start_;
  for (const Edge& e : path) {
    std::optional<uint32_t> edge_class = ClassOf(e);
    if (!edge_class.has_value()) {
      // Signature never seen in the bound universe. If it matches no
      // pattern at all (all-zero), it certainly dies; other unseen
      // signatures cannot arise for edges of the universe, so reject.
      return false;
    }
    state = transitions_[state][*edge_class];
  }
  return static_cast<bool>(accepting_[state]);
}

Result<DfaSizeReport> MeasureMinimization(const PathExpr& expr,
                                          const EdgeUniverse& universe) {
  Result<FullDfa> full = Materialize(expr, universe);
  if (!full.ok()) return full.status();
  Result<MinimizedDfa> minimized = BuildMinimizedDfa(expr, universe);
  if (!minimized.ok()) return minimized.status();
  DfaSizeReport report;
  report.materialized_states = full->accepting.size();
  report.minimized_states = minimized->num_states();
  report.edge_classes = full->class_of_signature.size();
  return report;
}

}  // namespace mrpa
