#include "regex/derived_relations.h"

#include <cmath>

namespace mrpa {

Result<WeightedBinaryGraph> DeriveCountedRelation(
    const PathExpr& expr, const MultiRelationalGraph& graph,
    const AnalysisOptions& options) {
  Result<PathCounter> analyzer = PathCounter::Compile(expr);
  if (!analyzer.ok()) return analyzer.status();
  Result<PathCounter::PairResult> result =
      analyzer->AnalyzePairs(graph, options);
  if (!result.ok()) return result.status();

  std::vector<std::tuple<VertexId, VertexId, double>> arcs;
  arcs.reserve(result->pairs.size());
  for (const auto& [pair, count] : result->pairs) {
    arcs.emplace_back(pair.first, pair.second,
                      static_cast<double>(count));
  }
  return WeightedBinaryGraph::FromArcs(graph.num_vertices(),
                                       std::move(arcs));
}

Result<WeightedBinaryGraph> DeriveShortestRelation(
    const PathExpr& expr, const MultiRelationalGraph& graph,
    const AnalysisOptions& options) {
  Result<ShortestPathAnalyzer> analyzer =
      ShortestPathAnalyzer::Compile(expr);
  if (!analyzer.ok()) return analyzer.status();
  Result<ShortestPathAnalyzer::PairResult> result =
      analyzer->AnalyzePairs(graph, options);
  if (!result.ok()) return result.status();

  std::vector<std::tuple<VertexId, VertexId, double>> arcs;
  arcs.reserve(result->pairs.size());
  for (const auto& [pair, distance] : result->pairs) {
    if (!std::isfinite(distance)) continue;
    arcs.emplace_back(pair.first, pair.second, distance);
  }
  return WeightedBinaryGraph::FromArcs(graph.num_vertices(),
                                       std::move(arcs));
}

}  // namespace mrpa
