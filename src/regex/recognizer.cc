#include "regex/recognizer.h"

#include <algorithm>

namespace mrpa {

Result<NfaRecognizer> NfaRecognizer::Compile(const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return NfaRecognizer(std::move(nfa).value());
}

bool NfaRecognizer::Recognize(const Path& path) const {
  // Ungoverned simulation never fails: the null-context impl only returns
  // a non-OK Status when a guard is present.
  return RecognizeImpl(path, nullptr).value();
}

Result<bool> NfaRecognizer::Recognize(const Path& path,
                                      ExecContext& ctx) const {
  return RecognizeImpl(path, &ctx);
}

Result<bool> NfaRecognizer::RecognizeImpl(const Path& path,
                                          ExecContext* ctx) const {
  // Position 0 has no previous edge, so adjacency is vacuously satisfied:
  // start with the break armed.
  std::vector<NfaPosition> current = {{nfa_.start(), true}};
  EpsilonClose(nfa_, current);

  for (size_t n = 0; n < path.length(); ++n) {
    if (ctx != nullptr) {
      // The frontier width is the per-edge simulation cost.
      MRPA_RETURN_IF_ERROR(ctx->CheckStep(current.size() + 1));
    }
    const Edge& e = path.edge(n);
    const bool adjacent = n == 0 || path.edge(n - 1).head == e.tail;
    std::vector<NfaPosition> next;
    for (const NfaPosition& pos : current) {
      if (!pos.break_armed && !adjacent) continue;
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        if (!nfa_.patterns()[t.pattern_id].Matches(e)) continue;
        next.push_back({t.target, false});
      }
    }
    if (next.empty()) return false;
    EpsilonClose(nfa_, next);
    current = std::move(next);
  }

  return std::any_of(current.begin(), current.end(),
                     [&](const NfaPosition& pos) {
                       return pos.state == nfa_.accept();
                     });
}

Result<DfaRecognizer> DfaRecognizer::Compile(const PathExpr& expr) {
  Result<LazyDfa> dfa = LazyDfa::Compile(expr);
  if (!dfa.ok()) {
    if (dfa.status().IsInvalidArgument()) {
      return Status::InvalidArgument(
          "expression contains ×◦ seams; DFA recognition is restricted to "
          "joint-only expressions — use NfaRecognizer");
    }
    return dfa.status();
  }
  return DfaRecognizer(std::move(dfa).value());
}

Result<bool> DfaRecognizer::Recognize(const Path& path) {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "DFA recognition requires a joint input path");
  }
  uint32_t state = dfa_.start();
  for (const Edge& e : path) {
    state = dfa_.Step(state, e);
    if (state == LazyDfa::kDead) return false;
  }
  return dfa_.accepting(state);
}

Result<bool> DfaRecognizer::Recognize(const Path& path, ExecContext& ctx) {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "DFA recognition requires a joint input path");
  }
  uint32_t state = dfa_.start();
  for (const Edge& e : path) {
    // One step per edge; lazy determinization may materialize a state here.
    MRPA_RETURN_IF_ERROR(ctx.CheckStep());
    state = dfa_.Step(state, e);
    if (state == LazyDfa::kDead) return false;
  }
  return dfa_.accepting(state);
}

}  // namespace mrpa
