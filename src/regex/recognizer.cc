#include "regex/recognizer.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mrpa {

Result<NfaRecognizer> NfaRecognizer::Compile(const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return NfaRecognizer(std::move(nfa).value());
}

bool NfaRecognizer::Recognize(const Path& path) const {
  // Ungoverned simulation never fails: the null-context impl only returns
  // a non-OK Status when a guard is present.
  return RecognizeImpl(path.edges(), nullptr).value();
}

Result<bool> NfaRecognizer::Recognize(const Path& path,
                                      ExecContext& ctx) const {
  return RecognizeImpl(path.edges(), &ctx);
}

bool NfaRecognizer::Recognize(std::span<const Edge> edges) const {
  return RecognizeImpl(edges, nullptr).value();
}

Result<bool> NfaRecognizer::Recognize(std::span<const Edge> edges,
                                      ExecContext& ctx) const {
  return RecognizeImpl(edges, &ctx);
}

Result<bool> NfaRecognizer::RecognizeImpl(std::span<const Edge> edges,
                                          ExecContext* ctx,
                                          std::vector<uint32_t>* widths) const {
  // Position 0 has no previous edge, so adjacency is vacuously satisfied:
  // start with the break armed.
  std::vector<NfaPosition> current = {{nfa_.start(), true}};
  EpsilonClose(nfa_, current);

  for (size_t n = 0; n < edges.size(); ++n) {
    if (widths != nullptr) {
      widths->push_back(static_cast<uint32_t>(current.size()));
    }
    if (ctx != nullptr) {
      // The frontier width is the per-edge simulation cost.
      MRPA_RETURN_IF_ERROR(ctx->CheckStep(current.size() + 1));
    }
    const Edge& e = edges[n];
    const bool adjacent = n == 0 || edges[n - 1].head == e.tail;
    std::vector<NfaPosition> next;
    for (const NfaPosition& pos : current) {
      if (!pos.break_armed && !adjacent) continue;
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        if (!nfa_.patterns()[t.pattern_id].Matches(e)) continue;
        next.push_back({t.target, false});
      }
    }
    if (next.empty()) return false;
    EpsilonClose(nfa_, next);
    current = std::move(next);
  }

  return std::any_of(current.begin(), current.end(),
                     [&](const NfaPosition& pos) {
                       return pos.state == nfa_.accept();
                     });
}

PathSet NfaRecognizer::AcceptedSubset(const PathSet& candidates,
                                      ThreadPool* pool) const {
  const std::vector<Path>& paths = candidates.paths();
  std::vector<uint8_t> accepted(paths.size(), 0);
  auto judge = [&](size_t i) { accepted[i] = Recognize(paths[i]) ? 1 : 0; };
  if (pool == nullptr || paths.size() < 2) {
    for (size_t i = 0; i < paths.size(); ++i) judge(i);
  } else {
    // Chunk rather than one task per path: recognition of a short path is
    // far cheaper than a task dispatch.
    const size_t num_shards = std::min(pool->num_threads() * 4, paths.size());
    const size_t base = paths.size() / num_shards;
    const size_t extra = paths.size() % num_shards;
    pool->ParallelFor(num_shards, [&](size_t s) {
      size_t begin = s * base + std::min(s, extra);
      size_t end = begin + base + (s < extra ? 1 : 0);
      for (size_t i = begin; i < end; ++i) judge(i);
    });
  }
  std::vector<Path> kept;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (accepted[i]) kept.push_back(paths[i]);
  }
  return PathSet::FromSortedUnique(std::move(kept));
}

Result<GovernedPathSet> NfaRecognizer::AcceptedSubsetGoverned(
    const PathSet& candidates, ExecContext& ctx, ThreadPool* pool) const {
  const std::vector<Path>& paths = candidates.paths();
  GovernedPathSet out;

  // Boundary observability: candidates counts paths judged to completion
  // (a mid-simulation trip leaves the path uncounted), accepted the kept
  // subset. The parallel branch counts from the REPLAY, never the shard
  // workers, so sequential and pooled batches report identical numbers.
  obs::ObsRegistry* const reg = ctx.observer();
  ExecStats obs_before;
  if (reg != nullptr) obs_before = ctx.Snapshot();
  ExecSpan batch_span(ctx, "recognizer.batch");
  size_t judged = 0;
  auto flush_obs = [&]() {
    if (reg == nullptr) return;
    reg->Add(obs::Metric::kRecognizerBatchCandidates, judged);
    reg->Add(obs::Metric::kRecognizerBatchAccepted, out.paths.size());
    AddExecStatsDelta(*reg, obs_before, ctx.Snapshot());
  };

  if (pool == nullptr || paths.size() < 2) {
    // The sequential reference: recognize in canonical order; the first
    // trip ends the scan with the accepted prefix.
    std::vector<Path> kept;
    for (const Path& p : paths) {
      Result<bool> verdict = RecognizeImpl(p.edges(), &ctx);
      if (!verdict.ok()) {
        out.truncated = true;
        out.limit = verdict.status();
        break;
      }
      ++judged;
      if (reg != nullptr) {
        reg->Record(obs::Hist::kRecognizerPathLength, p.length());
      }
      if (*verdict) kept.push_back(p);
    }
    out.paths = PathSet::FromSortedUnique(std::move(kept));
    flush_obs();
    out.stats = ctx.Snapshot();
    return out;
  }

  // Parallel: speculate per shard under quiet contexts, then replay the
  // recorded CheckStep arguments in candidate order — the same scheme as
  // TraverseParallelGoverned (see DESIGN.md, "Parallel traversal").
  struct PathRecord {
    std::vector<uint32_t> widths;
    bool accepted = false;
    bool tripped = false;  // The quiet context stopped this simulation.
  };
  struct Shard {
    std::vector<PathRecord> records;
    Status local_status;
  };
  const size_t num_shards = std::min(pool->num_threads() * 4, paths.size());
  const size_t base = paths.size() / num_shards;
  const size_t extra = paths.size() % num_shards;
  std::vector<Shard> shards(num_shards);
  pool->ParallelFor(num_shards, [&](size_t s) {
    size_t begin = s * base + std::min(s, extra);
    size_t end = begin + base + (s < extra ? 1 : 0);
    ExecContext quiet =
        ExecContext::ShardContext(ctx, ctx.RemainingLimits());
    Shard& shard = shards[s];
    shard.records.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      PathRecord& record = shard.records.emplace_back();
      Result<bool> verdict = RecognizeImpl(paths[i].edges(), &quiet, &record.widths);
      if (!verdict.ok()) {
        record.tripped = true;
        shard.local_status = quiet.limit_status();
        break;  // Speculation bound reached; later paths stay unrecorded.
      }
      record.accepted = *verdict;
    }
  });

  std::vector<Path> kept;
  size_t index = 0;
  for (const Shard& shard : shards) {
    for (const PathRecord& record : shard.records) {
      const Path& p = paths[index++];
      for (uint32_t width : record.widths) {
        if (!ctx.CheckStep(width + 1).ok()) {
          out.truncated = true;
          out.limit = ctx.limit_status();
          out.paths = PathSet::FromSortedUnique(std::move(kept));
          flush_obs();
          out.stats = ctx.Snapshot();
          return out;
        }
      }
      if (record.tripped) {
        // The quiet context tripped where the real one did not — possible
        // only for wall-clock limits. Stop with the shard's own status.
        out.truncated = true;
        out.limit = shard.local_status;
        out.paths = PathSet::FromSortedUnique(std::move(kept));
        flush_obs();
        out.stats = ctx.Snapshot();
        out.stats.truncated = true;
        return out;
      }
      ++judged;
      if (reg != nullptr) {
        reg->Record(obs::Hist::kRecognizerPathLength, p.length());
      }
      if (record.accepted) kept.push_back(p);
    }
    // A shard whose record list is shorter than its slice tripped; the
    // trip record above already ended the replay, so a shortfall here
    // means the shard never reached those paths — neither did the scan.
  }
  out.paths = PathSet::FromSortedUnique(std::move(kept));
  flush_obs();
  out.stats = ctx.Snapshot();
  return out;
}

Result<DfaRecognizer> DfaRecognizer::Compile(const PathExpr& expr) {
  Result<LazyDfa> dfa = LazyDfa::Compile(expr);
  if (!dfa.ok()) {
    if (dfa.status().IsInvalidArgument()) {
      return Status::InvalidArgument(
          "expression contains ×◦ seams; DFA recognition is restricted to "
          "joint-only expressions — use NfaRecognizer");
    }
    return dfa.status();
  }
  return DfaRecognizer(std::move(dfa).value());
}

Result<bool> DfaRecognizer::Recognize(const Path& path) {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "DFA recognition requires a joint input path");
  }
  uint32_t state = dfa_.start();
  for (const Edge& e : path) {
    state = dfa_.Step(state, e);
    if (state == LazyDfa::kDead) return false;
  }
  return dfa_.accepting(state);
}

Result<bool> DfaRecognizer::Recognize(const Path& path, ExecContext& ctx) {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "DFA recognition requires a joint input path");
  }
  uint32_t state = dfa_.start();
  for (const Edge& e : path) {
    // One step per edge; lazy determinization may materialize a state here.
    MRPA_RETURN_IF_ERROR(ctx.CheckStep());
    state = dfa_.Step(state, e);
    if (state == LazyDfa::kDead) return false;
  }
  return dfa_.accepting(state);
}

}  // namespace mrpa
