// Weighted §IV-C derivations: from "which endpoint pairs does an accepted
// path connect" (the paper's E_αβ) to "how strongly" — the arc weight is
// the number of witnessing paths (or any other semiring aggregate).
//
// This is the bridge between the regular-path machinery and the weighted
// single-relational consumers (graph/weighted_graph.h): e.g. a co-citation
// strength graph is DeriveCountedRelation over
// [_, cites, _] ⋈◦ ... and its WeightedPageRank ranks papers by how often
// they are co-witnessed.

#ifndef MRPA_REGEX_DERIVED_RELATIONS_H_
#define MRPA_REGEX_DERIVED_RELATIONS_H_

#include "core/expr.h"
#include "graph/multi_graph.h"
#include "graph/weighted_graph.h"
#include "regex/path_analysis.h"
#include "util/status.h"

namespace mrpa {

// Arc (u, v) with weight = number of accepted joint paths from u to v of
// length ≤ options.max_path_length. Joint-only expressions (the LazyDfa
// restriction). ε contributes no arc.
Result<WeightedBinaryGraph> DeriveCountedRelation(
    const PathExpr& expr, const MultiRelationalGraph& graph,
    const AnalysisOptions& options = {});

// Arc (u, v) with weight = hop count of the SHORTEST accepted u→v path —
// a distance-flavored relation (smaller is closer).
Result<WeightedBinaryGraph> DeriveShortestRelation(
    const PathExpr& expr, const MultiRelationalGraph& graph,
    const AnalysisOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_REGEX_DERIVED_RELATIONS_H_
