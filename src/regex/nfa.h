// ε-NFA over the edge alphabet E, built from a PathExpr by the Thompson
// construction (§IV-A: a regular expression over E has a corresponding
// finite state automaton whose transition function is based on edge-set
// membership).
//
// Two departures from the textbook construction make the automaton exact
// for the *path* algebra rather than the plain string algebra:
//
//   1. Consuming transitions carry an EdgePattern (a set of edges), not a
//      single symbol — the paper's transition-on-set-membership (footnote 9).
//   2. Concatenation seams differ by operator. A ⋈◦ seam requires the next
//      consumed edge to be adjacent to the previous one (γ+ = γ−); a ×◦
//      seam does not. The NFA encodes the latter as a distinguished kBreak
//      ε-transition: crossing it arms a one-shot "adjacency waiver" that the
//      next consumption spends. All other consumptions demand adjacency,
//      which is exactly the jointness structure ⋈◦ induces.
//
// The start state has no in-transitions and the single accept state has no
// out-transitions (standard Thompson invariants); recognizer and generator
// both rely on this.

#ifndef MRPA_REGEX_NFA_H_
#define MRPA_REGEX_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/edge_pattern.h"
#include "core/expr.h"
#include "util/status.h"

namespace mrpa {

struct NfaTransition {
  enum class Type : uint8_t {
    kEpsilon,  // Move without consuming.
    kBreak,    // Move without consuming; waive adjacency for next consume.
    kConsume,  // Consume one edge matching patterns()[pattern_id].
  };

  Type type;
  uint32_t target;
  uint32_t pattern_id = 0;  // Meaningful for kConsume only.
};

class Nfa {
 public:
  uint32_t num_states() const {
    return static_cast<uint32_t>(transitions_.size());
  }
  uint32_t start() const { return start_; }
  uint32_t accept() const { return accept_; }

  const std::vector<NfaTransition>& TransitionsFrom(uint32_t state) const {
    return transitions_[state];
  }
  const std::vector<EdgePattern>& patterns() const { return patterns_; }

  // True when no kBreak transition exists; such automata recognize only
  // joint paths and are eligible for the DFA fast path.
  bool IsJointOnly() const { return joint_only_; }

  size_t num_transitions() const;

  // Human-readable dump, one transition per line; for debugging and the
  // examples.
  std::string ToString() const;

 private:
  friend class ThompsonBuilder;

  uint32_t start_ = 0;
  uint32_t accept_ = 0;
  bool joint_only_ = true;
  std::vector<std::vector<NfaTransition>> transitions_;  // Per state.
  std::vector<EdgePattern> patterns_;
};

// Compiles `expr` into an ε-NFA. Fails with InvalidArgument when a kPower
// node has an unreasonably large exponent (the construction unrolls powers).
Result<Nfa> CompileToNfa(const PathExpr& expr);

// The ε-closure machinery shared by recognizer and generator: a simulation
// position is (state, break_armed). Closure follows kEpsilon (preserving the
// flag) and kBreak (setting it).
struct NfaPosition {
  uint32_t state;
  bool break_armed;

  friend auto operator<=>(const NfaPosition&, const NfaPosition&) = default;
};

// Expands `positions` to their ε/break closure in place (sorted, unique).
void EpsilonClose(const Nfa& nfa, std::vector<NfaPosition>& positions);

}  // namespace mrpa

#endif  // MRPA_REGEX_NFA_H_
