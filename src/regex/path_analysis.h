// Semiring-weighted analysis of regular path languages — computing over the
// language of an expression restricted to a graph WITHOUT enumerating it.
//
// The language {a ∈ E* | a joint, a ∈ L(R)} restricted to a finite graph can
// be exponentially large (or infinite under star), yet questions like
//   * how many accepted paths of length ≤ L connect u to v   (counting)
//   * is v reachable from u along an accepted path            (boolean)
//   * what is the cheapest accepted u→v path                  (tropical)
// are answered in polynomial time by dynamic programming over the product
// of the (lazily determinized) automaton and the graph:
//
//   value[(q, u, v)] = ⊕ over accepted runs ending in DFA state q that
//                      started at vertex u and currently stand at v
//
// Determinism is what makes the counting exact: each accepted path has
// exactly one DFA run, so paths are never double-counted the way ambiguous
// NFA runs would be. Consequently the analyzer shares LazyDfa's restriction
// to joint-only expressions.
//
// §IV-C connection: AnalyzePairs with the counting semiring is the weighted
// generalization of the paper's E_αβ projection — instead of just which
// (γ−, γ+) endpoint pairs are connected by an accepted path, it reports
// how many witnesses each pair has (e.g. co-citation *strength* rather
// than mere co-citation).

#ifndef MRPA_REGEX_PATH_ANALYSIS_H_
#define MRPA_REGEX_PATH_ANALYSIS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "core/edge_universe.h"
#include "core/expr.h"
#include "core/semiring.h"
#include "regex/lazy_dfa.h"
#include "util/status.h"

namespace mrpa {

struct AnalysisOptions {
  // Paths longer than this do not contribute. Star languages over cyclic
  // graphs are infinite, so a bound is always required; for counting it is
  // part of the question ("paths of length ≤ L"), for tropical/boolean a
  // bound of num_vertices() × automaton states is exact (longer accepted
  // paths cannot improve min/∨ aggregates — they revisit a (state, vertex)
  // pair).
  size_t max_path_length = 16;
  // Abort if the live DP frontier exceeds this many (state, vertex[, tail])
  // items.
  size_t max_frontier = 1 << 22;
};

template <typename S>
class RegularPathAnalyzer {
 public:
  using Value = typename S::Value;
  // Per-edge weight; defaults to S::UnitEdgeWeight() for every edge.
  using WeightFn = std::function<Value(const Edge&)>;

  // Endpoint-pair aggregates: (γ−, γ+) → ⊕-sum of accepted path weights.
  struct PairResult {
    std::map<std::pair<VertexId, VertexId>, Value> pairs;
    // ε ∈ L(R): the empty path is accepted but has no endpoints; reported
    // out of band.
    bool epsilon_accepted = false;
    // True when the length bound stopped a still-live frontier.
    bool truncated = false;
  };

  // Fails with InvalidArgument for expressions with ×◦ seams.
  static Result<RegularPathAnalyzer> Compile(const PathExpr& expr) {
    Result<LazyDfa> dfa = LazyDfa::Compile(expr);
    if (!dfa.ok()) return dfa.status();
    return RegularPathAnalyzer(std::move(dfa).value());
  }

  // Full (tail, head) table. O(L · states · V · d̄) time with a frontier of
  // at most states · V² items.
  Result<PairResult> AnalyzePairs(const EdgeUniverse& universe,
                                  const AnalysisOptions& options = {},
                                  const WeightFn& weight = nullptr) {
    return Analyze(universe, options, weight, /*track_tails=*/true);
  }

  // The ⊕-total over the whole (bounded) language; cheaper — the DP drops
  // the tail dimension. Includes ε's contribution (weight One) if accepted.
  Result<Value> AnalyzeTotal(const EdgeUniverse& universe,
                             const AnalysisOptions& options = {},
                             const WeightFn& weight = nullptr) {
    Result<PairResult> result =
        Analyze(universe, options, weight, /*track_tails=*/false);
    if (!result.ok()) return result.status();
    Value total = result->epsilon_accepted ? S::One() : S::Zero();
    for (const auto& [pair, value] : result->pairs) {
      total = S::Plus(total, value);
    }
    return total;
  }

  size_t num_dfa_states() const { return dfa_.num_states(); }

 private:
  explicit RegularPathAnalyzer(LazyDfa dfa) : dfa_(std::move(dfa)) {}

  // DP key: (dfa_state, tail, head); when !track_tails, tail is fixed to
  // kInvalidVertex and pairs are keyed by (kInvalidVertex, head).
  struct Item {
    uint32_t state;
    VertexId tail;
    VertexId head;
    friend auto operator<=>(const Item&, const Item&) = default;
  };

  Result<PairResult> Analyze(const EdgeUniverse& universe,
                             const AnalysisOptions& options,
                             const WeightFn& weight, bool track_tails) {
    auto edge_weight = [&](const Edge& e) -> Value {
      return weight ? weight(e) : S::UnitEdgeWeight();
    };

    PairResult result;
    result.epsilon_accepted = dfa_.accepting(dfa_.start());

    // Seed: every edge in E taken as a first step.
    std::map<Item, Value> frontier;
    for (const Edge& e : universe.AllEdges()) {
      uint32_t next = dfa_.Step(dfa_.start(), e);
      if (next == LazyDfa::kDead) continue;
      Item item{next, track_tails ? e.tail : kInvalidVertex, e.head};
      auto [it, inserted] = frontier.try_emplace(item, edge_weight(e));
      if (!inserted) it->second = S::Plus(it->second, edge_weight(e));
    }

    for (size_t length = 1; length <= options.max_path_length; ++length) {
      // Harvest accepted items at this length.
      for (const auto& [item, value] : frontier) {
        if (!dfa_.accepting(item.state)) continue;
        auto key = std::make_pair(item.tail, item.head);
        auto [it, inserted] = result.pairs.try_emplace(key, value);
        if (!inserted) it->second = S::Plus(it->second, value);
      }
      if (length == options.max_path_length) {
        result.truncated = !frontier.empty();
        break;
      }
      // Extend.
      std::map<Item, Value> next_frontier;
      for (const auto& [item, value] : frontier) {
        for (const Edge& e : universe.OutEdges(item.head)) {
          uint32_t next = dfa_.Step(item.state, e);
          if (next == LazyDfa::kDead) continue;
          Item extended{next, item.tail, e.head};
          Value contribution = S::Times(value, edge_weight(e));
          auto [it, inserted] =
              next_frontier.try_emplace(extended, contribution);
          if (!inserted) it->second = S::Plus(it->second, contribution);
          if (next_frontier.size() > options.max_frontier) {
            return Status::ResourceExhausted(
                "analysis frontier exceeded max_frontier = " +
                std::to_string(options.max_frontier));
          }
        }
      }
      if (next_frontier.empty()) break;  // Language exhausted: exact result.
      frontier = std::move(next_frontier);
    }
    return result;
  }

  LazyDfa dfa_;
};

// Convenience aliases for the common analyses.
using PathCounter = RegularPathAnalyzer<CountingSemiring>;
using PathReachability = RegularPathAnalyzer<BooleanSemiring>;
using ShortestPathAnalyzer = RegularPathAnalyzer<TropicalSemiring>;

}  // namespace mrpa

#endif  // MRPA_REGEX_PATH_ANALYSIS_H_
