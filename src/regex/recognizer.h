// Regular path recognizers (§IV-A).
//
// Given a regular path expression R over E, a recognizer decides whether a
// concrete path a ∈ E* belongs to the denoted path set. Two engines:
//
//   * NfaRecognizer — simulates the ε-NFA directly. Fully general: handles
//     ×◦ (disjoint seams) and disjoint input paths via the break-armed
//     position machinery in nfa.h. O(|a| · |states| · |patterns|) worst case.
//
//   * DfaRecognizer — a thin wrapper over the shared LazyDfa
//     (regex/lazy_dfa.h): lazily determinized, amortized O(|a|) per joint
//     path once warm. Restricted to joint-only expressions and joint
//     inputs; Compile() rejects expressions with ×◦ seams.
//
// Both engines agree with PathExpr::Evaluate membership (see the property
// tests) — recognizer, generator, and evaluator share one semantics.

#ifndef MRPA_REGEX_RECOGNIZER_H_
#define MRPA_REGEX_RECOGNIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/path.h"
#include "core/path_set.h"
#include "regex/lazy_dfa.h"
#include "regex/nfa.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

class ThreadPool;

class NfaRecognizer {
 public:
  explicit NfaRecognizer(Nfa nfa) : nfa_(std::move(nfa)) {}

  // Compiles the expression; never fails for well-formed expressions except
  // on oversized power unrolls.
  static Result<NfaRecognizer> Compile(const PathExpr& expr);

  // True iff `path` is in the expression's language. ε is accepted iff the
  // start closure reaches the accept state.
  bool Recognize(const Path& path) const;

  // Governed recognition: charges one step per live NFA position per input
  // edge (the worst-case simulation cost), so adversarially wide frontiers
  // trip the step budget or deadline instead of running unbounded. On a
  // trip the verdict is unavailable — the guard's Status comes back.
  Result<bool> Recognize(const Path& path, ExecContext& ctx) const;

  // Span forms: recognition over any contiguous edge sequence, without
  // constructing a Path. Streaming engines (arena frontiers, reused
  // scratch buffers) judge candidates here copy-free; the Path overloads
  // are thin wrappers over these.
  bool Recognize(std::span<const Edge> edges) const;
  Result<bool> Recognize(std::span<const Edge> edges, ExecContext& ctx) const;

  // Batch filtering: { p ∈ candidates | p ∈ L(R) }, the recognizer-guided
  // step of §IV-A used to refine traversal output. With a pool, candidate
  // slices are recognized concurrently (Recognize is const and
  // thread-safe); the result is identical to the sequential loop.
  PathSet AcceptedSubset(const PathSet& candidates,
                         ThreadPool* pool = nullptr) const;

  // Governed batch filtering. The sequential contract charges each path's
  // simulation (one CheckStep(frontier+1) per input edge) in canonical
  // candidate order; a trip stops the scan, and the result holds the
  // accepted paths among the candidates fully recognized before the trip,
  // with `truncated` set. With a pool, shards simulate speculatively under
  // quiet sub-contexts (shared cancel/deadline, fault probes off) and the
  // recorded frontier widths are replayed against `ctx` in sequential
  // order, so output, truncation point, counters, and fault-probe sequence
  // are byte-identical to the sequential run for countable budgets (wall
  // clock may move the trip point; the result is then still a correct
  // prefix of the scan).
  Result<GovernedPathSet> AcceptedSubsetGoverned(const PathSet& candidates,
                                                 ExecContext& ctx,
                                                 ThreadPool* pool = nullptr) const;

  const Nfa& nfa() const { return nfa_; }

 private:
  // When `widths` is non-null, the frontier width at each consumed edge is
  // appended to it (the arguments of the CheckStep calls a governed run
  // makes) — the recording hook of the parallel batch ledger.
  Result<bool> RecognizeImpl(std::span<const Edge> edges, ExecContext* ctx,
                             std::vector<uint32_t>* widths = nullptr) const;

  Nfa nfa_;
};

class DfaRecognizer {
 public:
  // Fails with InvalidArgument when the expression contains ×◦ seams
  // (including disjoint literals) — use NfaRecognizer for those.
  static Result<DfaRecognizer> Compile(const PathExpr& expr);

  // Lazy recognition; non-const because new DFA states/transitions may be
  // materialized. Fails with InvalidArgument for disjoint input paths.
  Result<bool> Recognize(const Path& path);

  // Governed recognition: one step charged per input edge (each may
  // materialize a new DFA state). Trips surface as the guard's Status.
  Result<bool> Recognize(const Path& path, ExecContext& ctx);

  // Introspection for tests and the E5 bench.
  size_t num_dfa_states() const { return dfa_.num_states(); }
  size_t num_edge_classes() const { return dfa_.num_edge_classes(); }

 private:
  explicit DfaRecognizer(LazyDfa dfa) : dfa_(std::move(dfa)) {}

  LazyDfa dfa_;
};

}  // namespace mrpa

#endif  // MRPA_REGEX_RECOGNIZER_H_
