// Regular path recognizers (§IV-A).
//
// Given a regular path expression R over E, a recognizer decides whether a
// concrete path a ∈ E* belongs to the denoted path set. Two engines:
//
//   * NfaRecognizer — simulates the ε-NFA directly. Fully general: handles
//     ×◦ (disjoint seams) and disjoint input paths via the break-armed
//     position machinery in nfa.h. O(|a| · |states| · |patterns|) worst case.
//
//   * DfaRecognizer — a thin wrapper over the shared LazyDfa
//     (regex/lazy_dfa.h): lazily determinized, amortized O(|a|) per joint
//     path once warm. Restricted to joint-only expressions and joint
//     inputs; Compile() rejects expressions with ×◦ seams.
//
// Both engines agree with PathExpr::Evaluate membership (see the property
// tests) — recognizer, generator, and evaluator share one semantics.

#ifndef MRPA_REGEX_RECOGNIZER_H_
#define MRPA_REGEX_RECOGNIZER_H_

#include <cstdint>

#include "core/path.h"
#include "regex/lazy_dfa.h"
#include "regex/nfa.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {

class NfaRecognizer {
 public:
  explicit NfaRecognizer(Nfa nfa) : nfa_(std::move(nfa)) {}

  // Compiles the expression; never fails for well-formed expressions except
  // on oversized power unrolls.
  static Result<NfaRecognizer> Compile(const PathExpr& expr);

  // True iff `path` is in the expression's language. ε is accepted iff the
  // start closure reaches the accept state.
  bool Recognize(const Path& path) const;

  // Governed recognition: charges one step per live NFA position per input
  // edge (the worst-case simulation cost), so adversarially wide frontiers
  // trip the step budget or deadline instead of running unbounded. On a
  // trip the verdict is unavailable — the guard's Status comes back.
  Result<bool> Recognize(const Path& path, ExecContext& ctx) const;

  const Nfa& nfa() const { return nfa_; }

 private:
  Result<bool> RecognizeImpl(const Path& path, ExecContext* ctx) const;

  Nfa nfa_;
};

class DfaRecognizer {
 public:
  // Fails with InvalidArgument when the expression contains ×◦ seams
  // (including disjoint literals) — use NfaRecognizer for those.
  static Result<DfaRecognizer> Compile(const PathExpr& expr);

  // Lazy recognition; non-const because new DFA states/transitions may be
  // materialized. Fails with InvalidArgument for disjoint input paths.
  Result<bool> Recognize(const Path& path);

  // Governed recognition: one step charged per input edge (each may
  // materialize a new DFA state). Trips surface as the guard's Status.
  Result<bool> Recognize(const Path& path, ExecContext& ctx);

  // Introspection for tests and the E5 bench.
  size_t num_dfa_states() const { return dfa_.num_states(); }
  size_t num_edge_classes() const { return dfa_.num_edge_classes(); }

 private:
  explicit DfaRecognizer(LazyDfa dfa) : dfa_(std::move(dfa)) {}

  LazyDfa dfa_;
};

}  // namespace mrpa

#endif  // MRPA_REGEX_RECOGNIZER_H_
