// LazyDfa: on-demand subset construction over edge-class minterms — the
// deterministic execution engine shared by the DFA recognizer
// (regex/recognizer.h) and the semiring path analyzer
// (regex/path_analysis.h).
//
// Soundness requires a joint-only expression (no ×◦ seams, no disjoint
// literals) and joint inputs: there the adjacency guards of the path
// algebra are vacuous and the automaton is a plain NFA over E, which
// determinizes classically. Edges are classified by their pattern-match
// signature; states and transitions materialize on first use (grep-style),
// so construction cost is proportional to what the workload actually
// touches.

#ifndef MRPA_REGEX_LAZY_DFA_H_
#define MRPA_REGEX_LAZY_DFA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/expr.h"
#include "regex/nfa.h"
#include "util/status.h"

namespace mrpa {

class LazyDfa {
 public:
  // No transition exists.
  static constexpr uint32_t kDead = UINT32_MAX;

  // Fails with InvalidArgument when the expression contains ×◦ seams.
  static Result<LazyDfa> Compile(const PathExpr& expr);

  uint32_t start() const { return start_state_; }
  bool accepting(uint32_t state) const { return accepting_[state]; }

  // δ(state, e): the successor state, materializing it if new; kDead when
  // no run continues. Non-const: mutates the lazy caches.
  uint32_t Step(uint32_t state, const Edge& e);

  // Introspection.
  size_t num_states() const { return dfa_states_.size(); }
  size_t num_edge_classes() const { return class_of_signature_.size(); }
  const Nfa& nfa() const { return nfa_; }

 private:
  explicit LazyDfa(Nfa nfa);

  using StateSet = std::vector<uint32_t>;  // Sorted NFA state ids.

  std::string SignatureOf(const Edge& e) const;
  uint32_t InternState(StateSet states);
  uint32_t ComputeStep(uint32_t dfa_state, uint32_t edge_class,
                       const std::string& signature);

  Nfa nfa_;
  uint32_t start_state_ = 0;
  std::vector<StateSet> dfa_states_;
  std::vector<bool> accepting_;
  std::unordered_map<std::string, uint32_t> state_of_key_;
  std::unordered_map<std::string, uint32_t> class_of_signature_;
  // transition_cache_[state] maps edge class -> next state (kDead allowed).
  std::vector<std::unordered_map<uint32_t, uint32_t>> transition_cache_;
};

}  // namespace mrpa

#endif  // MRPA_REGEX_LAZY_DFA_H_
