#include "regex/nfa.h"

#include <algorithm>
#include <sstream>

namespace mrpa {

namespace {

// Powers are unrolled by duplicating the operand automaton; cap the blowup.
constexpr size_t kMaxPowerUnroll = 1024;

}  // namespace

size_t Nfa::num_transitions() const {
  size_t count = 0;
  for (const auto& outgoing : transitions_) count += outgoing.size();
  return count;
}

std::string Nfa::ToString() const {
  std::ostringstream os;
  os << "NFA: " << num_states() << " states, start=" << start_
     << ", accept=" << accept_ << '\n';
  for (uint32_t s = 0; s < num_states(); ++s) {
    for (const NfaTransition& t : transitions_[s]) {
      os << "  " << s << " --";
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          os << "ε";
          break;
        case NfaTransition::Type::kBreak:
          os << "break";
          break;
        case NfaTransition::Type::kConsume:
          os << patterns_[t.pattern_id].ToString();
          break;
      }
      os << "--> " << t.target << '\n';
    }
  }
  return os.str();
}

// Builds Thompson fragments bottom-up. Each fragment is a (start, accept)
// pair of fresh states inside the shared state arena.
class ThompsonBuilder {
 public:
  Result<Nfa> Build(const PathExpr& expr) {
    Result<Fragment> fragment = BuildFragment(expr);
    if (!fragment.ok()) return fragment.status();
    nfa_.start_ = fragment->start;
    nfa_.accept_ = fragment->accept;
    return std::move(nfa_);
  }

 private:
  struct Fragment {
    uint32_t start;
    uint32_t accept;
  };

  uint32_t NewState() {
    nfa_.transitions_.emplace_back();
    return static_cast<uint32_t>(nfa_.transitions_.size() - 1);
  }

  void AddEpsilon(uint32_t from, uint32_t to) {
    nfa_.transitions_[from].push_back(
        {NfaTransition::Type::kEpsilon, to, 0});
  }

  void AddBreak(uint32_t from, uint32_t to) {
    nfa_.transitions_[from].push_back({NfaTransition::Type::kBreak, to, 0});
    nfa_.joint_only_ = false;
  }

  void AddConsume(uint32_t from, uint32_t to, const EdgePattern& pattern) {
    // Reuse an existing identical pattern to keep the pattern table small
    // (tables are scanned per-edge during DFA classification).
    uint32_t id = 0;
    auto it =
        std::find(nfa_.patterns_.begin(), nfa_.patterns_.end(), pattern);
    if (it != nfa_.patterns_.end()) {
      id = static_cast<uint32_t>(it - nfa_.patterns_.begin());
    } else {
      id = static_cast<uint32_t>(nfa_.patterns_.size());
      nfa_.patterns_.push_back(pattern);
    }
    nfa_.transitions_[from].push_back(
        {NfaTransition::Type::kConsume, to, id});
  }

  Result<Fragment> BuildFragment(const PathExpr& expr) {
    switch (expr.kind()) {
      case ExprKind::kEmpty: {
        // Two states, no transitions: accepts nothing.
        Fragment f{NewState(), NewState()};
        return f;
      }
      case ExprKind::kEpsilon: {
        Fragment f{NewState(), NewState()};
        AddEpsilon(f.start, f.accept);
        return f;
      }
      case ExprKind::kAtom: {
        Fragment f{NewState(), NewState()};
        AddConsume(f.start, f.accept, expr.pattern());
        return f;
      }
      case ExprKind::kLiteral:
        return BuildLiteral(expr.literal());
      case ExprKind::kUnion: {
        Result<Fragment> lhs = BuildFragment(*expr.children()[0]);
        if (!lhs.ok()) return lhs.status();
        Result<Fragment> rhs = BuildFragment(*expr.children()[1]);
        if (!rhs.ok()) return rhs.status();
        Fragment f{NewState(), NewState()};
        AddEpsilon(f.start, lhs->start);
        AddEpsilon(f.start, rhs->start);
        AddEpsilon(lhs->accept, f.accept);
        AddEpsilon(rhs->accept, f.accept);
        return f;
      }
      case ExprKind::kJoin: {
        Result<Fragment> lhs = BuildFragment(*expr.children()[0]);
        if (!lhs.ok()) return lhs.status();
        Result<Fragment> rhs = BuildFragment(*expr.children()[1]);
        if (!rhs.ok()) return rhs.status();
        // ⋈◦ seam: plain ε keeps the adjacency demand armed.
        AddEpsilon(lhs->accept, rhs->start);
        return Fragment{lhs->start, rhs->accept};
      }
      case ExprKind::kProduct: {
        Result<Fragment> lhs = BuildFragment(*expr.children()[0]);
        if (!lhs.ok()) return lhs.status();
        Result<Fragment> rhs = BuildFragment(*expr.children()[1]);
        if (!rhs.ok()) return rhs.status();
        // ×◦ seam: the break waives adjacency for rhs's first edge.
        AddBreak(lhs->accept, rhs->start);
        return Fragment{lhs->start, rhs->accept};
      }
      case ExprKind::kStar: {
        Result<Fragment> inner = BuildFragment(*expr.children()[0]);
        if (!inner.ok()) return inner.status();
        Fragment f{NewState(), NewState()};
        AddEpsilon(f.start, inner->start);
        AddEpsilon(f.start, f.accept);
        AddEpsilon(inner->accept, inner->start);  // Joint repetition seam.
        AddEpsilon(inner->accept, f.accept);
        return f;
      }
      case ExprKind::kPlus: {
        Result<Fragment> inner = BuildFragment(*expr.children()[0]);
        if (!inner.ok()) return inner.status();
        Fragment f{NewState(), NewState()};
        AddEpsilon(f.start, inner->start);
        AddEpsilon(inner->accept, inner->start);
        AddEpsilon(inner->accept, f.accept);
        return f;
      }
      case ExprKind::kOptional: {
        Result<Fragment> inner = BuildFragment(*expr.children()[0]);
        if (!inner.ok()) return inner.status();
        Fragment f{NewState(), NewState()};
        AddEpsilon(f.start, inner->start);
        AddEpsilon(f.start, f.accept);
        AddEpsilon(inner->accept, f.accept);
        return f;
      }
      case ExprKind::kPower: {
        if (expr.power() > kMaxPowerUnroll) {
          return Status::InvalidArgument(
              "power exponent " + std::to_string(expr.power()) +
              " exceeds unroll limit " + std::to_string(kMaxPowerUnroll));
        }
        if (expr.power() == 0) {
          Fragment f{NewState(), NewState()};
          AddEpsilon(f.start, f.accept);
          return f;
        }
        Result<Fragment> acc = BuildFragment(*expr.children()[0]);
        if (!acc.ok()) return acc.status();
        Fragment chain = acc.value();
        for (size_t k = 1; k < expr.power(); ++k) {
          Result<Fragment> next = BuildFragment(*expr.children()[0]);
          if (!next.ok()) return next.status();
          AddEpsilon(chain.accept, next->start);
          chain.accept = next->accept;
        }
        return chain;
      }
    }
    return Status::Internal("unknown expression kind");
  }

  // A literal path set becomes a union of edge chains. Interior seams of a
  // joint literal demand adjacency (trivially satisfied by equal input);
  // interior seams of a *disjoint* literal get a break so the exact path
  // still matches.
  Result<Fragment> BuildLiteral(const PathSet& literal) {
    Fragment f{NewState(), NewState()};
    for (const Path& path : literal) {
      if (path.empty()) {
        AddEpsilon(f.start, f.accept);
        continue;
      }
      uint32_t current = f.start;
      for (size_t n = 0; n < path.length(); ++n) {
        const Edge& e = path.edge(n);
        if (n > 0 && path.edge(n - 1).head != e.tail) {
          uint32_t seam = NewState();
          AddBreak(current, seam);
          current = seam;
        }
        uint32_t next = (n + 1 == path.length()) ? f.accept : NewState();
        AddConsume(current, next, EdgePattern::Exactly(e));
        current = next;
      }
    }
    return f;
  }

  Nfa nfa_;
};

Result<Nfa> CompileToNfa(const PathExpr& expr) {
  ThompsonBuilder builder;
  return builder.Build(expr);
}

void EpsilonClose(const Nfa& nfa, std::vector<NfaPosition>& positions) {
  std::vector<NfaPosition> stack = positions;
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  auto contains = [&](const NfaPosition& p) {
    return std::binary_search(positions.begin(), positions.end(), p);
  };
  auto insert_sorted = [&](const NfaPosition& p) {
    auto it = std::lower_bound(positions.begin(), positions.end(), p);
    positions.insert(it, p);
  };

  while (!stack.empty()) {
    NfaPosition current = stack.back();
    stack.pop_back();
    for (const NfaTransition& t : nfa.TransitionsFrom(current.state)) {
      NfaPosition next{t.target, current.break_armed};
      switch (t.type) {
        case NfaTransition::Type::kEpsilon:
          break;
        case NfaTransition::Type::kBreak:
          next.break_armed = true;
          break;
        case NfaTransition::Type::kConsume:
          continue;  // Closure does not consume.
      }
      if (!contains(next)) {
        insert_sorted(next);
        stack.push_back(next);
      }
    }
  }
}

}  // namespace mrpa
