#include "regex/derivatives.h"

#include "core/simplify.h"

namespace mrpa {

bool IsNullable(const PathExpr& expr) {
  switch (expr.kind()) {
    case ExprKind::kEmpty:
      return false;
    case ExprKind::kEpsilon:
      return true;
    case ExprKind::kAtom:
      return false;
    case ExprKind::kLiteral:
      return expr.literal().ContainsEpsilon();
    case ExprKind::kUnion:
      return IsNullable(*expr.children()[0]) ||
             IsNullable(*expr.children()[1]);
    case ExprKind::kJoin:
    case ExprKind::kProduct:
      return IsNullable(*expr.children()[0]) &&
             IsNullable(*expr.children()[1]);
    case ExprKind::kStar:
    case ExprKind::kOptional:
      return true;
    case ExprKind::kPlus:
      return IsNullable(*expr.children()[0]);
    case ExprKind::kPower:
      return expr.power() == 0 || IsNullable(*expr.children()[0]);
  }
  return false;
}

namespace {

Result<PathExprPtr> DeriveUnsimplified(const PathExprPtr& expr,
                                       const Edge& e) {
  switch (expr->kind()) {
    case ExprKind::kEmpty:
    case ExprKind::kEpsilon:
      return PathExpr::Empty();
    case ExprKind::kAtom:
      return expr->pattern().Matches(e)
                 ? PathExpr::Epsilon()
                 : PathExpr::Empty();
    case ExprKind::kLiteral: {
      // D_e({p₁, …}) = { rest of pᵢ | pᵢ starts with e }. Disjoint
      // literal paths are outside the classical fragment.
      PathSetBuilder rests;
      for (const Path& p : expr->literal()) {
        if (p.empty()) continue;
        if (!p.IsJoint()) {
          return Status::InvalidArgument(
              "derivative undefined for disjoint literal paths");
        }
        if (p.edge(0) != e) continue;
        rests.Add(Path(std::vector<Edge>(p.edges().begin() + 1,
                                         p.edges().end())));
      }
      PathSet rest_set = rests.Build();
      if (rest_set.empty()) return PathExpr::Empty();
      return PathExpr::Literal(std::move(rest_set));
    }
    case ExprKind::kUnion: {
      Result<PathExprPtr> lhs = DeriveUnsimplified(expr->children()[0], e);
      if (!lhs.ok()) return lhs;
      Result<PathExprPtr> rhs = DeriveUnsimplified(expr->children()[1], e);
      if (!rhs.ok()) return rhs;
      return PathExpr::MakeUnion(std::move(lhs).value(),
                                 std::move(rhs).value());
    }
    case ExprKind::kJoin: {
      Result<PathExprPtr> lhs = DeriveUnsimplified(expr->children()[0], e);
      if (!lhs.ok()) return lhs;
      PathExprPtr left_part =
          PathExpr::MakeJoin(std::move(lhs).value(), expr->children()[1]);
      if (!IsNullable(*expr->children()[0])) return left_part;
      Result<PathExprPtr> rhs = DeriveUnsimplified(expr->children()[1], e);
      if (!rhs.ok()) return rhs;
      return PathExpr::MakeUnion(std::move(left_part),
                                 std::move(rhs).value());
    }
    case ExprKind::kProduct:
      return Status::InvalidArgument(
          "derivative undefined for ×◦ (disjoint seams); use "
          "NfaRecognizer");
    case ExprKind::kStar: {
      Result<PathExprPtr> inner = DeriveUnsimplified(expr->children()[0], e);
      if (!inner.ok()) return inner;
      return PathExpr::MakeJoin(std::move(inner).value(), expr);
    }
    case ExprKind::kPlus: {
      Result<PathExprPtr> inner = DeriveUnsimplified(expr->children()[0], e);
      if (!inner.ok()) return inner;
      return PathExpr::MakeJoin(std::move(inner).value(),
                                PathExpr::MakeStar(expr->children()[0]));
    }
    case ExprKind::kOptional:
      return DeriveUnsimplified(expr->children()[0], e);
    case ExprKind::kPower: {
      if (expr->power() == 0) return PathExpr::Empty();
      Result<PathExprPtr> inner = DeriveUnsimplified(expr->children()[0], e);
      if (!inner.ok()) return inner;
      return PathExpr::MakeJoin(
          std::move(inner).value(),
          PathExpr::MakePower(expr->children()[0], expr->power() - 1));
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<PathExprPtr> Derivative(const PathExprPtr& expr, const Edge& e) {
  Result<PathExprPtr> derived = DeriveUnsimplified(expr, e);
  if (!derived.ok()) return derived;
  return Simplify(derived.value());
}

Result<DerivativeRecognizer> DerivativeRecognizer::Compile(PathExprPtr expr) {
  if (!expr->IsProductFree()) {
    return Status::InvalidArgument(
        "derivative recognition is restricted to joint-only expressions");
  }
  return DerivativeRecognizer(Simplify(expr));
}

Result<bool> DerivativeRecognizer::Recognize(const Path& path) const {
  if (!path.IsJoint()) {
    return Status::InvalidArgument(
        "derivative recognition requires a joint input path");
  }
  PathExprPtr current = expr_;
  for (const Edge& e : path) {
    if (current->kind() == ExprKind::kEmpty) return false;  // Dead.
    Result<PathExprPtr> next = Derivative(current, e);
    if (!next.ok()) return next.status();
    current = std::move(next).value();
  }
  return IsNullable(*current);
}

}  // namespace mrpa
