#include "regex/figure1.h"

#include "core/edge_pattern.h"

namespace mrpa {

PathExprPtr BuildFigure1Expr(const Figure1Params& p) {
  // [i, α, _]: first edge leaves i with label α.
  PathExprPtr first = PathExpr::Atom(
      EdgePattern(IdConstraint::Exactly(p.i), IdConstraint::Exactly(p.alpha),
                  IdConstraint()));
  // [_, β, _]*: zero or more β-labeled intermediate edges.
  PathExprPtr middle = PathExpr::MakeStar(PathExpr::Labeled(p.beta));
  // [_, α, j] ⋈◦ {(j, α, i)}: an α-edge into j followed by exactly (j,α,i).
  PathExprPtr into_j = PathExpr::Atom(
      EdgePattern(IdConstraint(), IdConstraint::Exactly(p.alpha),
                  IdConstraint::Exactly(p.j)));
  PathExprPtr loop_back = PathExpr::SingleEdge(Edge(p.j, p.alpha, p.i));
  PathExprPtr j_branch = PathExpr::MakeJoin(into_j, loop_back);
  // [_, α, k]: or a single α-edge into k.
  PathExprPtr k_branch = PathExpr::Atom(
      EdgePattern(IdConstraint(), IdConstraint::Exactly(p.alpha),
                  IdConstraint::Exactly(p.k)));

  return PathExpr::MakeJoin(
      PathExpr::MakeJoin(first, middle),
      PathExpr::MakeUnion(j_branch, k_branch));
}

MultiRelationalGraph BuildFigure1Graph() {
  const Figure1Params p;
  MultiGraphBuilder builder;
  builder.ReserveVertices(5);
  builder.ReserveLabels(2);
  const VertexId v3 = 3;
  const VertexId v4 = 4;

  // α-edges out of i: directly into j and k, and into the β-chain.
  builder.AddEdge(p.i, p.alpha, p.j);
  builder.AddEdge(p.i, p.alpha, p.k);
  builder.AddEdge(p.i, p.alpha, v3);
  // β-chain: 3 -β-> 4 -β-> 3 (a cycle, so the star is unbounded), and
  // β-edges reaching the accepting α-edges.
  builder.AddEdge(v3, p.beta, v4);
  builder.AddEdge(v4, p.beta, v3);
  // α-edges into j and k from the chain.
  builder.AddEdge(v4, p.alpha, p.j);
  builder.AddEdge(v3, p.alpha, p.k);
  // The loop-closing edge of the figure's j-branch.
  builder.AddEdge(p.j, p.alpha, p.i);
  return builder.Build();
}

}  // namespace mrpa
