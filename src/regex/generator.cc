#include "regex/generator.h"

#include <algorithm>
#include <map>

namespace mrpa {

namespace {

// Frontier: working path sets keyed by automaton position, merged across
// "parallel branches" (clones at the same position union their stacks).
using Frontier = std::map<NfaPosition, PathSet>;

// Distributes `paths` to `position` and its ε/break closure, unioning into
// the frontier.
void Distribute(const Nfa& nfa, NfaPosition position, const PathSet& paths,
                Frontier& frontier) {
  std::vector<NfaPosition> closure = {position};
  EpsilonClose(nfa, closure);
  for (const NfaPosition& pos : closure) {
    auto [it, inserted] = frontier.try_emplace(pos, paths);
    if (!inserted) it->second = Union(it->second, paths);
  }
}

Frontier InitialFrontier(const Nfa& nfa) {
  Frontier frontier;
  // The stack starts holding {ε}; position 0 has no previous edge, so the
  // first consumption is adjacency-free (break armed).
  Distribute(nfa, {nfa.start(), true}, PathSet::EpsilonSet(), frontier);
  return frontier;
}

// Collects accept-state stack tops into `out`, charging newly accepted
// paths against the guard; returns false once the max_paths cap is
// exceeded or the guard tripped (the trip lands in `limit`).
bool Collect(const Nfa& nfa, const Frontier& frontier, PathSet& out,
             const GenerateOptions& options, Status& limit) {
  const size_t before = out.size();
  for (const auto& [pos, paths] : frontier) {
    if (pos.state != nfa.accept()) continue;
    out = Union(out, paths);
  }
  if (options.exec != nullptr && out.size() > before) {
    if (Status trip = options.exec->ChargePaths(out.size() - before);
        !trip.ok()) {
      limit = std::move(trip);
      return false;
    }
  }
  return !(options.max_paths && out.size() > *options.max_paths);
}

bool HasConsumeTransition(const Nfa& nfa, const Frontier& frontier) {
  for (const auto& [pos, paths] : frontier) {
    (void)paths;
    for (const NfaTransition& t : nfa.TransitionsFrom(pos.state)) {
      if (t.type == NfaTransition::Type::kConsume) return true;
    }
  }
  return false;
}

std::vector<PathSet> MaterializePatternSets(const Nfa& nfa,
                                            const EdgeUniverse& universe) {
  std::vector<PathSet> sets;
  sets.reserve(nfa.patterns().size());
  for (const EdgePattern& pattern : nfa.patterns()) {
    sets.push_back(
        PathSet::FromEdges(CollectMatchingEdges(universe, pattern)));
  }
  return sets;
}

}  // namespace

Result<StackMachineGenerator> StackMachineGenerator::Compile(
    const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return StackMachineGenerator(std::move(nfa).value());
}

Result<GenerateResult> StackMachineGenerator::Generate(
    const EdgeUniverse& universe, const GenerateOptions& options) const {
  const std::vector<PathSet> pattern_sets =
      MaterializePatternSets(nfa_, universe);

  GenerateResult result;
  Frontier frontier = InitialFrontier(nfa_);
  if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
    result.truncated = true;
    return result;
  }

  for (size_t round = 0; round < options.max_path_length; ++round) {
    Frontier next;
    Status trip;
    for (const auto& [pos, working_set] : frontier) {
      if (options.exec != nullptr &&
          !(trip = options.exec->CheckStep(working_set.size() + 1)).ok()) {
        break;
      }
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        // Pop the working set, join it with the transition's edge set —
        // ⋈◦ normally, ×◦ when a break seam was crossed — and push.
        Result<PathSet> pushed =
            pos.break_armed
                ? ConcatenativeProduct(working_set,
                                       pattern_sets[t.pattern_id])
                : ConcatenativeJoin(working_set, pattern_sets[t.pattern_id]);
        if (!pushed.ok()) return pushed.status();
        if (pushed->empty()) continue;  // ∅ halts this branch.
        if (options.exec != nullptr &&
            !(trip = options.exec->ChargeBytes(ApproxBytes(*pushed))).ok()) {
          break;
        }
        Distribute(nfa_, {t.target, false}, pushed.value(), next);
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      // Graceful degradation: everything accepted through the last
      // completed round stays in the result.
      result.truncated = true;
      result.limit = std::move(trip);
      return result;
    }
    if (next.empty()) break;
    frontier = std::move(next);
    result.rounds = round + 1;
    if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
      result.truncated = true;
      return result;
    }
    if (round + 1 == options.max_path_length &&
        HasConsumeTransition(nfa_, frontier)) {
      result.truncated = true;
    }
  }
  return result;
}

Result<ProductGraphGenerator> ProductGraphGenerator::Compile(
    const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return ProductGraphGenerator(std::move(nfa).value());
}

Result<GenerateResult> ProductGraphGenerator::Generate(
    const EdgeUniverse& universe, const GenerateOptions& options) const {
  // Full pattern materialization is only needed for adjacency-free steps
  // (ε working paths or break seams); joint steps use the out-edge index.
  const std::vector<PathSet> pattern_sets =
      MaterializePatternSets(nfa_, universe);

  GenerateResult result;
  Frontier frontier = InitialFrontier(nfa_);
  if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
    result.truncated = true;
    return result;
  }

  for (size_t round = 0; round < options.max_path_length; ++round) {
    Frontier next;
    Status trip;
    for (const auto& [pos, working_set] : frontier) {
      if (options.exec != nullptr &&
          !(trip = options.exec->CheckStep(working_set.size() + 1)).ok()) {
        break;
      }
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        const EdgePattern& pattern = nfa_.patterns()[t.pattern_id];
        PathSetBuilder builder;
        for (const Path& path : working_set) {
          if (pos.break_armed || path.empty()) {
            // Adjacency-free step: any matching edge extends the path.
            for (const Path& edge_path : pattern_sets[t.pattern_id]) {
              builder.Add(path.Concat(edge_path));
            }
          } else {
            // Joint step: only out-edges of the head can extend — the
            // index lookup that makes this engine cheap (narrowed further
            // to the label sub-run for single-label patterns).
            ForEachMatchingOutEdge(
                universe, path.Head(), pattern, [&](const Edge& e) {
                  Path extended = path;
                  extended.Append(e);
                  builder.Add(std::move(extended));
                });
          }
        }
        PathSet pushed = builder.Build();
        if (pushed.empty()) continue;
        if (options.exec != nullptr &&
            !(trip = options.exec->ChargeBytes(ApproxBytes(pushed))).ok()) {
          break;
        }
        Distribute(nfa_, {t.target, false}, pushed, next);
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      result.truncated = true;
      result.limit = std::move(trip);
      return result;
    }
    if (next.empty()) break;
    frontier = std::move(next);
    result.rounds = round + 1;
    if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
      result.truncated = true;
      return result;
    }
    if (round + 1 == options.max_path_length &&
        HasConsumeTransition(nfa_, frontier)) {
      result.truncated = true;
    }
  }
  return result;
}

Result<GenerateResult> GeneratePaths(const PathExpr& expr,
                                     const EdgeUniverse& universe,
                                     const GenerateOptions& options) {
  Result<ProductGraphGenerator> generator =
      ProductGraphGenerator::Compile(expr);
  if (!generator.ok()) return generator.status();
  return generator->Generate(universe, options);
}

}  // namespace mrpa
