#include "regex/generator.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <optional>
#include <utility>

#include "core/path_arena.h"
#include "obs/obs.h"

namespace mrpa {

namespace {

// Frontier: working path sets keyed by automaton position, merged across
// "parallel branches" (clones at the same position union their stacks).
using Frontier = std::map<NfaPosition, PathSet>;

// Distributes `paths` to `position` and its ε/break closure, unioning into
// the frontier.
void Distribute(const Nfa& nfa, NfaPosition position, const PathSet& paths,
                Frontier& frontier) {
  std::vector<NfaPosition> closure = {position};
  EpsilonClose(nfa, closure);
  for (const NfaPosition& pos : closure) {
    auto [it, inserted] = frontier.try_emplace(pos, paths);
    if (!inserted) it->second = Union(it->second, paths);
  }
}

Frontier InitialFrontier(const Nfa& nfa) {
  Frontier frontier;
  // The stack starts holding {ε}; position 0 has no previous edge, so the
  // first consumption is adjacency-free (break armed).
  Distribute(nfa, {nfa.start(), true}, PathSet::EpsilonSet(), frontier);
  return frontier;
}

// Collects accept-state stack tops into `out`, charging newly accepted
// paths against the guard; returns false once the max_paths cap is
// exceeded or the guard tripped (the trip lands in `limit`).
bool Collect(const Nfa& nfa, const Frontier& frontier, PathSet& out,
             const GenerateOptions& options, Status& limit) {
  const size_t before = out.size();
  for (const auto& [pos, paths] : frontier) {
    if (pos.state != nfa.accept()) continue;
    out = Union(out, paths);
  }
  if (options.exec != nullptr && out.size() > before) {
    if (Status trip = options.exec->ChargePaths(out.size() - before);
        !trip.ok()) {
      limit = std::move(trip);
      return false;
    }
  }
  return !(options.max_paths && out.size() > *options.max_paths);
}

template <typename FrontierMap>
bool HasConsumeTransition(const Nfa& nfa, const FrontierMap& frontier) {
  for (const auto& [pos, paths] : frontier) {
    (void)paths;
    for (const NfaTransition& t : nfa.TransitionsFrom(pos.state)) {
      if (t.type == NfaTransition::Type::kConsume) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Arena frontier (ProductGraphGenerator).
//
// The product-graph engine extends every working path by exactly one edge
// per round, so a frontier's paths all have the same length (= the round
// number) and ε appears only in the initial frontier. That uniformity lets
// working sets live as sorted PathNodeId vectors into one prefix-sharing
// arena: a push is one node, Distribute's union is a set_union over ids
// (ComparePrefix, no materialization), and full paths exist only where the
// API hands them out — at Collect. The stack machine above keeps the
// materialized Frontier: it is the paper-literal §IV-B reference, one of
// the legacy ApproxBytes call sites.

// A working path set in arena form. Invariant: `ids` chain equal-length
// paths, sorted by ComparePrefix (strictly — no duplicates).
struct ArenaSet {
  bool has_epsilon = false;
  std::vector<PathNodeId> ids;

  size_t size() const { return ids.size() + (has_epsilon ? 1 : 0); }
  bool empty() const { return !has_epsilon && ids.empty(); }
};

using ArenaFrontier = std::map<NfaPosition, ArenaSet>;

// Distributes `set` to `position` and its ε/break closure, unioning into
// the frontier. Union of id vectors is a linear set_union; equal-comparing
// chains (the same path reached through different transitions, as distinct
// nodes) collapse to the first occurrence, mirroring PathSet's set
// semantics.
void DistributeArena(const Nfa& nfa, NfaPosition position,
                     const ArenaSet& set, const PathArena& arena,
                     ArenaFrontier& frontier) {
  std::vector<NfaPosition> closure = {position};
  EpsilonClose(nfa, closure);
  for (const NfaPosition& pos : closure) {
    auto [it, inserted] = frontier.try_emplace(pos, set);
    if (inserted) continue;
    ArenaSet& dst = it->second;
    dst.has_epsilon = dst.has_epsilon || set.has_epsilon;
    std::vector<PathNodeId> merged;
    merged.reserve(dst.ids.size() + set.ids.size());
    std::set_union(dst.ids.begin(), dst.ids.end(), set.ids.begin(),
                   set.ids.end(), std::back_inserter(merged),
                   [&](PathNodeId a, PathNodeId b) {
                     return arena.ComparePrefix(a, b) < 0;
                   });
    dst.ids = std::move(merged);
  }
}

ArenaFrontier InitialArenaFrontier(const Nfa& nfa) {
  ArenaFrontier frontier;
  ArenaSet epsilon;
  epsilon.has_epsilon = true;
  // The stack starts holding {ε}; position 0 has no previous edge, so the
  // first consumption is adjacency-free (break armed). No arena nodes exist
  // yet, so the (unused) arena argument is a throwaway.
  DistributeArena(nfa, {nfa.start(), true}, epsilon, PathArena(), frontier);
  return frontier;
}

// The API boundary: materializes an arena working set of `length`-edge
// chains into a canonical PathSet. ε (only ever present at length 0) sorts
// first; ids are already in canonical order, so the vector adopts unsorted.
PathSet MaterializeArenaSet(const PathArena& arena, const ArenaSet& set,
                            size_t length) {
  std::vector<Path> paths;
  paths.reserve(set.size());
  if (set.has_epsilon) paths.emplace_back();
  for (PathNodeId id : set.ids) {
    Path p;
    arena.MaterializePrefixInto(id, length, p);
    paths.push_back(std::move(p));
  }
  return PathSet::FromSortedUnique(std::move(paths));
}

// Collects accept-state stack tops into `out`; same contract as Collect.
bool CollectArena(const Nfa& nfa, const ArenaFrontier& frontier,
                  const PathArena& arena, size_t length, PathSet& out,
                  const GenerateOptions& options, Status& limit) {
  const size_t before = out.size();
  for (const auto& [pos, set] : frontier) {
    if (pos.state != nfa.accept()) continue;
    out = Union(out, MaterializeArenaSet(arena, set, length));
  }
  if (options.exec != nullptr && out.size() > before) {
    if (Status trip = options.exec->ChargePaths(out.size() - before);
        !trip.ok()) {
      limit = std::move(trip);
      return false;
    }
  }
  return !(options.max_paths && out.size() > *options.max_paths);
}

// Boundary observability shared by both generator engines: the registry
// rides on GenerateOptions.exec (no context, no observation), spans wrap
// the generation and each round, and the generator.* counters flush once
// per graceful return. Histogram: paths newly accepted per round.
struct GeneratorObs {
  obs::ObsRegistry* reg = nullptr;
  ExecStats before;
  std::optional<ExecSpan> span;

  explicit GeneratorObs(const GenerateOptions& options) {
    if (options.exec == nullptr) return;
    reg = options.exec->observer();
    if (reg == nullptr) return;
    before = options.exec->Snapshot();
    span.emplace(*options.exec, "generator.generate");
  }

  void RecordRound(size_t accepted) {
    if (reg != nullptr) {
      reg->Record(obs::Hist::kGeneratorRoundWidth, accepted);
    }
  }

  void Flush(const GenerateResult& result, const GenerateOptions& options) {
    if (reg == nullptr) return;
    reg->Add(obs::Metric::kGeneratorRounds, result.rounds);
    reg->Add(obs::Metric::kGeneratorPathsEmitted, result.paths.size());
    AddExecStatsDelta(*reg, before, options.exec->Snapshot());
  }
};

std::vector<PathSet> MaterializePatternSets(const Nfa& nfa,
                                            const EdgeUniverse& universe) {
  std::vector<PathSet> sets;
  sets.reserve(nfa.patterns().size());
  for (const EdgePattern& pattern : nfa.patterns()) {
    sets.push_back(
        PathSet::FromEdges(CollectMatchingEdges(universe, pattern)));
  }
  return sets;
}

}  // namespace

Result<StackMachineGenerator> StackMachineGenerator::Compile(
    const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return StackMachineGenerator(std::move(nfa).value());
}

Result<GenerateResult> StackMachineGenerator::Generate(
    const EdgeUniverse& universe, const GenerateOptions& options) const {
  const std::vector<PathSet> pattern_sets =
      MaterializePatternSets(nfa_, universe);

  GenerateResult result;
  GeneratorObs gobs(options);
  Frontier frontier = InitialFrontier(nfa_);
  if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
    result.truncated = true;
    gobs.Flush(result, options);
    return result;
  }

  for (size_t round = 0; round < options.max_path_length; ++round) {
    std::optional<ExecSpan> round_span;
    if (options.exec != nullptr) {
      round_span.emplace(*options.exec, "generator.round",
                         static_cast<int64_t>(round));
    }
    Frontier next;
    Status trip;
    for (const auto& [pos, working_set] : frontier) {
      if (options.exec != nullptr &&
          !(trip = options.exec->CheckStep(working_set.size() + 1)).ok()) {
        break;
      }
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        // Pop the working set, join it with the transition's edge set —
        // ⋈◦ normally, ×◦ when a break seam was crossed — and push.
        Result<PathSet> pushed =
            pos.break_armed
                ? ConcatenativeProduct(working_set,
                                       pattern_sets[t.pattern_id])
                : ConcatenativeJoin(working_set, pattern_sets[t.pattern_id]);
        if (!pushed.ok()) return pushed.status();
        if (pushed->empty()) continue;  // ∅ halts this branch.
        if (options.exec != nullptr &&
            !(trip = options.exec->ChargeBytes(ApproxBytes(*pushed))).ok()) {
          break;
        }
        Distribute(nfa_, {t.target, false}, pushed.value(), next);
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      // Graceful degradation: everything accepted through the last
      // completed round stays in the result.
      result.truncated = true;
      result.limit = std::move(trip);
      gobs.Flush(result, options);
      return result;
    }
    if (next.empty()) break;
    frontier = std::move(next);
    result.rounds = round + 1;
    const size_t accepted_before = result.paths.size();
    if (!Collect(nfa_, frontier, result.paths, options, result.limit)) {
      result.truncated = true;
      gobs.Flush(result, options);
      return result;
    }
    gobs.RecordRound(result.paths.size() - accepted_before);
    if (round + 1 == options.max_path_length &&
        HasConsumeTransition(nfa_, frontier)) {
      result.truncated = true;
    }
  }
  gobs.Flush(result, options);
  return result;
}

Result<ProductGraphGenerator> ProductGraphGenerator::Compile(
    const PathExpr& expr) {
  Result<Nfa> nfa = CompileToNfa(expr);
  if (!nfa.ok()) return nfa.status();
  return ProductGraphGenerator(std::move(nfa).value());
}

Result<GenerateResult> ProductGraphGenerator::Generate(
    const EdgeUniverse& universe, const GenerateOptions& options) const {
  // Full pattern materialization is only needed for adjacency-free steps
  // (ε working paths or break seams); joint steps use the out-edge index.
  const std::vector<PathSet> pattern_sets =
      MaterializePatternSets(nfa_, universe);

  // One arena for the whole generation: every round's frontiers chain into
  // it, so a path reached through r rounds costs r nodes total instead of
  // r materialized copies of growing length. Byte budgets are charged the
  // exact kNodeBytes per pushed extension.
  PathArena arena;

  GenerateResult result;
  GeneratorObs gobs(options);
  ArenaFrontier frontier = InitialArenaFrontier(nfa_);
  if (!CollectArena(nfa_, frontier, arena, 0, result.paths, options,
                    result.limit)) {
    result.truncated = true;
    FlushArenaStats(arena, gobs.reg);
    gobs.Flush(result, options);
    return result;
  }

  for (size_t round = 0; round < options.max_path_length; ++round) {
    std::optional<ExecSpan> round_span;
    if (options.exec != nullptr) {
      round_span.emplace(*options.exec, "generator.round",
                         static_cast<int64_t>(round));
    }
    ArenaFrontier next;
    Status trip;
    for (const auto& [pos, working_set] : frontier) {
      if (options.exec != nullptr &&
          !(trip = options.exec->CheckStep(working_set.size() + 1)).ok()) {
        break;
      }
      for (const NfaTransition& t : nfa_.TransitionsFrom(pos.state)) {
        if (t.type != NfaTransition::Type::kConsume) continue;
        const EdgePattern& pattern = nfa_.patterns()[t.pattern_id];
        // Pushed ids come out sorted with no duplicates: sources are
        // iterated in canonical order (ε first, then sorted ids), each
        // source's extension edges arrive in edge order (pattern sets are
        // canonical; out-runs are (label, head)-sorted), and equal-length
        // extensions of distinct sources stay distinct.
        ArenaSet pushed;
        if (working_set.has_epsilon) {
          // Adjacency-free by definition: ε has no head to join on.
          for (const Path& edge_path : pattern_sets[t.pattern_id]) {
            pushed.ids.push_back(arena.AddRoot(edge_path.edge(0)));
          }
        }
        for (PathNodeId source : working_set.ids) {
          if (pos.break_armed) {
            // Break seam: any matching edge extends the path (×◦).
            for (const Path& edge_path : pattern_sets[t.pattern_id]) {
              pushed.ids.push_back(arena.Extend(source, edge_path.edge(0)));
            }
          } else {
            // Joint step: only out-edges of the head can extend — the
            // index lookup that makes this engine cheap (narrowed further
            // to the label sub-run for single-label patterns).
            ForEachMatchingOutEdge(
                universe, arena.HeadOf(source), pattern, [&](const Edge& e) {
                  pushed.ids.push_back(arena.Extend(source, e));
                });
          }
        }
        if (pushed.empty()) continue;  // ∅ halts this branch.
        if (options.exec != nullptr &&
            !(trip = options.exec->ChargeBytes(pushed.ids.size() *
                                               PathArena::kNodeBytes))
                 .ok()) {
          break;
        }
        DistributeArena(nfa_, {t.target, false}, pushed, arena, next);
      }
      if (!trip.ok()) break;
    }
    if (!trip.ok()) {
      result.truncated = true;
      result.limit = std::move(trip);
      FlushArenaStats(arena, gobs.reg);
      gobs.Flush(result, options);
      return result;
    }
    if (next.empty()) break;
    frontier = std::move(next);
    result.rounds = round + 1;
    const size_t accepted_before = result.paths.size();
    if (!CollectArena(nfa_, frontier, arena, round + 1, result.paths, options,
                      result.limit)) {
      result.truncated = true;
      FlushArenaStats(arena, gobs.reg);
      gobs.Flush(result, options);
      return result;
    }
    gobs.RecordRound(result.paths.size() - accepted_before);
    if (round + 1 == options.max_path_length &&
        HasConsumeTransition(nfa_, frontier)) {
      result.truncated = true;
    }
  }
  FlushArenaStats(arena, gobs.reg);
  gobs.Flush(result, options);
  return result;
}

Result<GenerateResult> GeneratePaths(const PathExpr& expr,
                                     const EdgeUniverse& universe,
                                     const GenerateOptions& options) {
  Result<ProductGraphGenerator> generator =
      ProductGraphGenerator::Compile(expr);
  if (!generator.ok()) return generator.status();
  return generator->Generate(universe, options);
}

}  // namespace mrpa
