// Brzozowski-derivative recognition — the third membership engine, and the
// most direct demonstration of the "formal language theoretic foundation"
// the paper claims for the algebra.
//
// The derivative of a language L with respect to a symbol e is
// D_e(L) = { w | e·w ∈ L }. For path expressions (joint-only fragment,
// where adjacency guards are vacuous on joint inputs) the derivative is
// computed syntactically:
//
//   D_e([pattern])  = ε  if pattern matches e, else ∅
//   D_e(ε) = D_e(∅) = ∅
//   D_e(R ∪ Q)  = D_e(R) ∪ D_e(Q)
//   D_e(R ⋈◦ Q) = D_e(R) ⋈◦ Q  ∪  D_e(Q)   when ε ∈ L(R)
//               = D_e(R) ⋈◦ Q               otherwise
//   D_e(R*)  = D_e(R) ⋈◦ R*
//   D_e(R+)  = D_e(R) ⋈◦ R*
//   D_e(R?)  = D_e(R)
//   D_e(Rⁿ)  = D_e(R) ⋈◦ Rⁿ⁻¹  (n ≥ 1)
//
// and a path e₁…eₙ is accepted iff D_eₙ(…D_e₁(R)…) is nullable (ε ∈ L).
// Each derivative step runs the algebraic simplifier (core/simplify.h) to
// keep the expression from growing — the classic Brzozowski trick.
//
// Compared to the NFA/DFA engines the derivative recognizer needs no
// compilation at all: it manipulates the expression directly. It is the
// reference implementation the automata are tested against.

#ifndef MRPA_REGEX_DERIVATIVES_H_
#define MRPA_REGEX_DERIVATIVES_H_

#include "core/expr.h"
#include "core/path.h"
#include "util/status.h"

namespace mrpa {

// ε ∈ L(expr)? Purely syntactic (no graph needed). Literals are nullable
// iff they contain ε.
bool IsNullable(const PathExpr& expr);

// The Brzozowski derivative of `expr` by `e`, simplified. Fails with
// InvalidArgument on ×◦ nodes (disjoint seams have no classical
// derivative; use NfaRecognizer).
Result<PathExprPtr> Derivative(const PathExprPtr& expr, const Edge& e);

class DerivativeRecognizer {
 public:
  // Fails with InvalidArgument for expressions with ×◦ seams. (Disjoint
  // literal paths surface as InvalidArgument from Recognize instead — they
  // hide inside PathSet literals and are only seen when derived past.)
  static Result<DerivativeRecognizer> Compile(PathExprPtr expr);

  // Recognizes a joint path by repeated derivation. Fails with
  // InvalidArgument on disjoint inputs.
  Result<bool> Recognize(const Path& path) const;

  const PathExprPtr& expr() const { return expr_; }

 private:
  explicit DerivativeRecognizer(PathExprPtr expr) : expr_(std::move(expr)) {}
  PathExprPtr expr_;
};

}  // namespace mrpa

#endif  // MRPA_REGEX_DERIVATIVES_H_
