// DFA materialization and minimization over a bound edge universe.
//
// LazyDfa builds states on demand, which is ideal for ad-hoc recognition
// but leaves the automaton's size workload-dependent. For a *bound*
// universe the construction can be closed: classify every edge of E into
// its pattern-match signature class, explore the full subset automaton over
// those classes, and then minimize it by partition refinement (Moore's
// algorithm — chosen over Hopcroft for auditability; our automata have tens
// of states, so the extra log factor is irrelevant).
//
// The result is the canonical machine for the expression *relative to E*:
// equivalent states collapse, so two expressions denoting the same language
// over E minimize to isomorphic automata. Recognition against the
// minimized DFA is valid for joint paths whose edges come from the bound
// universe (unknown edges fall into their signature class if it was
// discovered, and are rejected — soundly, since an undiscovered signature
// matches no pattern combination seen in E... it maps to the dead state).

#ifndef MRPA_REGEX_DFA_MINIMIZER_H_
#define MRPA_REGEX_DFA_MINIMIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/edge_universe.h"
#include "core/expr.h"
#include "core/path.h"
#include "util/status.h"

namespace mrpa {

// A complete (total) DFA over the edge classes of a bound universe.
class MinimizedDfa {
 public:
  uint32_t start() const { return start_; }
  bool accepting(uint32_t state) const { return accepting_[state]; }
  size_t num_states() const { return accepting_.size(); }
  size_t num_classes() const { return num_classes_; }

  // Recognizes a joint path. Fails with InvalidArgument on disjoint input.
  Result<bool> Recognize(const Path& path) const;

  // δ(state, class). Always defined (the automaton is total; one state may
  // be a dead sink).
  uint32_t Step(uint32_t state, uint32_t edge_class) const {
    return transitions_[state][edge_class];
  }

  // The class of an edge, or nullopt when its signature never occurred in
  // the bound universe (such an edge can only be rejected).
  std::optional<uint32_t> ClassOf(const Edge& e) const;

 private:
  friend Result<MinimizedDfa> BuildMinimizedDfa(const PathExpr& expr,
                                                const EdgeUniverse& universe);

  uint32_t start_ = 0;
  size_t num_classes_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::vector<uint32_t>> transitions_;  // [state][class].
  std::vector<EdgePattern> patterns_;
  std::unordered_map<std::string, uint32_t> class_of_signature_;
};

// Materializes the full subset DFA of `expr` over `universe`'s edge classes
// and minimizes it. Fails with InvalidArgument for expressions with ×◦
// seams (same restriction as every deterministic engine here).
Result<MinimizedDfa> BuildMinimizedDfa(const PathExpr& expr,
                                       const EdgeUniverse& universe);

// The pre-minimization state count, for tests and the E5 bench (how much
// minimization buys).
struct DfaSizeReport {
  size_t materialized_states = 0;  // Full subset construction (incl. dead).
  size_t minimized_states = 0;
  size_t edge_classes = 0;
};
Result<DfaSizeReport> MeasureMinimization(const PathExpr& expr,
                                          const EdgeUniverse& universe);

}  // namespace mrpa

#endif  // MRPA_REGEX_DFA_MINIMIZER_H_
