#include "algorithms/centrality.h"

namespace mrpa {

std::vector<double> SpreadingActivation(
    const BinaryGraph& graph, const std::vector<VertexId>& seeds,
    const SpreadingActivationOptions& options) {
  const uint32_t n = graph.num_vertices();
  std::vector<double> activation(n, 0.0);
  std::vector<double> pulse(n, 0.0);
  for (VertexId seed : seeds) {
    if (seed < n) pulse[seed] += 1.0;
  }
  for (uint32_t v = 0; v < n; ++v) activation[v] = pulse[v];

  std::vector<double> next(n);
  for (size_t round = 0; round < options.rounds; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    bool any = false;
    for (VertexId v = 0; v < n; ++v) {
      if (pulse[v] == 0.0) continue;
      const auto neighbors = graph.OutNeighbors(v);
      if (neighbors.empty()) continue;
      const double share =
          options.decay * pulse[v] / static_cast<double>(neighbors.size());
      for (VertexId w : neighbors) {
        next[w] += share;
        any = true;
      }
    }
    if (!any) break;
    for (uint32_t v = 0; v < n; ++v) activation[v] += next[v];
    pulse.swap(next);
  }
  return activation;
}

}  // namespace mrpa
