#include "algorithms/katz_hits.h"

#include <cmath>

namespace mrpa {

Result<std::vector<double>> KatzCentrality(const BinaryGraph& graph,
                                           const KatzOptions& options) {
  const uint32_t n = graph.num_vertices();
  if (n == 0) return std::vector<double>{};
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie in (0, 1)");
  }

  std::vector<double> x(n, options.beta);
  std::vector<double> next(n);
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    std::fill(next.begin(), next.end(), options.beta);
    for (VertexId v = 0; v < n; ++v) {
      const double contribution = options.alpha * x[v];
      for (VertexId w : graph.OutNeighbors(v)) next[w] += contribution;
    }
    double delta = 0.0;
    for (uint32_t i = 0; i < n; ++i) delta += std::abs(next[i] - x[i]);
    x.swap(next);
    if (delta < options.tolerance) return x;
    if (!std::isfinite(delta)) {
      return Status::InvalidArgument(
          "Katz iteration diverged: alpha exceeds 1/lambda_max");
    }
  }
  return Status::ResourceExhausted(
      "Katz iteration did not converge within " +
      std::to_string(options.max_iterations) +
      " iterations (alpha too close to 1/lambda_max?)");
}

Result<HitsResult> Hits(const BinaryGraph& graph, const HitsOptions& options) {
  const uint32_t n = graph.num_vertices();
  HitsResult result;
  result.hub.assign(n, 1.0);
  result.authority.assign(n, 1.0);
  if (n == 0) return result;
  if (graph.num_arcs() == 0) {
    result.hub.assign(n, 0.0);
    result.authority.assign(n, 0.0);
    return result;
  }

  auto normalize = [](std::vector<double>& v) {
    double norm = 0.0;
    for (double value : v) norm += value * value;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& value : v) value /= norm;
    }
  };

  std::vector<double> new_authority(n), new_hub(n);
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // a ← Aᵀ h.
    std::fill(new_authority.begin(), new_authority.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : graph.OutNeighbors(v)) {
        new_authority[w] += result.hub[v];
      }
    }
    normalize(new_authority);
    // h ← A a.
    std::fill(new_hub.begin(), new_hub.end(), 0.0);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : graph.OutNeighbors(v)) {
        new_hub[v] += new_authority[w];
      }
    }
    normalize(new_hub);

    double delta = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      delta += std::abs(new_authority[i] - result.authority[i]) +
               std::abs(new_hub[i] - result.hub[i]);
    }
    result.authority.swap(new_authority);
    result.hub.swap(new_hub);
    if (delta < options.tolerance) return result;
  }
  return Status::ResourceExhausted(
      "HITS did not converge within " +
      std::to_string(options.max_iterations) + " iterations");
}

}  // namespace mrpa
