// Centrality measures over single-relational graphs — the algorithm classes
// §IV-C names: geodesic (closeness, betweenness), spectral (eigenvector,
// PageRank, spreading activation). Implemented from the standard
// definitions (Brandes & Erlebach, the paper's ref [1]).
//
// All functions operate on a directed BinaryGraph; callers wanting the
// undirected variants pass graph.Symmetrized().

#ifndef MRPA_ALGORITHMS_CENTRALITY_H_
#define MRPA_ALGORITHMS_CENTRALITY_H_

#include <cstddef>
#include <vector>

#include "graph/binary_graph.h"
#include "util/status.h"

namespace mrpa {

// Closeness centrality: c(v) = (r_v - 1) / Σ_{u reachable} d(v, u), where
// r_v is the number of vertices reachable from v (Wasserman–Faust
// normalization multiplies by (r_v - 1)/(n - 1) so partially disconnected
// graphs are comparable). c(v) = 0 when v reaches nothing.
std::vector<double> ClosenessCentrality(const BinaryGraph& graph);

// Betweenness centrality via Brandes' algorithm: b(v) = Σ_{s≠v≠t}
// σ_st(v)/σ_st over directed shortest paths. O(V·E) time, O(V+E) space.
std::vector<double> BetweennessCentrality(const BinaryGraph& graph);

// Eigenvector centrality by shifted power iteration over the in-edge
// operator (x ← (Aᵀ + I)x, L2-normalized — the Perron shift makes the
// iteration converge on bipartite graphs without changing eigenvectors).
// Returns ResourceExhausted when `max_iterations` passes without the L1
// delta dropping below `tolerance`; all-zero for edgeless graphs.
struct PowerIterationOptions {
  size_t max_iterations = 1000;
  double tolerance = 1e-10;
};
Result<std::vector<double>> EigenvectorCentrality(
    const BinaryGraph& graph, const PowerIterationOptions& options = {});

// PageRank with teleportation. The (1 - damping) teleport term is the
// "disjoint jump" the paper motivates ×◦ with (§II footnote 5): with
// probability 1-d the walker abandons adjacency and restarts uniformly.
// Dangling mass is redistributed uniformly. Scores sum to 1.
struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 200;
  double tolerance = 1e-12;
};
Result<std::vector<double>> PageRank(const BinaryGraph& graph,
                                     const PageRankOptions& options = {});

// Spreading activation: seeds fire with initial energy 1; each round every
// active vertex sends `decay` × its energy split across out-neighbors;
// energies accumulate. `rounds` bounds the propagation horizon. Returns the
// final activation vector.
struct SpreadingActivationOptions {
  double decay = 0.5;
  size_t rounds = 6;
};
std::vector<double> SpreadingActivation(
    const BinaryGraph& graph, const std::vector<VertexId>& seeds,
    const SpreadingActivationOptions& options = {});

// Ranks vertices by score, descending, ties broken by vertex id ascending.
std::vector<VertexId> RankByScore(const std::vector<double>& scores);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_CENTRALITY_H_
