#include "algorithms/degree.h"

#include <algorithm>

#include "graph/projection.h"

namespace mrpa {

std::vector<uint32_t> DegreeStats::OutDegreeHistogram() const {
  std::vector<uint32_t> histogram(max_out + 1, 0);
  for (uint32_t d : out_degree) ++histogram[d];
  return histogram;
}

DegreeStats ComputeDegreeStats(const BinaryGraph& graph) {
  const uint32_t n = graph.num_vertices();
  DegreeStats stats;
  stats.out_degree.assign(n, 0);
  stats.in_degree.assign(n, 0);
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t d = static_cast<uint32_t>(graph.OutDegree(v));
    stats.out_degree[v] = d;
    total += d;
    stats.max_out = std::max(stats.max_out, d);
    for (VertexId w : graph.OutNeighbors(v)) ++stats.in_degree[w];
  }
  for (uint32_t d : stats.in_degree) stats.max_in = std::max(stats.max_in, d);
  stats.mean_out = n == 0 ? 0.0 : static_cast<double>(total) / n;
  return stats;
}

std::vector<DegreeStats> PerLabelDegreeStats(
    const MultiRelationalGraph& graph) {
  std::vector<DegreeStats> per_label;
  per_label.reserve(graph.num_labels());
  for (LabelId l = 0; l < graph.num_labels(); ++l) {
    per_label.push_back(ComputeDegreeStats(ExtractLabelRelation(graph, l)));
  }
  return per_label;
}

}  // namespace mrpa
