// Katz centrality and HITS — two further members of the spectral family
// §IV-C points single-relational algorithms at.

#ifndef MRPA_ALGORITHMS_KATZ_HITS_H_
#define MRPA_ALGORITHMS_KATZ_HITS_H_

#include <cstddef>
#include <vector>

#include "graph/binary_graph.h"
#include "util/status.h"

namespace mrpa {

// Katz centrality: x(v) = Σ_{k≥1} Σ_u α^k · (#k-step walks u→v) + β, i.e.
// the fixed point of x = α·Aᵀx + β·1. Converges for α < 1/λ_max; the
// implementation iterates to `tolerance` and fails with ResourceExhausted
// if `max_iterations` is hit (typically a sign α is too large).
struct KatzOptions {
  double alpha = 0.1;
  double beta = 1.0;
  size_t max_iterations = 1000;
  double tolerance = 1e-10;
};
Result<std::vector<double>> KatzCentrality(const BinaryGraph& graph,
                                           const KatzOptions& options = {});

// HITS (Kleinberg): mutually reinforcing hub and authority scores,
//   a ← Aᵀh,  h ← Aa,  both L2-normalized each round.
struct HitsResult {
  std::vector<double> hub;
  std::vector<double> authority;
};
struct HitsOptions {
  size_t max_iterations = 200;
  double tolerance = 1e-10;
};
Result<HitsResult> Hits(const BinaryGraph& graph,
                        const HitsOptions& options = {});

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_KATZ_HITS_H_
