// Brandes' betweenness algorithm (2001): one BFS per source accumulating
// pair dependencies back-to-front along the shortest-path DAG.

#include <deque>
#include <vector>

#include "algorithms/centrality.h"

namespace mrpa {

std::vector<double> BetweennessCentrality(const BinaryGraph& graph) {
  const uint32_t n = graph.num_vertices();
  std::vector<double> betweenness(n, 0.0);

  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n);      // Shortest-path counts σ_sv.
  std::vector<double> delta(n);      // Dependencies δ_s(v).
  std::vector<std::vector<VertexId>> preds(n);

  for (VertexId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();

    std::vector<VertexId> order;  // BFS finish order (by distance).
    std::deque<VertexId> queue;
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.push_back(s);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (VertexId w : graph.OutNeighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }

    // Accumulation: vertices in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      VertexId w = *it;
      for (VertexId v : preds[w]) {
        delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w]);
      }
      if (w != s) betweenness[w] += delta[w];
    }
  }
  return betweenness;
}

}  // namespace mrpa
