#include <cmath>

#include "algorithms/centrality.h"

namespace mrpa {

Result<std::vector<double>> PageRank(const BinaryGraph& graph,
                                     const PageRankOptions& options) {
  const uint32_t n = graph.num_vertices();
  if (n == 0) return std::vector<double>{};
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must lie in [0, 1)");
  }

  const double uniform = 1.0 / n;
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n);

  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Teleport term — the ×◦-style disjoint jump: uniform restart mass.
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (graph.OutDegree(v) == 0) dangling += rank[v];
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling * uniform;
    std::fill(next.begin(), next.end(), base);

    for (VertexId v = 0; v < n; ++v) {
      const auto neighbors = graph.OutNeighbors(v);
      if (neighbors.empty()) continue;
      const double share =
          options.damping * rank[v] / static_cast<double>(neighbors.size());
      for (VertexId w : neighbors) next[w] += share;
    }

    double delta = 0.0;
    for (uint32_t i = 0; i < n; ++i) delta += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < options.tolerance) return rank;
  }
  return Status::ResourceExhausted(
      "PageRank did not converge within " +
      std::to_string(options.max_iterations) + " iterations");
}

}  // namespace mrpa
