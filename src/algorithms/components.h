// Connectivity structure of single-relational graphs.

#ifndef MRPA_ALGORITHMS_COMPONENTS_H_
#define MRPA_ALGORITHMS_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"

namespace mrpa {

struct ComponentResult {
  // component[v] ∈ [0, num_components), dense ids in discovery order.
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  // Size of each component.
  std::vector<uint32_t> sizes;
  uint32_t LargestComponentSize() const;
};

// Weakly connected components (directions ignored).
ComponentResult WeaklyConnectedComponents(const BinaryGraph& graph);

// Strongly connected components (Tarjan, iterative). Component ids are in
// reverse topological order of the condensation.
ComponentResult StronglyConnectedComponents(const BinaryGraph& graph);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_COMPONENTS_H_
