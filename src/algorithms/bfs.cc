#include "algorithms/bfs.h"

#include <algorithm>
#include <deque>

namespace mrpa {

std::vector<uint32_t> BfsDistances(const BinaryGraph& graph, VertexId source) {
  std::vector<uint32_t> dist(graph.num_vertices(), kUnreachable);
  if (source >= graph.num_vertices()) return dist;
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId w : graph.OutNeighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<std::vector<uint32_t>> AllPairsDistances(
    const BinaryGraph& graph) {
  std::vector<std::vector<uint32_t>> all;
  all.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    all.push_back(BfsDistances(graph, v));
  }
  return all;
}

uint32_t Diameter(const BinaryGraph& graph) {
  uint32_t diameter = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (uint32_t d : BfsDistances(graph, v)) {
      if (d != kUnreachable) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::vector<VertexId> ShortestPath(const BinaryGraph& graph, VertexId source,
                                   VertexId target) {
  if (source >= graph.num_vertices() || target >= graph.num_vertices()) {
    return {};
  }
  std::vector<VertexId> parent(graph.num_vertices(), kInvalidVertex);
  std::vector<bool> visited(graph.num_vertices(), false);
  std::deque<VertexId> queue;
  visited[source] = true;
  queue.push_back(source);
  while (!queue.empty() && !visited[target]) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId w : graph.OutNeighbors(v)) {
      if (!visited[w]) {
        visited[w] = true;
        parent[w] = v;
        queue.push_back(w);
      }
    }
  }
  if (!visited[target]) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return {};
  return path;
}

}  // namespace mrpa
