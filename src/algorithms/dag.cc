#include "algorithms/dag.h"

#include <deque>

#include "util/popcount.h"

namespace mrpa {

std::optional<std::vector<VertexId>> TopologicalOrder(
    const BinaryGraph& graph) {
  const uint32_t n = graph.num_vertices();
  std::vector<uint32_t> in_degree(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : graph.OutNeighbors(v)) ++in_degree[w];
  }
  std::deque<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(n);
  while (!ready.empty()) {
    VertexId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (VertexId w : graph.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // A cycle survived.
  return order;
}

Result<ReachabilityMatrix> ReachabilityMatrix::Build(
    const BinaryGraph& graph, uint32_t max_vertices) {
  const uint32_t n = graph.num_vertices();
  if (n > max_vertices) {
    return Status::InvalidArgument(
        "reachability matrix needs " + std::to_string(n) +
        " rows > max_vertices = " + std::to_string(max_vertices) +
        "; raise the bound explicitly to opt in");
  }
  ReachabilityMatrix matrix(n);

  // Semi-naive iteration: row(v) = ⋃_{w ∈ N(v)} ({w} ∪ row(w)) to a fixed
  // point. Processing in reverse topological order converges in one pass
  // on DAGs; cyclic graphs take at most diameter extra sweeps.
  std::vector<VertexId> schedule;
  if (auto topo = TopologicalOrder(graph); topo.has_value()) {
    schedule.assign(topo->rbegin(), topo->rend());
  } else {
    schedule.resize(n);
    for (VertexId v = 0; v < n; ++v) schedule[v] = v;
  }

  const size_t words = matrix.words_per_row_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v : schedule) {
      uint64_t* row = matrix.bits_.data() + static_cast<size_t>(v) * words;
      for (VertexId w : graph.OutNeighbors(v)) {
        // row(v) |= {w}.
        uint64_t& word = row[w / 64];
        const uint64_t bit = uint64_t{1} << (w % 64);
        if (!(word & bit)) {
          word |= bit;
          changed = true;
        }
        // row(v) |= row(w).
        const uint64_t* other =
            matrix.bits_.data() + static_cast<size_t>(w) * words;
        for (size_t k = 0; k < words; ++k) {
          const uint64_t merged = row[k] | other[k];
          if (merged != row[k]) {
            row[k] = merged;
            changed = true;
          }
        }
      }
    }
  }
  return matrix;
}

bool ReachabilityMatrix::Reaches(VertexId from, VertexId to) const {
  if (from >= num_vertices_ || to >= num_vertices_) return false;
  return (bits_[static_cast<size_t>(from) * words_per_row_ + to / 64] >>
          (to % 64)) &
         1;
}

size_t ReachabilityMatrix::CountReachable(VertexId from) const {
  if (from >= num_vertices_) return 0;
  size_t count = 0;
  for (size_t k = 0; k < words_per_row_; ++k) {
    count += PopCount64(
        bits_[static_cast<size_t>(from) * words_per_row_ + k]);
  }
  return count;
}

}  // namespace mrpa
