#include "algorithms/clustering.h"

#include <algorithm>

namespace mrpa {

ClusteringResult ComputeClustering(const BinaryGraph& graph) {
  // Undirected simple view, self-loops dropped.
  std::vector<std::pair<VertexId, VertexId>> arcs;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      if (v == w) continue;
      arcs.emplace_back(v, w);
      arcs.emplace_back(w, v);
    }
  }
  BinaryGraph undirected =
      BinaryGraph::FromArcs(graph.num_vertices(), std::move(arcs));

  const uint32_t n = undirected.num_vertices();
  ClusteringResult result;
  result.triangles_per_vertex.assign(n, 0);
  result.local_coefficient.assign(n, 0.0);

  // Forward counting: for each vertex, intersect neighbor lists of
  // higher-id neighbors (each triangle found exactly once).
  for (VertexId u = 0; u < n; ++u) {
    auto nu = undirected.OutNeighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      auto nv = undirected.OutNeighbors(v);
      // Sorted-list intersection over w > v.
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++result.total_triangles;
          ++result.triangles_per_vertex[u];
          ++result.triangles_per_vertex[v];
          ++result.triangles_per_vertex[*iu];
          ++iu;
          ++iv;
        }
      }
    }
  }

  uint64_t wedges = 0;
  double coefficient_sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t degree = undirected.OutDegree(v);
    const uint64_t pairs = degree * (degree - 1) / 2;
    wedges += pairs;
    if (pairs > 0) {
      result.local_coefficient[v] =
          static_cast<double>(result.triangles_per_vertex[v]) / pairs;
    }
    coefficient_sum += result.local_coefficient[v];
  }
  result.average_coefficient = n == 0 ? 0.0 : coefficient_sum / n;
  result.global_coefficient =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(result.total_triangles) /
                        static_cast<double>(wedges);
  return result;
}

}  // namespace mrpa
