// Community detection by (synchronous-free) label propagation.
//
// Raghavan et al.'s algorithm over the undirected view: every vertex
// repeatedly adopts the most frequent community among its neighbors until
// no vertex changes (or `max_rounds` passes). Deterministic: vertices are
// processed in id order and frequency ties break toward the smallest
// community id, so identical inputs yield identical communities on every
// platform.

#ifndef MRPA_ALGORITHMS_COMMUNITIES_H_
#define MRPA_ALGORITHMS_COMMUNITIES_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"

namespace mrpa {

struct CommunityResult {
  // community[v]: dense ids in [0, num_communities).
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
  // Rounds executed before convergence (== max_rounds if it never settled).
  size_t rounds = 0;
  bool converged = false;
};

CommunityResult LabelPropagationCommunities(const BinaryGraph& graph,
                                            size_t max_rounds = 100);

// Newman modularity of a vertex partition over the undirected view —
// the standard quality score for CommunityResult.
double Modularity(const BinaryGraph& graph,
                  const std::vector<uint32_t>& community);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_COMMUNITIES_H_
