#include "algorithms/communities.h"

#include <algorithm>
#include <unordered_map>

namespace mrpa {

CommunityResult LabelPropagationCommunities(const BinaryGraph& graph,
                                            size_t max_rounds) {
  const BinaryGraph undirected = graph.Symmetrized();
  const uint32_t n = undirected.num_vertices();

  CommunityResult result;
  result.community.resize(n);
  for (VertexId v = 0; v < n; ++v) result.community[v] = v;

  std::unordered_map<uint32_t, uint32_t> frequency;
  for (size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      const auto neighbors = undirected.OutNeighbors(v);
      if (neighbors.empty()) continue;
      frequency.clear();
      for (VertexId w : neighbors) ++frequency[result.community[w]];
      // Most frequent, ties toward the smallest community id.
      uint32_t best = result.community[v];
      uint32_t best_count = 0;
      for (const auto& [community, count] : frequency) {
        if (count > best_count ||
            (count == best_count && community < best)) {
          best = community;
          best_count = count;
        }
      }
      if (best != result.community[v]) {
        result.community[v] = best;
        changed = true;
      }
    }
    result.rounds = round + 1;
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  // Densify ids.
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t& c : result.community) {
    auto [it, inserted] =
        dense.try_emplace(c, static_cast<uint32_t>(dense.size()));
    c = it->second;
  }
  result.num_communities = static_cast<uint32_t>(dense.size());
  return result;
}

double Modularity(const BinaryGraph& graph,
                  const std::vector<uint32_t>& community) {
  const BinaryGraph undirected = graph.Symmetrized();
  const uint32_t n = undirected.num_vertices();
  if (community.size() != n) return 0.0;

  // Treat each undirected edge once: m = |arcs|/2 (self-loops excluded for
  // simplicity — they do not affect community comparisons here).
  double m2 = 0.0;  // 2m = total degree.
  std::unordered_map<uint32_t, double> degree_sum;
  std::unordered_map<uint32_t, double> internal;  // 2 × internal edges.
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : undirected.OutNeighbors(v)) {
      if (v == w) continue;
      m2 += 1.0;
      degree_sum[community[v]] += 1.0;
      if (community[v] == community[w]) internal[community[v]] += 1.0;
    }
  }
  if (m2 == 0.0) return 0.0;
  double q = 0.0;
  for (const auto& [c, dsum] : degree_sum) {
    const double e_in = internal.count(c) ? internal.at(c) : 0.0;
    q += e_in / m2 - (dsum / m2) * (dsum / m2);
  }
  return q;
}

}  // namespace mrpa
