// Assortativity — the "assortative (scalar and discrete)" algorithm class
// §IV-C lists.
//
// Scalar assortativity is the Pearson correlation of a numeric vertex
// attribute across arcs (Newman 2003); degree assortativity is the special
// case where the attribute is the degree. Discrete assortativity is the
// modularity-style coefficient over a categorical attribute:
//   r = (Σ_i e_ii − Σ_i a_i b_i) / (1 − Σ_i a_i b_i),
// with e the normalized category mixing matrix.

#ifndef MRPA_ALGORITHMS_ASSORTATIVITY_H_
#define MRPA_ALGORITHMS_ASSORTATIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"
#include "util/status.h"

namespace mrpa {

// Pearson correlation of (attribute[tail], attribute[head]) over all arcs.
// Fails with InvalidArgument when sizes mismatch or the graph has no arcs;
// returns 0 when either marginal has zero variance.
Result<double> ScalarAssortativity(const BinaryGraph& graph,
                                   const std::vector<double>& attribute);

// Scalar assortativity with attribute = out-degree (tail side) and
// in-degree (head side) — the classic degree assortativity for directed
// graphs.
Result<double> DegreeAssortativity(const BinaryGraph& graph);

// Discrete assortativity over a categorical attribute with values in
// [0, num_categories).
Result<double> DiscreteAssortativity(const BinaryGraph& graph,
                                     const std::vector<uint32_t>& category,
                                     uint32_t num_categories);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_ASSORTATIVITY_H_
