#include "algorithms/kcore.h"

#include <algorithm>

namespace mrpa {

std::vector<VertexId> CoreDecomposition::CoreMembers(uint32_t k) const {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < core_number.size(); ++v) {
    if (core_number[v] >= k) members.push_back(v);
  }
  return members;
}

CoreDecomposition KCoreDecomposition(const BinaryGraph& graph) {
  const BinaryGraph undirected = graph.Symmetrized();
  const uint32_t n = undirected.num_vertices();

  CoreDecomposition result;
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket peeling (Batagelj–Zaveršnik): process vertices in nondecreasing
  // current-degree order, decrementing neighbors as we peel.
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(undirected.OutDegree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // bucket_start[d]: first index in `order` of vertices with degree d.
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 0; d <= max_degree; ++d) {
    bucket_start[d + 1] += bucket_start[d];
  }
  std::vector<VertexId> order(n);
  std::vector<uint32_t> position(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }

  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    result.core_number[v] = degree[v];
    result.degeneracy = std::max(result.degeneracy, degree[v]);
    for (VertexId w : undirected.OutNeighbors(v)) {
      if (degree[w] <= degree[v]) continue;  // Already peeled or equal.
      // Swap w toward the front of its bucket, then shrink its degree.
      const uint32_t dw = degree[w];
      const uint32_t pw = position[w];
      const uint32_t bucket_front = bucket_start[dw];
      VertexId front_vertex = order[bucket_front];
      if (front_vertex != w) {
        std::swap(order[bucket_front], order[pw]);
        position[w] = bucket_front;
        position[front_vertex] = pw;
      }
      ++bucket_start[dw];
      --degree[w];
    }
  }
  return result;
}

}  // namespace mrpa
