// Degree statistics for single- and multi-relational graphs.

#ifndef MRPA_ALGORITHMS_DEGREE_H_
#define MRPA_ALGORITHMS_DEGREE_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"
#include "graph/multi_graph.h"

namespace mrpa {

struct DegreeStats {
  std::vector<uint32_t> out_degree;
  std::vector<uint32_t> in_degree;
  double mean_out = 0.0;
  uint32_t max_out = 0;
  uint32_t max_in = 0;

  // Histogram of out-degrees: histogram[d] = #vertices with out-degree d.
  std::vector<uint32_t> OutDegreeHistogram() const;
};

DegreeStats ComputeDegreeStats(const BinaryGraph& graph);

// Per-label degree stats for a multi-relational graph: element l describes
// the binary relation E_l.
std::vector<DegreeStats> PerLabelDegreeStats(const MultiRelationalGraph& graph);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_DEGREE_H_
