// DAG utilities: topological order and (bounded-size) transitive closure.
//
// Derived single-relational graphs (§IV-C) from acyclic label sequences —
// citation chains, version histories — are DAGs; these are the standard
// consumers.

#ifndef MRPA_ALGORITHMS_DAG_H_
#define MRPA_ALGORITHMS_DAG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/binary_graph.h"
#include "util/status.h"

namespace mrpa {

// Kahn's algorithm. Returns nullopt when the graph has a directed cycle.
std::optional<std::vector<VertexId>> TopologicalOrder(
    const BinaryGraph& graph);

inline bool IsDag(const BinaryGraph& graph) {
  return TopologicalOrder(graph).has_value();
}

// Reachability matrix as packed bitsets: row v holds every u reachable from
// v by a non-empty directed path (v itself is included only if v lies on a
// cycle). O(V·E/64) via reverse-topological propagation on DAGs and a
// per-SCC fallback otherwise — here implemented uniformly as iterative
// BFS-free bitset DP over strongly-connected condensation-free graphs:
// plain semi-naive iteration to a fixed point.
class ReachabilityMatrix {
 public:
  // Fails with InvalidArgument when V exceeds `max_vertices` (the matrix is
  // quadratic; the guard forces callers to opt in for big graphs).
  static Result<ReachabilityMatrix> Build(const BinaryGraph& graph,
                                          uint32_t max_vertices = 4096);

  bool Reaches(VertexId from, VertexId to) const;
  // Number of vertices reachable from v.
  size_t CountReachable(VertexId from) const;
  uint32_t num_vertices() const { return num_vertices_; }

 private:
  ReachabilityMatrix(uint32_t n)
      : num_vertices_(n), words_per_row_((n + 63) / 64),
        bits_(static_cast<size_t>(n) * words_per_row_, 0) {}

  void SetBit(VertexId row, VertexId column) {
    bits_[static_cast<size_t>(row) * words_per_row_ + column / 64] |=
        uint64_t{1} << (column % 64);
  }

  uint32_t num_vertices_;
  size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_DAG_H_
