#include <cmath>

#include "algorithms/centrality.h"

namespace mrpa {

Result<std::vector<double>> EigenvectorCentrality(
    const BinaryGraph& graph, const PowerIterationOptions& options) {
  const uint32_t n = graph.num_vertices();
  if (n == 0) return std::vector<double>{};
  if (graph.num_arcs() == 0) {
    // No edges: centrality is identically zero (conventional degenerate
    // case; the shifted iteration below would otherwise fix any vector).
    return std::vector<double>(n, 0.0);
  }

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n);

  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // x ← (Aᵀ + I) x: vertex w receives from every in-neighbor v (iterate
    // arcs forward and scatter). The +I Perron shift keeps the dominant
    // eigenvalue strictly largest in magnitude so the iteration converges
    // on bipartite graphs (e.g. stars) instead of oscillating; the shift
    // does not change the eigenvectors.
    for (uint32_t w = 0; w < n; ++w) next[w] = x[w];
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : graph.OutNeighbors(v)) next[w] += x[v];
    }
    double norm = 0.0;
    for (double value : next) norm += value * value;
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      // A^T x vanished (e.g. no edges): centrality is all-zero.
      return std::vector<double>(n, 0.0);
    }
    double delta = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - x[i]);
    }
    x.swap(next);
    if (delta < options.tolerance) return x;
  }
  return Status::ResourceExhausted(
      "power iteration did not converge within " +
      std::to_string(options.max_iterations) + " iterations");
}

}  // namespace mrpa
