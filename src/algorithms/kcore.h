// k-core decomposition over the undirected view of a graph.
//
// The k-core is the maximal subgraph in which every vertex has degree ≥ k;
// a vertex's core number is the largest k for which it belongs to the
// k-core. Computed by the linear-time peeling (bucket) algorithm.

#ifndef MRPA_ALGORITHMS_KCORE_H_
#define MRPA_ALGORITHMS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"

namespace mrpa {

struct CoreDecomposition {
  std::vector<uint32_t> core_number;  // Per vertex.
  uint32_t degeneracy = 0;            // max core number.

  // Vertices belonging to the k-core (core_number ≥ k).
  std::vector<VertexId> CoreMembers(uint32_t k) const;
};

CoreDecomposition KCoreDecomposition(const BinaryGraph& graph);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_KCORE_H_
