// Breadth-first search primitives over BinaryGraph — the geodesic substrate
// for the §IV-C centralities.

#ifndef MRPA_ALGORITHMS_BFS_H_
#define MRPA_ALGORITHMS_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/binary_graph.h"

namespace mrpa {

// Distance value for unreachable vertices.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// Single-source shortest (hop-count) distances. dist[source] = 0,
// kUnreachable where no path exists.
std::vector<uint32_t> BfsDistances(const BinaryGraph& graph, VertexId source);

// All-pairs hop distances via repeated BFS; O(V·(V+E)). Row v is
// BfsDistances(graph, v).
std::vector<std::vector<uint32_t>> AllPairsDistances(const BinaryGraph& graph);

// The hop-count diameter over reachable pairs (0 for graphs with no
// reachable pairs).
uint32_t Diameter(const BinaryGraph& graph);

// One shortest path from source to target (vertex sequence, inclusive), or
// an empty vector when unreachable / source == target with no self-loop.
std::vector<VertexId> ShortestPath(const BinaryGraph& graph, VertexId source,
                                   VertexId target);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_BFS_H_
