#include "algorithms/assortativity.h"

#include <cmath>

namespace mrpa {

Result<double> ScalarAssortativity(const BinaryGraph& graph,
                                   const std::vector<double>& attribute) {
  if (attribute.size() != graph.num_vertices()) {
    return Status::InvalidArgument("attribute size must equal |V|");
  }
  if (graph.num_arcs() == 0) {
    return Status::InvalidArgument("assortativity undefined on 0 arcs");
  }

  const double m = static_cast<double>(graph.num_arcs());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double x = attribute[v];
    for (VertexId w : graph.OutNeighbors(v)) {
      const double y = attribute[w];
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_yy += y * y;
      sum_xy += x * y;
    }
  }
  const double var_x = sum_xx / m - (sum_x / m) * (sum_x / m);
  const double var_y = sum_yy / m - (sum_y / m) * (sum_y / m);
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  const double cov = sum_xy / m - (sum_x / m) * (sum_y / m);
  return cov / std::sqrt(var_x * var_y);
}

Result<double> DegreeAssortativity(const BinaryGraph& graph) {
  if (graph.num_arcs() == 0) {
    return Status::InvalidArgument("assortativity undefined on 0 arcs");
  }
  const uint32_t n = graph.num_vertices();
  std::vector<double> out_degree(n, 0.0), in_degree(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    out_degree[v] = static_cast<double>(graph.OutDegree(v));
    for (VertexId w : graph.OutNeighbors(v)) in_degree[w] += 1.0;
  }

  const double m = static_cast<double>(graph.num_arcs());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (VertexId v = 0; v < n; ++v) {
    const double x = out_degree[v];
    for (VertexId w : graph.OutNeighbors(v)) {
      const double y = in_degree[w];
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_yy += y * y;
      sum_xy += x * y;
    }
  }
  const double var_x = sum_xx / m - (sum_x / m) * (sum_x / m);
  const double var_y = sum_yy / m - (sum_y / m) * (sum_y / m);
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  const double cov = sum_xy / m - (sum_x / m) * (sum_y / m);
  return cov / std::sqrt(var_x * var_y);
}

Result<double> DiscreteAssortativity(const BinaryGraph& graph,
                                     const std::vector<uint32_t>& category,
                                     uint32_t num_categories) {
  if (category.size() != graph.num_vertices()) {
    return Status::InvalidArgument("category size must equal |V|");
  }
  if (graph.num_arcs() == 0) {
    return Status::InvalidArgument("assortativity undefined on 0 arcs");
  }
  for (uint32_t c : category) {
    if (c >= num_categories) {
      return Status::InvalidArgument("category id out of range");
    }
  }

  // Normalized mixing matrix marginals: a_i = Σ_j e_ij (tail side),
  // b_j = Σ_i e_ij (head side).
  const double m = static_cast<double>(graph.num_arcs());
  std::vector<double> a(num_categories, 0.0), b(num_categories, 0.0);
  double trace = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      const uint32_t ci = category[v];
      const uint32_t cj = category[w];
      a[ci] += 1.0 / m;
      b[cj] += 1.0 / m;
      if (ci == cj) trace += 1.0 / m;
    }
  }
  double ab = 0.0;
  for (uint32_t c = 0; c < num_categories; ++c) ab += a[c] * b[c];
  if (ab >= 1.0) return 1.0;  // Degenerate single-category graph.
  return (trace - ab) / (1.0 - ab);
}

}  // namespace mrpa
