// Triangle counting and clustering coefficients.
//
// Defined over the undirected view of the graph: the functions symmetrize
// internally (arc (i,j) implies {i,j}) and ignore self-loops, following the
// standard definitions (ref [1] of the paper, ch. 3).

#ifndef MRPA_ALGORITHMS_CLUSTERING_H_
#define MRPA_ALGORITHMS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/binary_graph.h"

namespace mrpa {

struct ClusteringResult {
  // Number of triangles each vertex participates in.
  std::vector<uint64_t> triangles_per_vertex;
  // Total distinct triangles in the graph (each counted once).
  uint64_t total_triangles = 0;
  // Local clustering coefficient per vertex: triangles(v) / C(deg(v), 2);
  // 0 where deg(v) < 2.
  std::vector<double> local_coefficient;
  // Average of the local coefficients (Watts–Strogatz).
  double average_coefficient = 0.0;
  // Global (transitivity): 3·triangles / #open-or-closed wedges.
  double global_coefficient = 0.0;
};

ClusteringResult ComputeClustering(const BinaryGraph& graph);

}  // namespace mrpa

#endif  // MRPA_ALGORITHMS_CLUSTERING_H_
