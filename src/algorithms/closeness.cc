#include "algorithms/bfs.h"
#include "algorithms/centrality.h"

#include <algorithm>
#include <numeric>

namespace mrpa {

std::vector<double> ClosenessCentrality(const BinaryGraph& graph) {
  const uint32_t n = graph.num_vertices();
  std::vector<double> closeness(n, 0.0);
  if (n <= 1) return closeness;

  for (VertexId v = 0; v < n; ++v) {
    std::vector<uint32_t> dist = BfsDistances(graph, v);
    uint64_t total = 0;
    uint32_t reachable = 0;  // Excluding v itself.
    for (VertexId u = 0; u < n; ++u) {
      if (u == v || dist[u] == kUnreachable) continue;
      total += dist[u];
      ++reachable;
    }
    if (reachable == 0 || total == 0) continue;
    // Wasserman–Faust: (r/(n-1)) · (r/Σd) with r = |reachable|.
    const double r = static_cast<double>(reachable);
    closeness[v] = (r / (n - 1)) * (r / static_cast<double>(total));
  }
  return closeness;
}

std::vector<VertexId> RankByScore(const std::vector<double>& scores) {
  std::vector<VertexId> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

}  // namespace mrpa
