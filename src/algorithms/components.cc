#include "algorithms/components.h"

#include <algorithm>
#include <deque>

namespace mrpa {

uint32_t ComponentResult::LargestComponentSize() const {
  uint32_t largest = 0;
  for (uint32_t size : sizes) largest = std::max(largest, size);
  return largest;
}

ComponentResult WeaklyConnectedComponents(const BinaryGraph& graph) {
  const BinaryGraph undirected = graph.Symmetrized();
  const uint32_t n = undirected.num_vertices();
  ComponentResult result;
  result.component.assign(n, UINT32_MAX);

  for (VertexId root = 0; root < n; ++root) {
    if (result.component[root] != UINT32_MAX) continue;
    const uint32_t id = result.num_components++;
    result.sizes.push_back(0);
    std::deque<VertexId> queue = {root};
    result.component[root] = id;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      ++result.sizes[id];
      for (VertexId w : undirected.OutNeighbors(v)) {
        if (result.component[w] == UINT32_MAX) {
          result.component[w] = id;
          queue.push_back(w);
        }
      }
    }
  }
  return result;
}

ComponentResult StronglyConnectedComponents(const BinaryGraph& graph) {
  const uint32_t n = graph.num_vertices();
  ComponentResult result;
  result.component.assign(n, UINT32_MAX);

  // Iterative Tarjan.
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> scc_stack;
  uint32_t next_index = 0;

  struct Frame {
    VertexId v;
    size_t child = 0;  // Cursor into OutNeighbors(v).
  };
  std::vector<Frame> call_stack;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto neighbors = graph.OutNeighbors(frame.v);
      if (frame.child < neighbors.size()) {
        VertexId w = neighbors[frame.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w});
        } else if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], index[w]);
        }
      } else {
        const VertexId v = frame.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          lowlink[call_stack.back().v] =
              std::min(lowlink[call_stack.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          const uint32_t id = result.num_components++;
          result.sizes.push_back(0);
          while (true) {
            VertexId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            result.component[w] = id;
            ++result.sizes[id];
            if (w == v) break;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace mrpa
