
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generators/barabasi_albert.cc" "src/generators/CMakeFiles/mrpa_generators.dir/barabasi_albert.cc.o" "gcc" "src/generators/CMakeFiles/mrpa_generators.dir/barabasi_albert.cc.o.d"
  "/root/repo/src/generators/erdos_renyi.cc" "src/generators/CMakeFiles/mrpa_generators.dir/erdos_renyi.cc.o" "gcc" "src/generators/CMakeFiles/mrpa_generators.dir/erdos_renyi.cc.o.d"
  "/root/repo/src/generators/lattice.cc" "src/generators/CMakeFiles/mrpa_generators.dir/lattice.cc.o" "gcc" "src/generators/CMakeFiles/mrpa_generators.dir/lattice.cc.o.d"
  "/root/repo/src/generators/social_network.cc" "src/generators/CMakeFiles/mrpa_generators.dir/social_network.cc.o" "gcc" "src/generators/CMakeFiles/mrpa_generators.dir/social_network.cc.o.d"
  "/root/repo/src/generators/watts_strogatz.cc" "src/generators/CMakeFiles/mrpa_generators.dir/watts_strogatz.cc.o" "gcc" "src/generators/CMakeFiles/mrpa_generators.dir/watts_strogatz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mrpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrpa_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
