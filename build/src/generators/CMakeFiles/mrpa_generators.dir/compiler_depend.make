# Empty compiler generated dependencies file for mrpa_generators.
# This may be replaced when dependencies are built.
