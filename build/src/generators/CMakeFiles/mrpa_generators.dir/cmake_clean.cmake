file(REMOVE_RECURSE
  "CMakeFiles/mrpa_generators.dir/barabasi_albert.cc.o"
  "CMakeFiles/mrpa_generators.dir/barabasi_albert.cc.o.d"
  "CMakeFiles/mrpa_generators.dir/erdos_renyi.cc.o"
  "CMakeFiles/mrpa_generators.dir/erdos_renyi.cc.o.d"
  "CMakeFiles/mrpa_generators.dir/lattice.cc.o"
  "CMakeFiles/mrpa_generators.dir/lattice.cc.o.d"
  "CMakeFiles/mrpa_generators.dir/social_network.cc.o"
  "CMakeFiles/mrpa_generators.dir/social_network.cc.o.d"
  "CMakeFiles/mrpa_generators.dir/watts_strogatz.cc.o"
  "CMakeFiles/mrpa_generators.dir/watts_strogatz.cc.o.d"
  "libmrpa_generators.a"
  "libmrpa_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
