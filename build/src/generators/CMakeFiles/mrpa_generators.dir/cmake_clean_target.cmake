file(REMOVE_RECURSE
  "libmrpa_generators.a"
)
