file(REMOVE_RECURSE
  "CMakeFiles/mrpa_core.dir/binary_algebra.cc.o"
  "CMakeFiles/mrpa_core.dir/binary_algebra.cc.o.d"
  "CMakeFiles/mrpa_core.dir/edge_pattern.cc.o"
  "CMakeFiles/mrpa_core.dir/edge_pattern.cc.o.d"
  "CMakeFiles/mrpa_core.dir/edge_universe.cc.o"
  "CMakeFiles/mrpa_core.dir/edge_universe.cc.o.d"
  "CMakeFiles/mrpa_core.dir/expr.cc.o"
  "CMakeFiles/mrpa_core.dir/expr.cc.o.d"
  "CMakeFiles/mrpa_core.dir/path.cc.o"
  "CMakeFiles/mrpa_core.dir/path.cc.o.d"
  "CMakeFiles/mrpa_core.dir/path_set.cc.o"
  "CMakeFiles/mrpa_core.dir/path_set.cc.o.d"
  "CMakeFiles/mrpa_core.dir/simplify.cc.o"
  "CMakeFiles/mrpa_core.dir/simplify.cc.o.d"
  "CMakeFiles/mrpa_core.dir/traversal.cc.o"
  "CMakeFiles/mrpa_core.dir/traversal.cc.o.d"
  "libmrpa_core.a"
  "libmrpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
