# Empty compiler generated dependencies file for mrpa_core.
# This may be replaced when dependencies are built.
