file(REMOVE_RECURSE
  "libmrpa_core.a"
)
