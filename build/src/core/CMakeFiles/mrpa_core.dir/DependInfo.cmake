
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binary_algebra.cc" "src/core/CMakeFiles/mrpa_core.dir/binary_algebra.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/binary_algebra.cc.o.d"
  "/root/repo/src/core/edge_pattern.cc" "src/core/CMakeFiles/mrpa_core.dir/edge_pattern.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/edge_pattern.cc.o.d"
  "/root/repo/src/core/edge_universe.cc" "src/core/CMakeFiles/mrpa_core.dir/edge_universe.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/edge_universe.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/core/CMakeFiles/mrpa_core.dir/expr.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/expr.cc.o.d"
  "/root/repo/src/core/path.cc" "src/core/CMakeFiles/mrpa_core.dir/path.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/path.cc.o.d"
  "/root/repo/src/core/path_set.cc" "src/core/CMakeFiles/mrpa_core.dir/path_set.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/path_set.cc.o.d"
  "/root/repo/src/core/simplify.cc" "src/core/CMakeFiles/mrpa_core.dir/simplify.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/simplify.cc.o.d"
  "/root/repo/src/core/traversal.cc" "src/core/CMakeFiles/mrpa_core.dir/traversal.cc.o" "gcc" "src/core/CMakeFiles/mrpa_core.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
