# Empty dependencies file for mrpa_engine.
# This may be replaced when dependencies are built.
