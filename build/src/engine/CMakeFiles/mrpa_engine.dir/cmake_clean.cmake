file(REMOVE_RECURSE
  "CMakeFiles/mrpa_engine.dir/chain_planner.cc.o"
  "CMakeFiles/mrpa_engine.dir/chain_planner.cc.o.d"
  "CMakeFiles/mrpa_engine.dir/parser.cc.o"
  "CMakeFiles/mrpa_engine.dir/parser.cc.o.d"
  "CMakeFiles/mrpa_engine.dir/path_iterator.cc.o"
  "CMakeFiles/mrpa_engine.dir/path_iterator.cc.o.d"
  "CMakeFiles/mrpa_engine.dir/traversal_builder.cc.o"
  "CMakeFiles/mrpa_engine.dir/traversal_builder.cc.o.d"
  "libmrpa_engine.a"
  "libmrpa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
