
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/chain_planner.cc" "src/engine/CMakeFiles/mrpa_engine.dir/chain_planner.cc.o" "gcc" "src/engine/CMakeFiles/mrpa_engine.dir/chain_planner.cc.o.d"
  "/root/repo/src/engine/parser.cc" "src/engine/CMakeFiles/mrpa_engine.dir/parser.cc.o" "gcc" "src/engine/CMakeFiles/mrpa_engine.dir/parser.cc.o.d"
  "/root/repo/src/engine/path_iterator.cc" "src/engine/CMakeFiles/mrpa_engine.dir/path_iterator.cc.o" "gcc" "src/engine/CMakeFiles/mrpa_engine.dir/path_iterator.cc.o.d"
  "/root/repo/src/engine/traversal_builder.cc" "src/engine/CMakeFiles/mrpa_engine.dir/traversal_builder.cc.o" "gcc" "src/engine/CMakeFiles/mrpa_engine.dir/traversal_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mrpa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
