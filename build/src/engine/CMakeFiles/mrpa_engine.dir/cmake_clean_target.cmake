file(REMOVE_RECURSE
  "libmrpa_engine.a"
)
