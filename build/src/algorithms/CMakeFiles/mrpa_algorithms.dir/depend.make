# Empty dependencies file for mrpa_algorithms.
# This may be replaced when dependencies are built.
