
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/assortativity.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/assortativity.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/assortativity.cc.o.d"
  "/root/repo/src/algorithms/betweenness.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/betweenness.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/betweenness.cc.o.d"
  "/root/repo/src/algorithms/bfs.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/bfs.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/bfs.cc.o.d"
  "/root/repo/src/algorithms/closeness.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/closeness.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/closeness.cc.o.d"
  "/root/repo/src/algorithms/clustering.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/clustering.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/clustering.cc.o.d"
  "/root/repo/src/algorithms/communities.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/communities.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/communities.cc.o.d"
  "/root/repo/src/algorithms/components.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/components.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/components.cc.o.d"
  "/root/repo/src/algorithms/dag.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/dag.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/dag.cc.o.d"
  "/root/repo/src/algorithms/degree.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/degree.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/degree.cc.o.d"
  "/root/repo/src/algorithms/eigenvector.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/eigenvector.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/eigenvector.cc.o.d"
  "/root/repo/src/algorithms/katz_hits.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/katz_hits.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/katz_hits.cc.o.d"
  "/root/repo/src/algorithms/kcore.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/kcore.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/kcore.cc.o.d"
  "/root/repo/src/algorithms/pagerank.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/pagerank.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/pagerank.cc.o.d"
  "/root/repo/src/algorithms/spreading_activation.cc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/spreading_activation.cc.o" "gcc" "src/algorithms/CMakeFiles/mrpa_algorithms.dir/spreading_activation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mrpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
