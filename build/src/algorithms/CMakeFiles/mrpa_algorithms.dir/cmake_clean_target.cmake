file(REMOVE_RECURSE
  "libmrpa_algorithms.a"
)
