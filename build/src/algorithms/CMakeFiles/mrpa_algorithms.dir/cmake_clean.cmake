file(REMOVE_RECURSE
  "CMakeFiles/mrpa_algorithms.dir/assortativity.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/assortativity.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/betweenness.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/betweenness.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/bfs.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/bfs.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/closeness.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/closeness.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/clustering.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/clustering.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/communities.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/communities.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/components.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/components.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/dag.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/dag.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/degree.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/degree.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/eigenvector.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/eigenvector.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/katz_hits.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/katz_hits.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/kcore.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/kcore.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/pagerank.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/pagerank.cc.o.d"
  "CMakeFiles/mrpa_algorithms.dir/spreading_activation.cc.o"
  "CMakeFiles/mrpa_algorithms.dir/spreading_activation.cc.o.d"
  "libmrpa_algorithms.a"
  "libmrpa_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
