# Empty compiler generated dependencies file for mrpa_util.
# This may be replaced when dependencies are built.
