file(REMOVE_RECURSE
  "CMakeFiles/mrpa_util.dir/random.cc.o"
  "CMakeFiles/mrpa_util.dir/random.cc.o.d"
  "CMakeFiles/mrpa_util.dir/status.cc.o"
  "CMakeFiles/mrpa_util.dir/status.cc.o.d"
  "CMakeFiles/mrpa_util.dir/string_util.cc.o"
  "CMakeFiles/mrpa_util.dir/string_util.cc.o.d"
  "libmrpa_util.a"
  "libmrpa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
