file(REMOVE_RECURSE
  "libmrpa_util.a"
)
