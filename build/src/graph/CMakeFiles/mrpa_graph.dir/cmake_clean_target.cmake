file(REMOVE_RECURSE
  "libmrpa_graph.a"
)
