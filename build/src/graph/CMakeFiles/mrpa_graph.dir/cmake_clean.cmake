file(REMOVE_RECURSE
  "CMakeFiles/mrpa_graph.dir/binary_graph.cc.o"
  "CMakeFiles/mrpa_graph.dir/binary_graph.cc.o.d"
  "CMakeFiles/mrpa_graph.dir/dynamic_graph.cc.o"
  "CMakeFiles/mrpa_graph.dir/dynamic_graph.cc.o.d"
  "CMakeFiles/mrpa_graph.dir/io.cc.o"
  "CMakeFiles/mrpa_graph.dir/io.cc.o.d"
  "CMakeFiles/mrpa_graph.dir/multi_graph.cc.o"
  "CMakeFiles/mrpa_graph.dir/multi_graph.cc.o.d"
  "CMakeFiles/mrpa_graph.dir/projection.cc.o"
  "CMakeFiles/mrpa_graph.dir/projection.cc.o.d"
  "CMakeFiles/mrpa_graph.dir/weighted_graph.cc.o"
  "CMakeFiles/mrpa_graph.dir/weighted_graph.cc.o.d"
  "libmrpa_graph.a"
  "libmrpa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
