# Empty compiler generated dependencies file for mrpa_graph.
# This may be replaced when dependencies are built.
