
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/binary_graph.cc" "src/graph/CMakeFiles/mrpa_graph.dir/binary_graph.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/binary_graph.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/graph/CMakeFiles/mrpa_graph.dir/dynamic_graph.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/mrpa_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/multi_graph.cc" "src/graph/CMakeFiles/mrpa_graph.dir/multi_graph.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/multi_graph.cc.o.d"
  "/root/repo/src/graph/projection.cc" "src/graph/CMakeFiles/mrpa_graph.dir/projection.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/projection.cc.o.d"
  "/root/repo/src/graph/weighted_graph.cc" "src/graph/CMakeFiles/mrpa_graph.dir/weighted_graph.cc.o" "gcc" "src/graph/CMakeFiles/mrpa_graph.dir/weighted_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
