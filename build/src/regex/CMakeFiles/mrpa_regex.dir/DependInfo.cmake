
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/derivatives.cc" "src/regex/CMakeFiles/mrpa_regex.dir/derivatives.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/derivatives.cc.o.d"
  "/root/repo/src/regex/derived_relations.cc" "src/regex/CMakeFiles/mrpa_regex.dir/derived_relations.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/derived_relations.cc.o.d"
  "/root/repo/src/regex/dfa_minimizer.cc" "src/regex/CMakeFiles/mrpa_regex.dir/dfa_minimizer.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/dfa_minimizer.cc.o.d"
  "/root/repo/src/regex/figure1.cc" "src/regex/CMakeFiles/mrpa_regex.dir/figure1.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/figure1.cc.o.d"
  "/root/repo/src/regex/generator.cc" "src/regex/CMakeFiles/mrpa_regex.dir/generator.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/generator.cc.o.d"
  "/root/repo/src/regex/lazy_dfa.cc" "src/regex/CMakeFiles/mrpa_regex.dir/lazy_dfa.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/lazy_dfa.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/regex/CMakeFiles/mrpa_regex.dir/nfa.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/nfa.cc.o.d"
  "/root/repo/src/regex/recognizer.cc" "src/regex/CMakeFiles/mrpa_regex.dir/recognizer.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/recognizer.cc.o.d"
  "/root/repo/src/regex/sampler.cc" "src/regex/CMakeFiles/mrpa_regex.dir/sampler.cc.o" "gcc" "src/regex/CMakeFiles/mrpa_regex.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrpa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
