file(REMOVE_RECURSE
  "CMakeFiles/mrpa_regex.dir/derivatives.cc.o"
  "CMakeFiles/mrpa_regex.dir/derivatives.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/derived_relations.cc.o"
  "CMakeFiles/mrpa_regex.dir/derived_relations.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/dfa_minimizer.cc.o"
  "CMakeFiles/mrpa_regex.dir/dfa_minimizer.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/figure1.cc.o"
  "CMakeFiles/mrpa_regex.dir/figure1.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/generator.cc.o"
  "CMakeFiles/mrpa_regex.dir/generator.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/lazy_dfa.cc.o"
  "CMakeFiles/mrpa_regex.dir/lazy_dfa.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/nfa.cc.o"
  "CMakeFiles/mrpa_regex.dir/nfa.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/recognizer.cc.o"
  "CMakeFiles/mrpa_regex.dir/recognizer.cc.o.d"
  "CMakeFiles/mrpa_regex.dir/sampler.cc.o"
  "CMakeFiles/mrpa_regex.dir/sampler.cc.o.d"
  "libmrpa_regex.a"
  "libmrpa_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
