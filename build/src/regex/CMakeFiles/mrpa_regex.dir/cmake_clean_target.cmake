file(REMOVE_RECURSE
  "libmrpa_regex.a"
)
