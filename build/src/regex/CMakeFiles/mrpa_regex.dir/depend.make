# Empty dependencies file for mrpa_regex.
# This may be replaced when dependencies are built.
