# Empty compiler generated dependencies file for mrpa_shell.
# This may be replaced when dependencies are built.
