file(REMOVE_RECURSE
  "CMakeFiles/mrpa_shell.dir/mrpa_shell.cpp.o"
  "CMakeFiles/mrpa_shell.dir/mrpa_shell.cpp.o.d"
  "mrpa_shell"
  "mrpa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrpa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
