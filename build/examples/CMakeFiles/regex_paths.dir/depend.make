# Empty dependencies file for regex_paths.
# This may be replaced when dependencies are built.
