file(REMOVE_RECURSE
  "CMakeFiles/regex_paths.dir/regex_paths.cpp.o"
  "CMakeFiles/regex_paths.dir/regex_paths.cpp.o.d"
  "regex_paths"
  "regex_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
