# Empty compiler generated dependencies file for constrained_paths.
# This may be replaced when dependencies are built.
