file(REMOVE_RECURSE
  "CMakeFiles/constrained_paths.dir/constrained_paths.cpp.o"
  "CMakeFiles/constrained_paths.dir/constrained_paths.cpp.o.d"
  "constrained_paths"
  "constrained_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
