file(REMOVE_RECURSE
  "CMakeFiles/coauthor_analysis.dir/coauthor_analysis.cpp.o"
  "CMakeFiles/coauthor_analysis.dir/coauthor_analysis.cpp.o.d"
  "coauthor_analysis"
  "coauthor_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coauthor_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
