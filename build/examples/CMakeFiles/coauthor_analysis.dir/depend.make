# Empty dependencies file for coauthor_analysis.
# This may be replaced when dependencies are built.
