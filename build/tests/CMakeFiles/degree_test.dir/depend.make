# Empty dependencies file for degree_test.
# This may be replaced when dependencies are built.
