file(REMOVE_RECURSE
  "CMakeFiles/derivatives_test.dir/derivatives_test.cc.o"
  "CMakeFiles/derivatives_test.dir/derivatives_test.cc.o.d"
  "derivatives_test"
  "derivatives_test.pdb"
  "derivatives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivatives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
