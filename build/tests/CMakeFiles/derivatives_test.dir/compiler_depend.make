# Empty compiler generated dependencies file for derivatives_test.
# This may be replaced when dependencies are built.
