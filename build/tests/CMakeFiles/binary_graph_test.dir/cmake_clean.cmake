file(REMOVE_RECURSE
  "CMakeFiles/binary_graph_test.dir/binary_graph_test.cc.o"
  "CMakeFiles/binary_graph_test.dir/binary_graph_test.cc.o.d"
  "binary_graph_test"
  "binary_graph_test.pdb"
  "binary_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
