# Empty dependencies file for binary_graph_test.
# This may be replaced when dependencies are built.
