file(REMOVE_RECURSE
  "CMakeFiles/edge_pattern_test.dir/edge_pattern_test.cc.o"
  "CMakeFiles/edge_pattern_test.dir/edge_pattern_test.cc.o.d"
  "edge_pattern_test"
  "edge_pattern_test.pdb"
  "edge_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
