file(REMOVE_RECURSE
  "CMakeFiles/path_set_test.dir/path_set_test.cc.o"
  "CMakeFiles/path_set_test.dir/path_set_test.cc.o.d"
  "path_set_test"
  "path_set_test.pdb"
  "path_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
