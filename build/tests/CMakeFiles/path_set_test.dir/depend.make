# Empty dependencies file for path_set_test.
# This may be replaced when dependencies are built.
