file(REMOVE_RECURSE
  "CMakeFiles/weighted_graph_test.dir/weighted_graph_test.cc.o"
  "CMakeFiles/weighted_graph_test.dir/weighted_graph_test.cc.o.d"
  "weighted_graph_test"
  "weighted_graph_test.pdb"
  "weighted_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
