# Empty dependencies file for monoid_property_test.
# This may be replaced when dependencies are built.
