file(REMOVE_RECURSE
  "CMakeFiles/monoid_property_test.dir/monoid_property_test.cc.o"
  "CMakeFiles/monoid_property_test.dir/monoid_property_test.cc.o.d"
  "monoid_property_test"
  "monoid_property_test.pdb"
  "monoid_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monoid_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
