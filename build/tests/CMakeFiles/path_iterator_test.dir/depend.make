# Empty dependencies file for path_iterator_test.
# This may be replaced when dependencies are built.
