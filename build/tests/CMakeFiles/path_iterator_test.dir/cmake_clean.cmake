file(REMOVE_RECURSE
  "CMakeFiles/path_iterator_test.dir/path_iterator_test.cc.o"
  "CMakeFiles/path_iterator_test.dir/path_iterator_test.cc.o.d"
  "path_iterator_test"
  "path_iterator_test.pdb"
  "path_iterator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
