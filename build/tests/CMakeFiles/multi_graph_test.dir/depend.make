# Empty dependencies file for multi_graph_test.
# This may be replaced when dependencies are built.
