file(REMOVE_RECURSE
  "CMakeFiles/multi_graph_test.dir/multi_graph_test.cc.o"
  "CMakeFiles/multi_graph_test.dir/multi_graph_test.cc.o.d"
  "multi_graph_test"
  "multi_graph_test.pdb"
  "multi_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
