file(REMOVE_RECURSE
  "CMakeFiles/dfa_minimizer_test.dir/dfa_minimizer_test.cc.o"
  "CMakeFiles/dfa_minimizer_test.dir/dfa_minimizer_test.cc.o.d"
  "dfa_minimizer_test"
  "dfa_minimizer_test.pdb"
  "dfa_minimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfa_minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
