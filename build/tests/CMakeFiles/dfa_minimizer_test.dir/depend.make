# Empty dependencies file for dfa_minimizer_test.
# This may be replaced when dependencies are built.
