file(REMOVE_RECURSE
  "CMakeFiles/chain_planner_test.dir/chain_planner_test.cc.o"
  "CMakeFiles/chain_planner_test.dir/chain_planner_test.cc.o.d"
  "chain_planner_test"
  "chain_planner_test.pdb"
  "chain_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
