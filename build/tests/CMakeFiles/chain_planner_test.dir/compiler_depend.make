# Empty compiler generated dependencies file for chain_planner_test.
# This may be replaced when dependencies are built.
