# Empty compiler generated dependencies file for communities_test.
# This may be replaced when dependencies are built.
