file(REMOVE_RECURSE
  "CMakeFiles/path_analysis_test.dir/path_analysis_test.cc.o"
  "CMakeFiles/path_analysis_test.dir/path_analysis_test.cc.o.d"
  "path_analysis_test"
  "path_analysis_test.pdb"
  "path_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
