file(REMOVE_RECURSE
  "CMakeFiles/binary_algebra_test.dir/binary_algebra_test.cc.o"
  "CMakeFiles/binary_algebra_test.dir/binary_algebra_test.cc.o.d"
  "binary_algebra_test"
  "binary_algebra_test.pdb"
  "binary_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
