# Empty dependencies file for binary_algebra_test.
# This may be replaced when dependencies are built.
