# Empty dependencies file for traversal_builder_test.
# This may be replaced when dependencies are built.
