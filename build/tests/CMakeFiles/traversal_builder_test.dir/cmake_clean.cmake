file(REMOVE_RECURSE
  "CMakeFiles/traversal_builder_test.dir/traversal_builder_test.cc.o"
  "CMakeFiles/traversal_builder_test.dir/traversal_builder_test.cc.o.d"
  "traversal_builder_test"
  "traversal_builder_test.pdb"
  "traversal_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traversal_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
