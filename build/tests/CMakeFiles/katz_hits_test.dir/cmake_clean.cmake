file(REMOVE_RECURSE
  "CMakeFiles/katz_hits_test.dir/katz_hits_test.cc.o"
  "CMakeFiles/katz_hits_test.dir/katz_hits_test.cc.o.d"
  "katz_hits_test"
  "katz_hits_test.pdb"
  "katz_hits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/katz_hits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
