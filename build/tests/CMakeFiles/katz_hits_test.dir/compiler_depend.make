# Empty compiler generated dependencies file for katz_hits_test.
# This may be replaced when dependencies are built.
