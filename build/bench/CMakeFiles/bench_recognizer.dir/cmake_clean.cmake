file(REMOVE_RECURSE
  "CMakeFiles/bench_recognizer.dir/bench_recognizer.cc.o"
  "CMakeFiles/bench_recognizer.dir/bench_recognizer.cc.o.d"
  "bench_recognizer"
  "bench_recognizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recognizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
