# Empty compiler generated dependencies file for bench_recognizer.
# This may be replaced when dependencies are built.
