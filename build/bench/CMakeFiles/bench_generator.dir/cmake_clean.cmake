file(REMOVE_RECURSE
  "CMakeFiles/bench_generator.dir/bench_generator.cc.o"
  "CMakeFiles/bench_generator.dir/bench_generator.cc.o.d"
  "bench_generator"
  "bench_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
