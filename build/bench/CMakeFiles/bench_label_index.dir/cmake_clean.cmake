file(REMOVE_RECURSE
  "CMakeFiles/bench_label_index.dir/bench_label_index.cc.o"
  "CMakeFiles/bench_label_index.dir/bench_label_index.cc.o.d"
  "bench_label_index"
  "bench_label_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
