# Empty dependencies file for bench_label_index.
# This may be replaced when dependencies are built.
