file(REMOVE_RECURSE
  "CMakeFiles/bench_join_vs_product.dir/bench_join_vs_product.cc.o"
  "CMakeFiles/bench_join_vs_product.dir/bench_join_vs_product.cc.o.d"
  "bench_join_vs_product"
  "bench_join_vs_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_vs_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
