# Empty compiler generated dependencies file for bench_join_vs_product.
# This may be replaced when dependencies are built.
