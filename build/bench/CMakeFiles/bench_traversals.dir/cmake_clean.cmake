file(REMOVE_RECURSE
  "CMakeFiles/bench_traversals.dir/bench_traversals.cc.o"
  "CMakeFiles/bench_traversals.dir/bench_traversals.cc.o.d"
  "bench_traversals"
  "bench_traversals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traversals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
