# Empty compiler generated dependencies file for bench_traversals.
# This may be replaced when dependencies are built.
