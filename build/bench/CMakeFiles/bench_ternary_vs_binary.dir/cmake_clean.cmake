file(REMOVE_RECURSE
  "CMakeFiles/bench_ternary_vs_binary.dir/bench_ternary_vs_binary.cc.o"
  "CMakeFiles/bench_ternary_vs_binary.dir/bench_ternary_vs_binary.cc.o.d"
  "bench_ternary_vs_binary"
  "bench_ternary_vs_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ternary_vs_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
