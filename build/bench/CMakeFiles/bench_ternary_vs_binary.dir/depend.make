# Empty dependencies file for bench_ternary_vs_binary.
# This may be replaced when dependencies are built.
