file(REMOVE_RECURSE
  "CMakeFiles/bench_core_ops.dir/bench_core_ops.cc.o"
  "CMakeFiles/bench_core_ops.dir/bench_core_ops.cc.o.d"
  "bench_core_ops"
  "bench_core_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
