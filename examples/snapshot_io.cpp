// Snapshot storage: save a graph as a checksummed MRGS image, load it
// back zero-copy, and traverse the mapped CSR with the same engines.
//
// The snapshot stores exactly the arrays the traversal stack consumes
// (edge table, per-label CSR out-runs, reverse index, name tables), so
// a cold process pays validation — CRC-32C per section plus structural
// and semantic checks — instead of parsing text and rebuilding indexes.
// E19 (bench_snapshot) measures the payoff; this walkthrough shows the
// API. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/snapshot_io

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/edge_pattern.h"
#include "core/traversal.h"
#include "graph/multi_graph.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/exec_context.h"

using namespace mrpa;  // NOLINT — example brevity.

int main() {
  // --- 1. Build the graph to persist --------------------------------------
  MultiGraphBuilder builder;
  builder.AddEdge("marko", "knows", "peter");
  builder.AddEdge("marko", "knows", "josh");
  builder.AddEdge("josh", "knows", "peter");
  builder.AddEdge("marko", "created", "mrpa");
  builder.AddEdge("josh", "created", "mrpa");
  builder.AddEdge("josh", "created", "gremlin");
  builder.AddEdge("peter", "likes", "gremlin");
  MultiRelationalGraph g = builder.Build();

  const std::string path =
      (std::filesystem::temp_directory_path() / "snapshot_io_example.mrgs")
          .string();

  // --- 2. Save: one deterministic, checksummed image ----------------------
  // Same graph → same bytes, so images diff and cache cleanly.
  storage::SnapshotWriter writer;
  if (Status s = writer.WriteFile(g, path); !s.ok()) {
    std::cerr << "save failed: " << s << "\n";
    return 1;
  }
  std::cout << "Saved " << std::filesystem::file_size(path) << "-byte image: "
            << path << "\n";

  // --- 3. Load: zero-copy mmap, validated before any accessor -------------
  // MapFile serves the CSR straight out of the page cache. ReadFile is the
  // owned-buffer alternative; both run the identical validation pipeline
  // and fail with a typed Status on any corruption.
  storage::SnapshotReader reader;
  auto universe = reader.MapFile(path);
  if (!universe.ok()) {
    std::cerr << "load failed: " << universe.status() << "\n";
    return 1;
  }
  std::cout << "Loaded |V| = " << universe->num_vertices()
            << ", |E| = " << universe->num_edges()
            << (universe->zero_copy() ? " (zero-copy mmap)\n" : "\n");

  // --- 4. Traverse the mapped image with the unchanged engines ------------
  // SnapshotUniverse is an EdgeUniverse: every traversal, recognizer, and
  // planner entry point accepts it as-is, and the differential suite
  // proves governed output byte-identical to the in-memory graph.
  TraversalSpec spec;
  spec.steps = {EdgePattern::Labeled(*universe->FindLabel("knows")),
                EdgePattern::Labeled(*universe->FindLabel("created"))};
  ExecContext ctx;
  auto result = TraverseGoverned(*universe, spec, ctx);
  if (!result.ok()) {
    std::cerr << "traversal failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "\nknows . created over the mapped snapshot:\n";
  for (const Path& p : result->paths) {
    std::cout << "  " << universe->VertexName(p.Tail()) << " -> "
              << universe->VertexName(p.Head()) << "\n";
  }

  std::remove(path.c_str());
  return 0;
}
