// Social-network analysis — the §IV-C workflow end to end.
//
// Generates a synthetic people/items network (knows / created / likes),
// derives three single-relational views of it (the paper's three methods),
// and runs the network-analysis library over each, showing how the choice
// of derivation changes the answer — the paper's "loss of meaning"
// argument as a runnable demo.
//
//   ./build/examples/social_network [num_people] [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "algorithms/centrality.h"
#include "algorithms/components.h"
#include "algorithms/degree.h"
#include "generators/generators.h"
#include "graph/projection.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

void PrintTop(const MultiRelationalGraph& g, const std::vector<double>& score,
              size_t k) {
  auto ranked = RankByScore(score);
  for (size_t n = 0; n < k && n < ranked.size(); ++n) {
    std::cout << "    #" << n + 1 << "  vertex " << std::setw(4) << ranked[n]
              << "  score " << std::fixed << std::setprecision(5)
              << score[ranked[n]] << "\n";
  }
  (void)g;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t num_people =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 500;
  const uint64_t seed =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 42;

  auto graph = GenerateSocialNetwork({.num_people = num_people,
                                      .num_items = num_people / 2,
                                      .knows_per_person = 3,
                                      .num_likes = num_people * 2,
                                      .seed = seed});
  if (!graph.ok()) {
    std::cerr << "generation failed: " << graph.status() << "\n";
    return 1;
  }

  std::cout << "Social network: " << graph->num_vertices() << " vertices ("
            << num_people << " people), " << graph->num_edges()
            << " edges across " << graph->num_labels() << " relations\n\n";

  // Per-relation shape.
  auto per_label = PerLabelDegreeStats(*graph);
  for (LabelId l = 0; l < graph->num_labels(); ++l) {
    std::cout << "  relation '" << graph->LabelName(l)
              << "': max out-degree " << per_label[l].max_out
              << ", max in-degree " << per_label[l].max_in << "\n";
  }
  std::cout << "\n";

  // --- Method 1: flatten, ignoring labels ---------------------------------
  BinaryGraph flattened = FlattenIgnoringLabels(*graph);
  auto flat_rank = PageRank(flattened).value();
  std::cout << "Method 1 — flatten (ignore labels): " << flattened.num_arcs()
            << " arcs. Top PageRank:\n";
  PrintTop(*graph, flat_rank, 3);

  // --- Method 2: extract one relation -------------------------------------
  BinaryGraph knows = ExtractLabelRelation(*graph, kSocialKnows);
  auto knows_rank = PageRank(knows).value();
  std::cout << "\nMethod 2 — extract E_knows: " << knows.num_arcs()
            << " arcs. Top PageRank:\n";
  PrintTop(*graph, knows_rank, 3);

  // --- Method 3: derive implicit relations from paths ---------------------
  // E_{knows,knows}: friend-of-a-friend.
  auto foaf =
      DeriveLabelSequenceRelation(*graph, {kSocialKnows, kSocialKnows})
          .value();
  auto foaf_rank = PageRank(foaf).value();
  std::cout << "\nMethod 3 — derive E_{knows,knows} (friend-of-a-friend): "
            << foaf.num_arcs() << " arcs. Top PageRank:\n";
  PrintTop(*graph, foaf_rank, 3);

  // E_{knows,created}: "projects my acquaintances created" — a
  // person→item relation no single label holds.
  auto reach =
      DeriveLabelSequenceRelation(*graph, {kSocialKnows, kSocialCreated})
          .value();
  std::cout << "\nDerived E_{knows,created}: " << reach.num_arcs()
            << " person→item arcs\n";

  // --- Structure of the derived friend graph ------------------------------
  auto components = WeaklyConnectedComponents(knows);
  std::cout << "\nE_knows structure: " << components.num_components
            << " weak components, largest "
            << components.LargestComponentSize() << " vertices\n";

  auto closeness = ClosenessCentrality(knows.Symmetrized());
  auto betweenness = BetweennessCentrality(knows.Symmetrized());
  std::cout << "Closeness top-3 (undirected E_knows):\n";
  PrintTop(*graph, closeness, 3);
  std::cout << "Betweenness top-3 (undirected E_knows):\n";
  PrintTop(*graph, betweenness, 3);

  // Spreading activation from the most central person.
  auto seeds = RankByScore(closeness);
  auto activation = SpreadingActivation(knows, {seeds.front()});
  std::cout << "\nSpreading activation from vertex " << seeds.front()
            << " reaches "
            << std::count_if(activation.begin(), activation.end(),
                             [](double a) { return a > 0; })
            << " vertices\n";
  return 0;
}
