// Regular paths — Figure 1, live.
//
// Builds the paper's Figure 1 expression
//   [i, α, _] ⋈◦ [_, β, _]* ⋈◦ (([_, α, j] ⋈◦ {(j, α, i)}) ∪ [_, α, k])
// compiles it to an automaton, prints the automaton, generates the language
// over the fixture graph with both §IV-B engines, and recognizes a few
// sample paths with the NFA and lazy-DFA recognizers.
//
//   ./build/examples/regex_paths [max_path_length]

#include <cstdlib>
#include <iostream>

#include "regex/figure1.h"
#include "regex/generator.h"
#include "regex/recognizer.h"

using namespace mrpa;  // NOLINT — example brevity.

int main(int argc, char** argv) {
  const size_t max_length =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 6;

  const Figure1Params params;
  auto expr = BuildFigure1Expr(params);
  auto graph = BuildFigure1Graph();

  std::cout << "Expression:\n  " << expr->ToString() << "\n\n";

  auto nfa = CompileToNfa(*expr).value();
  std::cout << nfa.ToString() << "\n";

  // --- Generation (§IV-B) --------------------------------------------------
  GenerateOptions options;
  options.max_path_length = max_length;

  auto stack = StackMachineGenerator::Compile(*expr).value();
  auto stack_result = stack.Generate(graph, options).value();
  auto product = ProductGraphGenerator::Compile(*expr).value();
  auto product_result = product.Generate(graph, options).value();

  std::cout << "Generated language over the fixture graph (length ≤ "
            << max_length << "): " << stack_result.paths.size() << " paths"
            << (stack_result.truncated ? " (truncated — the β-cycle makes "
                                         "the full language infinite)"
                                       : "")
            << "\n";
  std::cout << "Stack machine and product-graph engines agree: "
            << (stack_result.paths == product_result.paths ? "✓" : "✗")
            << "\n\n";

  for (const Path& p : stack_result.paths) {
    std::cout << "  " << p.ToString() << "   ω′ = ";
    for (LabelId l : p.PathLabel()) {
      std::cout << (l == params.alpha ? "α" : "β");
    }
    std::cout << "\n";
  }

  // --- Recognition (§IV-A) --------------------------------------------------
  auto nfa_recognizer = NfaRecognizer::Compile(*expr).value();
  auto dfa_recognizer = DfaRecognizer::Compile(*expr).value();

  const std::vector<std::pair<const char*, Path>> samples = {
      {"i -α-> 3 -α-> k (the short k-branch)",
       Path({Edge(params.i, params.alpha, 3), Edge(3, params.alpha,
                                                   params.k)})},
      {"i -α-> 3 -β-> 4 -α-> j -α-> i (the loop-back branch)",
       Path({Edge(params.i, params.alpha, 3), Edge(3, params.beta, 4),
             Edge(4, params.alpha, params.j),
             Edge(params.j, params.alpha, params.i)})},
      {"j -α-> i (wrong start vertex)",
       Path({Edge(params.j, params.alpha, params.i)})},
      {"i -α-> 3 -α-> j (j-branch without the loop-back)",
       Path({Edge(params.i, params.alpha, 3), Edge(3, params.alpha,
                                                   params.j)})},
  };

  std::cout << "\nRecognition:\n";
  for (const auto& [label, path] : samples) {
    const bool via_nfa = nfa_recognizer.Recognize(path);
    const bool via_dfa = dfa_recognizer.Recognize(path).value_or(false);
    std::cout << "  " << (via_nfa ? "ACCEPT" : "reject") << "  " << label
              << "  (NFA/DFA agree: " << (via_nfa == via_dfa ? "✓" : "✗")
              << ")\n";
  }

  std::cout << "\nLazy DFA materialized " << dfa_recognizer.num_dfa_states()
            << " states over " << dfa_recognizer.num_edge_classes()
            << " edge classes\n";
  return 0;
}
