// Constrained path analytics without enumeration — the semiring extension.
//
// The same regular path expression answers four different questions
// depending on the semiring it is evaluated in:
//   counting   How many compliant routes are there?
//   boolean    Is there any compliant route at all?
//   tropical   How short is the shortest compliant route?
//   max-prob   How likely is the most likely compliant route?
//
// The demo models a tiny logistics network: cities connected by `road`,
// `rail`, and `air` legs. The compliance rule: start with any number of
// road legs, then at most the rail legs, and never fly.
//
//   ./build/examples/constrained_paths

#include <iomanip>
#include <iostream>

#include "graph/multi_graph.h"
#include "regex/derived_relations.h"
#include "regex/path_analysis.h"

using namespace mrpa;  // NOLINT — example brevity.

int main() {
  MultiGraphBuilder b;
  // A chain of cities with a few shortcuts; road is dense, rail sparse,
  // air tempting but forbidden by the policy.
  b.AddEdge("seattle", "road", "portland");
  b.AddEdge("portland", "road", "boise");
  b.AddEdge("seattle", "road", "spokane");
  b.AddEdge("spokane", "road", "boise");
  b.AddEdge("boise", "rail", "denver");
  b.AddEdge("portland", "rail", "denver");
  b.AddEdge("seattle", "air", "denver");
  b.AddEdge("denver", "rail", "omaha");
  b.AddEdge("boise", "road", "denver");
  MultiRelationalGraph g = b.Build();

  const LabelId road = *g.FindLabel("road");
  const LabelId rail = *g.FindLabel("rail");

  // Policy: road* then rail* — and the whole trip is at least one leg.
  auto policy = PathExpr::MakePlus(PathExpr::Labeled(road)) +
                PathExpr::MakeStar(PathExpr::Labeled(rail));
  std::cout << "Policy: " << policy->ToString() << "\n\n";

  const VertexId seattle = *g.FindVertex("seattle");
  const VertexId omaha = *g.FindVertex("omaha");
  AnalysisOptions options;
  options.max_path_length = 8;

  // 1. Counting: how many compliant Seattle→Omaha routes?
  auto counter = PathCounter::Compile(*policy).value();
  auto counts = counter.AnalyzePairs(g, options).value();
  std::cout << "Compliant route counts from seattle:\n";
  for (const auto& [pair, count] : counts.pairs) {
    if (pair.first != seattle) continue;
    std::cout << "  → " << std::setw(9) << std::left
              << g.VertexName(pair.second) << " " << count << " route(s)\n";
  }

  // 2. Boolean: reachability under the policy.
  auto reach = PathReachability::Compile(*policy).value();
  auto reachable = reach.AnalyzePairs(g, options).value();
  std::cout << "\nSeattle → Omaha compliant route exists: "
            << (reachable.pairs.count({seattle, omaha}) ? "yes" : "no")
            << "\n";

  // 3. Tropical: fewest legs on a compliant route.
  auto shortest = ShortestPathAnalyzer::Compile(*policy).value();
  auto hops = shortest.AnalyzePairs(g, options).value();
  if (auto it = hops.pairs.find({seattle, omaha}); it != hops.pairs.end()) {
    std::cout << "Fewest legs seattle → omaha: " << it->second << "\n";
  }

  // 4. Max-prob: on-time probability, legs weighted by mode reliability.
  auto reliability = [&](const Edge& e) -> double {
    return e.label == road ? 0.95 : 0.85;  // Rail legs run late more often.
  };
  auto prob =
      RegularPathAnalyzer<MaxProbSemiring>::Compile(*policy).value();
  auto probs = prob.AnalyzePairs(g, options, reliability).value();
  if (auto it = probs.pairs.find({seattle, omaha}); it != probs.pairs.end()) {
    std::cout << "Best on-time probability: " << std::fixed
              << std::setprecision(4) << it->second << "\n";
  }

  // 5. Weighted derivation (§IV-C, refined): the counted relation feeds
  //    weighted PageRank — cities ranked by compliant-route throughput.
  auto derived = DeriveCountedRelation(*policy, g, options).value();
  auto rank = WeightedPageRank(derived).value();
  std::cout << "\nCompliant-route throughput ranking:\n";
  std::vector<std::pair<double, VertexId>> order;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    order.emplace_back(rank[v], v);
  }
  std::sort(order.rbegin(), order.rend());
  for (const auto& [score, v] : order) {
    std::cout << "  " << std::setw(9) << std::left << g.VertexName(v)
              << " " << std::setprecision(4) << score << "\n";
  }
  return 0;
}
