// The resilient serving substrate: a multi-tenant QueryService over a
// hot-swappable snapshot registry.
//
// The service composes the library's governance pieces into a front door:
// per-tenant admission control (token buckets, in-flight caps, bounded
// queues, priority shedding), RCU-style snapshot hot-swap (readers pin the
// image they were admitted under; retired images are reclaimed at epoch
// quiescence), retry with jittered backoff around transient faults, and a
// uniform degraded-response contract — sheds, budget trips, deadline and
// cancellation outcomes all come back OK as truncated partial results.
// The chaos soak (tests/service_chaos_test.cc) proves every admitted
// query's output byte-identical to a direct governed run against its
// admitted snapshot version. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/query_service

#include <chrono>
#include <iostream>

#include "core/edge_pattern.h"
#include "graph/multi_graph.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "service/snapshot_registry.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

// Publishes `g` into the registry as the next snapshot version.
Status Publish(service::SnapshotRegistry& registry,
               const MultiRelationalGraph& g) {
  auto bytes = storage::SnapshotWriter().Serialize(g);
  if (!bytes.ok()) return bytes.status();
  auto universe = storage::SnapshotReader().FromBuffer(*std::move(bytes));
  if (!universe.ok()) return universe.status();
  auto version = registry.HotSwap(std::move(*universe));
  if (!version.ok()) return version.status();
  std::cout << "published snapshot v" << *version << " (|E| = "
            << g.num_edges() << ")\n";
  return Status::OK();
}

void Describe(const char* who, const Result<service::QueryResponse>& r) {
  if (!r.ok()) {
    std::cout << who << ": error — " << r.status() << "\n";
    return;
  }
  std::cout << who << ": " << r->result.paths.size() << " paths from v"
            << r->snapshot_version << " in " << r->attempts << " attempt(s)"
            << (r->result.truncated
                    ? std::string(", truncated: ") + r->result.limit.message()
                    : std::string(", complete"))
            << "\n";
}

}  // namespace

int main() {
  // --- 1. The serving side: registry + pool + service ---------------------
  MultiGraphBuilder builder;
  builder.AddEdge("marko", "knows", "peter");
  builder.AddEdge("marko", "knows", "josh");
  builder.AddEdge("josh", "knows", "peter");
  builder.AddEdge("marko", "created", "mrpa");
  builder.AddEdge("josh", "created", "mrpa");
  MultiRelationalGraph g1 = builder.Build();

  service::SnapshotRegistry registry;
  if (Status s = Publish(registry, g1); !s.ok()) {
    std::cerr << "publish failed: " << s << "\n";
    return 1;
  }

  ThreadPool pool(2);
  service::QueryService::Options options;
  options.pool = &pool;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  service::QueryService svc(registry, options);

  // --- 2. Tenants: quotas are the per-tenant resource contract ------------
  // `analytics` may burn real budgets; `free` is clamped hard — its query
  // ceilings intersect every request's own limits (tighter bound wins).
  service::TenantQuota analytics;
  analytics.max_in_flight = 2;
  analytics.priority = 1;
  service::TenantQuota free_tier;
  free_tier.qps = 50;
  free_tier.max_in_flight = 1;
  free_tier.query_limits.max_paths = 1;
  (void)svc.RegisterTenant("analytics", analytics);
  (void)svc.RegisterTenant("free", free_tier);

  // --- 3. Execute: every governance outcome is a first-class result -------
  service::QueryRequest two_hops;
  two_hops.steps = {EdgePattern::Any(), EdgePattern::Any()};

  Describe("analytics, two hops   ", svc.Execute("analytics", two_hops));
  // The free tier runs the same query but its quota ceiling truncates the
  // answer — OK + truncated, not an error.
  Describe("free, clamped to 1    ", svc.Execute("free", two_hops));

  // --- 4. Hot swap: in-flight queries keep their admitted image -----------
  // A new version published mid-serve never tears an answer: queries
  // admitted before the swap run to completion on the old image (pinned by
  // an epoch guard), new admissions see the new version, and the old image
  // is reclaimed once its last reader drops.
  builder.AddEdge("peter", "likes", "gremlin");
  builder.AddEdge("josh", "created", "gremlin");
  if (Status s = Publish(registry, builder.Build()); !s.ok()) {
    std::cerr << "swap failed: " << s << "\n";
    return 1;
  }
  Describe("analytics, after swap ", svc.Execute("analytics", two_hops));
  registry.ReclaimNow();
  std::cout << "retired images awaiting readers: " << registry.retired_count()
            << "\n";

  // --- 5. Degradation: budget trips return their partial result -----------
  // A request-side budget works the same way as a quota ceiling: the fold
  // stops at the limit and the truncated prefix IS the answer (the limit
  // Status says which budget tripped). Sheds, deadline and cancellation
  // outcomes wear the identical shape, so a client handles one contract.
  service::QueryRequest capped = two_hops;
  capped.limits.max_paths = 2;
  Describe("analytics, capped at 2", svc.Execute("analytics", capped));

  return 0;
}
