// Live graphs: querying through mutation with DynamicMultiGraph.
//
// A traversal engine rarely sees a frozen graph; edges arrive and expire.
// This example streams membership changes into a dynamic multi-relational
// graph and re-asks the same path query after every burst, then freezes a
// snapshot for the immutable analytics stack.
//
//   ./build/examples/dynamic_updates

#include <iostream>

#include "algorithms/centrality.h"
#include "engine/parser.h"
#include "graph/dynamic_graph.h"
#include "graph/projection.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

void Report(const DynamicMultiGraph& g, const PathExpr& query) {
  auto result = query.Evaluate(g);
  if (!result.ok()) {
    std::cout << "  query failed: " << result.status() << "\n";
    return;
  }
  std::cout << "  |E| = " << g.num_edges() << ", query answers = "
            << result->size() << "\n";
}

}  // namespace

int main() {
  // Ids: people 0..3, projects 10..11; labels: 0 = works_with, 1 = ships.
  const LabelId works_with = 0, ships = 1;
  DynamicMultiGraph g;

  // The standing query: who ships something a colleague also ships?
  // works_with then ships — re-evaluated as the graph evolves.
  auto query =
      PathExpr::Labeled(works_with) + PathExpr::Labeled(ships);

  std::cout << "Burst 1: initial team\n";
  for (const Edge& e : {Edge(0, works_with, 1), Edge(1, works_with, 2),
                        Edge(1, ships, 10)}) {
    if (Status s = g.AddEdge(e); !s.ok()) std::cout << "  " << s << "\n";
  }
  Report(g, *query);  // 0 -works_with-> 1 -ships-> 10.

  std::cout << "Burst 2: a second project ships\n";
  (void)g.AddEdge(Edge(2, ships, 11));
  (void)g.AddEdge(Edge(0, ships, 10));
  Report(g, *query);  // Adds 1 -works_with-> 2 -ships-> 11.

  std::cout << "Burst 3: teammate 1 leaves (their edges retract)\n";
  (void)g.RemoveEdge(Edge(0, works_with, 1));
  (void)g.RemoveEdge(Edge(1, ships, 10));
  Report(g, *query);

  std::cout << "Burst 4: duplicate and phantom operations are rejected "
               "cleanly\n";
  std::cout << "  re-add existing: " << g.AddEdge(Edge(2, ships, 11))
            << "\n";
  std::cout << "  remove missing:  " << g.RemoveEdge(Edge(9, ships, 9))
            << "\n";

  // Freeze and run the immutable analytics stack on the final state.
  MultiRelationalGraph frozen = g.Snapshot();
  BinaryGraph collaboration =
      ExtractLabelRelation(frozen, works_with).Symmetrized();
  auto rank = PageRank(collaboration);
  std::cout << "\nFrozen snapshot: " << frozen.num_edges()
            << " edges; PageRank over the collaboration relation computed "
               "for " << (rank.ok() ? rank->size() : 0) << " vertices\n";
  return 0;
}
