// mrpa_shell — an interactive query shell over the path algebra.
//
// Loads a multi-relational graph from MRG-TSV (or starts with a built-in
// demo graph) and evaluates regular path expressions typed in the text
// syntax of engine/parser.h. Each non-command line is parsed, evaluated
// against the graph, and its path set printed with vertex/label names.
//
//   ./build/examples/mrpa_shell [graph.tsv] < queries.txt
//
// Commands:
//   :load FILE          replace the graph with FILE's contents
//   :graph              print graph statistics
//   :vertices / :labels print the dictionaries
//   :limit N            cap evaluation output (default 64 paths shown)
//   :star N             set the star expansion bound (default 8)
//   :generate EXPR      run the §IV-B generator instead of the evaluator
//   :help               this text
//   :quit               exit
//   EXPR                evaluate, e.g.  [marko, knows, _] . [_, created, _]

#include <iostream>
#include <sstream>
#include <string>

#include "engine/parser.h"
#include "graph/io.h"
#include "regex/generator.h"
#include "util/string_util.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

MultiRelationalGraph DemoGraph() {
  MultiGraphBuilder b;
  b.AddEdge("marko", "knows", "vadas");
  b.AddEdge("marko", "knows", "josh");
  b.AddEdge("josh", "knows", "vadas");
  b.AddEdge("marko", "created", "lop");
  b.AddEdge("josh", "created", "lop");
  b.AddEdge("josh", "created", "ripple");
  b.AddEdge("peter", "created", "lop");
  b.AddEdge("vadas", "likes", "ripple");
  b.AddEdge("peter", "likes", "ripple");
  return b.Build();
}

std::string DescribePath(const MultiRelationalGraph& g, const Path& path) {
  if (path.empty()) return "ε";
  std::string out;
  for (size_t n = 0; n < path.length(); ++n) {
    if (n > 0) out += (path.edge(n - 1).head == path.edge(n).tail)
                          ? " ◦ "
                          : " ⊘ ";  // Mark disjoint seams.
    out += g.DescribeEdge(path.edge(n));
  }
  return out;
}

void PrintPaths(const MultiRelationalGraph& g, const PathSet& paths,
                size_t limit) {
  size_t shown = 0;
  for (const Path& p : paths) {
    if (shown++ >= limit) {
      std::cout << "  … " << (paths.size() - limit) << " more\n";
      break;
    }
    std::cout << "  " << DescribePath(g, p) << "\n";
  }
  std::cout << "  (" << paths.size() << " paths)\n";
}

void PrintHelp() {
  std::cout <<
      "Commands:\n"
      "  :load FILE      load an MRG-TSV graph\n"
      "  :graph          graph statistics\n"
      "  :summary        per-relation shape summary\n"
      "  :dot            Graphviz DOT dump of the graph\n"
      "  :vertices       list vertex names\n"
      "  :labels         list label names\n"
      "  :limit N        show at most N paths (default 64)\n"
      "  :star N         star expansion bound (default 8)\n"
      "  :generate EXPR  run the regular-path generator\n"
      "  :quit           exit\n"
      "Anything else is parsed as a path expression, e.g.:\n"
      "  [marko, knows, _] . [_, created, _]\n"
      "  [_, knows, _]* . [_, created, lop]\n"
      "  [_, likes, _] >< [_, likes, _]\n";
}

}  // namespace

int main(int argc, char** argv) {
  MultiRelationalGraph graph;
  if (argc > 1) {
    auto loaded = ReadGraphFile(argv[1]);
    if (!loaded.ok()) {
      std::cerr << "cannot load " << argv[1] << ": " << loaded.status()
                << "\n";
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    graph = DemoGraph();
    std::cout << "(no graph file given — using the built-in demo graph; "
                 "try ':graph' or ':help')\n";
  }

  size_t print_limit = 64;
  EvalOptions eval_options;
  eval_options.max_star_expansion = 8;
  eval_options.limits = PathSetLimits::AtMost(1 << 20);

  std::string line;
  while (std::cout << "mrpa> " << std::flush, std::getline(std::cin, line)) {
    std::string_view input = Trim(line);
    if (input.empty() || input.front() == '#') continue;

    if (input.front() == ':') {
      std::vector<std::string_view> parts = SplitWhitespace(input);
      std::string_view command = parts[0];
      if (command == ":quit" || command == ":q") break;
      if (command == ":help") {
        PrintHelp();
      } else if (command == ":graph") {
        std::cout << "  |V| = " << graph.num_vertices() << ", |Ω| = "
                  << graph.num_labels() << ", |E| = " << graph.num_edges()
                  << "\n";
      } else if (command == ":summary") {
        std::cout << SummarizeGraph(graph);
      } else if (command == ":dot") {
        Status status = WriteDot(graph, std::cout);
        if (!status.ok()) std::cout << "  " << status << "\n";
      } else if (command == ":vertices") {
        for (VertexId v = 0; v < graph.num_vertices(); ++v) {
          std::cout << "  " << v << "\t" << graph.VertexName(v) << "\n";
        }
      } else if (command == ":labels") {
        for (LabelId l = 0; l < graph.num_labels(); ++l) {
          std::cout << "  " << l << "\t" << graph.LabelName(l) << "\n";
        }
      } else if (command == ":limit" && parts.size() == 2) {
        uint64_t n = 0;
        if (ParseUint64(parts[1], &n)) print_limit = static_cast<size_t>(n);
      } else if (command == ":star" && parts.size() == 2) {
        uint64_t n = 0;
        if (ParseUint64(parts[1], &n)) {
          eval_options.max_star_expansion = static_cast<size_t>(n);
        }
      } else if (command == ":load" && parts.size() == 2) {
        auto loaded = ReadGraphFile(std::string(parts[1]));
        if (!loaded.ok()) {
          std::cout << "  error: " << loaded.status() << "\n";
        } else {
          graph = std::move(loaded).value();
          std::cout << "  loaded: |V| = " << graph.num_vertices()
                    << ", |E| = " << graph.num_edges() << "\n";
        }
      } else if (command == ":generate") {
        std::string expr_text(input.substr(std::string(":generate").size()));
        auto expr = ParsePathExpr(expr_text, &graph);
        if (!expr.ok()) {
          std::cout << "  " << expr.status() << "\n";
          continue;
        }
        GenerateOptions options;
        options.max_path_length = eval_options.max_star_expansion;
        options.max_paths = 1 << 20;
        auto result = GeneratePaths(**expr, graph, options);
        if (!result.ok()) {
          std::cout << "  " << result.status() << "\n";
          continue;
        }
        PrintPaths(graph, result->paths, print_limit);
        if (result->truncated) {
          std::cout << "  (truncated at length "
                    << options.max_path_length << ")\n";
        }
      } else {
        std::cout << "  unknown command; :help for help\n";
      }
      continue;
    }

    auto expr = ParsePathExpr(input, &graph);
    if (!expr.ok()) {
      std::cout << "  " << expr.status() << "\n";
      continue;
    }
    std::cout << "  " << (*expr)->ToString() << "\n";
    auto result = (*expr)->Evaluate(graph, eval_options);
    if (!result.ok()) {
      std::cout << "  " << result.status() << "\n";
      continue;
    }
    PrintPaths(graph, result.value(), print_limit);
  }
  return 0;
}
