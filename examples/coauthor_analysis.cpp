// Co-authorship analysis — deriving a "semantically rich" single-relational
// graph (§IV-C) from a bibliographic multi-relational graph.
//
// The multi-relational source has two relations:
//   authored : person -> paper
//   cites    : paper  -> paper
// Neither is a person-person relation, yet the interesting questions
// ("who collaborates with whom", "whose work builds on whose") are
// person-person. The algebra derives them as path projections:
//   collaboration ≈ endpoints of authored ⋈◦ authored⁻¹-free encoding:
//     here: authored ⋈◦ cites ⋈◦ ... — we derive "cites-the-work-of":
//     person -authored-> paper -cites-> paper, projected, then composed
//     with authorship to reach persons.
//
//   ./build/examples/coauthor_analysis

#include <iostream>

#include "algorithms/assortativity.h"
#include "algorithms/centrality.h"
#include "core/traversal.h"
#include "engine/traversal_builder.h"
#include "graph/io.h"
#include "graph/projection.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

// A small citation network with a familiar shape: three research groups,
// papers citing across groups.
constexpr const char* kBibliography = R"(
# authors
alice    authored  p_algebra
alice    authored  p_traversal
bob      authored  p_algebra
bob      authored  p_engine
carol    authored  p_tensor
carol    authored  p_metrics
dave     authored  p_engine
dave     authored  p_stack
erin     authored  p_metrics
# citations
p_traversal  cites  p_algebra
p_engine     cites  p_algebra
p_engine     cites  p_traversal
p_tensor     cites  p_algebra
p_metrics    cites  p_tensor
p_stack      cites  p_engine
p_stack      cites  p_traversal
)";

}  // namespace

int main() {
  auto graph_or = ReadGraphFromString(kBibliography);
  if (!graph_or.ok()) {
    std::cerr << "parse failure: " << graph_or.status() << "\n";
    return 1;
  }
  MultiRelationalGraph g = std::move(graph_or).value();
  const LabelId authored = *g.FindLabel("authored");
  const LabelId cites = *g.FindLabel("cites");

  std::cout << "Bibliographic graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n\n";

  // --- Derive "builds-on": person -authored-> paper -cites-> paper --------
  // (person → cited-paper arcs).
  auto builds_on =
      DeriveLabelSequenceRelation(g, {authored, cites}).value();
  std::cout << "E_{authored,cites} (person → cited paper): "
            << builds_on.num_arcs() << " arcs\n";
  for (const auto& [person, paper] : builds_on.Arcs()) {
    std::cout << "  " << g.VertexName(person) << " builds on "
              << g.VertexName(paper) << "\n";
  }

  // --- Person-person influence via the engine -----------------------------
  // person -authored-> paper <-cites- paper <-authored- person reversed:
  // "whose work do I cite": out(authored), out(cites), in(authored).
  std::cout << "\nInfluence pairs (X cites the work of Y):\n";
  auto result = GraphTraversal(g)
                    .V()
                    .Out(authored)
                    .Out(cites)
                    .In(authored)
                    .Execute()
                    .value();
  std::vector<std::pair<VertexId, VertexId>> influence;
  for (const Traverser& t : result.traversers) {
    VertexId from = t.history.Tail();
    if (from != t.cursor) influence.emplace_back(from, t.cursor);
  }
  std::sort(influence.begin(), influence.end());
  influence.erase(std::unique(influence.begin(), influence.end()),
                  influence.end());
  for (const auto& [from, to] : influence) {
    std::cout << "  " << g.VertexName(from) << " → " << g.VertexName(to)
              << "\n";
  }

  // --- Single-relational analysis over the derived influence graph --------
  BinaryGraph influence_graph =
      BinaryGraph::FromArcs(g.num_vertices(), influence);
  auto rank = PageRank(influence_graph).value();
  auto order = RankByScore(rank);
  std::cout << "\nMost influential (PageRank over the derived graph):\n";
  for (size_t n = 0; n < 3 && n < order.size(); ++n) {
    if (rank[order[n]] <= 0) break;
    std::cout << "  #" << n + 1 << " " << g.VertexName(order[n]) << "  ("
              << rank[order[n]] << ")\n";
  }

  auto assortativity = DegreeAssortativity(influence_graph);
  if (assortativity.ok()) {
    std::cout << "\nDegree assortativity of the influence graph: "
              << assortativity.value() << "\n";
  }
  return 0;
}
