// The network front door: QueryServer + QueryClient over a loopback socket.
//
// This example stands up the full serving stack in one process — snapshot
// registry, multi-tenant QueryService, the epoll QueryServer on an
// ephemeral port — then talks to it with the retrying QueryClient exactly
// as a remote process would: length-prefixed CRC-checked frames, answer
// modes (paths / count / exists), deadline propagation, and the degraded
// shed shape surviving the trip across the wire. Run with an argument
// ("./query_server 9009") to instead serve that port until interrupted,
// so you can poke it from another terminal. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/query_server

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/edge_pattern.h"
#include "generators/generators.h"
#include "graph/multi_graph.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "service/snapshot_registry.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "util/thread_pool.h"

using namespace mrpa;  // NOLINT — example brevity.

namespace {

Status Publish(service::SnapshotRegistry& registry,
               const MultiRelationalGraph& g) {
  auto bytes = storage::SnapshotWriter().Serialize(g);
  if (!bytes.ok()) return bytes.status();
  auto universe = storage::SnapshotReader().FromBuffer(*std::move(bytes));
  if (!universe.ok()) return universe.status();
  auto version = registry.HotSwap(std::move(*universe));
  if (!version.ok()) return version.status();
  std::cout << "published snapshot v" << *version << " (|E| = "
            << g.num_edges() << ")\n";
  return Status::OK();
}

const char* ModeName(net::AnswerMode mode) {
  switch (mode) {
    case net::AnswerMode::kPaths:
      return "paths";
    case net::AnswerMode::kCount:
      return "count";
    case net::AnswerMode::kExists:
      return "exists";
  }
  return "?";
}

void Describe(const net::WireRequest& request,
              const Result<net::WireResponse>& r, size_t attempts) {
  std::cout << "  [" << request.tenant << ", mode=" << ModeName(request.mode)
            << "] ";
  if (!r.ok()) {
    std::cout << "hard failure — " << r.status() << "\n";
    return;
  }
  if (!r->outcome.ok()) {
    std::cout << "server error — " << r->outcome << "\n";
    return;
  }
  switch (r->mode) {
    case net::AnswerMode::kPaths:
      std::cout << r->paths.size() << " paths";
      break;
    case net::AnswerMode::kCount:
      std::cout << "count = " << r->count;
      break;
    case net::AnswerMode::kExists:
      std::cout << (r->exists ? "exists" : "no match");
      break;
  }
  std::cout << " from v" << r->snapshot_version << " in " << attempts
            << " wire attempt(s)";
  if (r->truncated) std::cout << ", degraded: " << r->limit.message();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --- The serving stack ---------------------------------------------------
  obs::ObsRegistry obs;
  ThreadPool pool(2);
  service::SnapshotRegistry registry(&obs);
  service::QueryService::Options service_options;
  service_options.obs = &obs;
  service_options.pool = &pool;
  service::QueryService service(registry, service_options);

  ErdosRenyiParams params;
  params.num_vertices = 64;
  params.num_labels = 4;
  params.num_edges = 480;
  params.seed = 7;
  auto graph = GenerateErdosRenyi(params);
  if (!graph.ok() || !Publish(registry, *graph).ok()) return 1;

  service::TenantQuota analytics;  // Generous: big budgets, deep queues.
  analytics.max_in_flight = 8;
  service::TenantQuota widget;  // Stingy: tiny path budget, trips often.
  widget.query_limits.max_paths = 5;
  (void)service.RegisterTenant("analytics", analytics);
  (void)service.RegisterTenant("widget", widget);

  net::QueryServer::Options server_options;
  server_options.obs = &obs;
  if (argc > 1) server_options.port = static_cast<uint16_t>(atoi(argv[1]));
  net::QueryServer server(service, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::cerr << "server failed to start: " << started << "\n";
    return 1;
  }
  std::cout << "serving on 127.0.0.1:" << server.port() << "\n";

  if (argc > 1) {
    // Foreground mode: serve until interrupted.
    std::cout << "press Ctrl-C to stop\n";
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }

  // --- A client, as a remote process would use it --------------------------
  net::QueryClient client("127.0.0.1", server.port());

  // The same two-step query in all three answer modes: the wire ships the
  // whole path set, an 8-byte count, or a single bit.
  net::WireRequest request;
  request.tenant = "analytics";
  request.steps = {EdgePattern::Labeled(0), EdgePattern::Any()};
  std::cout << "two-step query, three answer modes:\n";
  for (const auto mode : {net::AnswerMode::kPaths, net::AnswerMode::kCount,
                          net::AnswerMode::kExists}) {
    request.mode = mode;
    size_t attempts = 0;
    auto response = client.Execute(request, &attempts);
    Describe(request, response, attempts);
  }

  // The degradation contract crosses the wire: the widget tenant's 5-path
  // ceiling turns the same query into a truncated partial answer (version
  // > 0 marks it a budget trip — terminal, not retried).
  std::cout << "the stingy tenant gets the degraded shape:\n";
  request.tenant = "widget";
  request.mode = net::AnswerMode::kPaths;
  size_t attempts = 0;
  auto trip = client.Execute(request, &attempts);
  Describe(request, trip, attempts);

  // Deadlines propagate: a budget too small to cross the event loop comes
  // back as a well-formed truncated degradation — the same shape the
  // in-process service returns — never a hung socket.
  std::cout << "a 50-microsecond deadline:\n";
  request.tenant = "analytics";
  request.deadline_micros = 50;
  auto rushed = client.Execute(request, &attempts);
  Describe(request, rushed, attempts);

  server.Shutdown();
  std::cout << "drained: " << server.active_connections()
            << " connections remain\n";
  return 0;
}
