// Quickstart: the path algebra in ten minutes.
//
// Builds a small multi-relational graph, walks through every §II operation
// (◦, σ, γ±, ω, ω′, ∪, ⋈◦, ×◦), runs the §III traversal idioms, and
// finishes with the fluent engine. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/expr.h"
#include "core/path_set.h"
#include "core/traversal.h"
#include "engine/traversal_builder.h"
#include "graph/multi_graph.h"

using namespace mrpa;  // NOLINT — example brevity.

int main() {
  // --- 1. A multi-relational graph G = (V, E ⊆ V × Ω × V) ----------------
  MultiGraphBuilder builder;
  builder.AddEdge("marko", "knows", "peter");
  builder.AddEdge("marko", "knows", "josh");
  builder.AddEdge("josh", "knows", "peter");
  builder.AddEdge("marko", "created", "mrpa");
  builder.AddEdge("josh", "created", "mrpa");
  builder.AddEdge("josh", "created", "gremlin");
  builder.AddEdge("peter", "likes", "gremlin");
  MultiRelationalGraph g = builder.Build();

  std::cout << "Graph: |V| = " << g.num_vertices() << ", |Ω| = "
            << g.num_labels() << ", |E| = " << g.num_edges() << "\n\n";

  const VertexId marko = *g.FindVertex("marko");
  const LabelId knows = *g.FindLabel("knows");
  const LabelId created = *g.FindLabel("created");

  // --- 2. Paths and the unary operations ----------------------------------
  Edge first = g.OutEdges(marko)[0];
  Edge second = g.OutEdges(first.head).empty() ? first
                                               : g.OutEdges(first.head)[0];
  Path path = Path(first) * Path(second);  // ◦ concatenation.
  std::cout << "A path a = " << path.ToString() << "\n";
  std::cout << "  ‖a‖      = " << path.length() << "\n";
  std::cout << "  σ(a,1)   = " << path.EdgeAt(1).value().ToString() << "\n";
  std::cout << "  γ−(a)    = " << g.VertexName(path.Tail()) << "\n";
  std::cout << "  γ+(a)    = " << g.VertexName(path.Head()) << "\n";
  std::cout << "  joint?   = " << (path.IsJoint() ? "yes" : "no") << "\n";
  std::cout << "  ω′(a)    = ";
  for (LabelId l : path.PathLabel()) std::cout << g.LabelName(l) << ' ';
  std::cout << "\n\n";

  // --- 3. Set operations: ∪, ⋈◦, ×◦ ---------------------------------------
  PathSet knows_edges = PathSet::FromEdges(
      CollectMatchingEdges(g, EdgePattern::Labeled(knows)));
  PathSet created_edges = PathSet::FromEdges(
      CollectMatchingEdges(g, EdgePattern::Labeled(created)));

  PathSet both = Union(knows_edges, created_edges);
  PathSet knows_then_created =
      ConcatenativeJoin(knows_edges, created_edges).value();
  PathSet all_pairs =
      ConcatenativeProduct(knows_edges, created_edges).value();

  std::cout << "|knows ∪ created|  = " << both.size() << "\n";
  std::cout << "|knows ⋈◦ created| = " << knows_then_created.size()
            << "  (projects created by people someone knows)\n";
  std::cout << "|knows ×◦ created| = " << all_pairs.size()
            << "  (join ⊆ product: "
            << (knows_then_created.IsSubsetOf(all_pairs) ? "✓" : "✗")
            << ")\n\n";

  // --- 4. §III traversal idioms -------------------------------------------
  auto complete = CompleteTraversal(g, 2).value();
  auto from_marko = SourceTraversal(g, {marko}, 2).value();
  std::cout << "Joint 2-paths in G: " << complete.size()
            << "; emanating from marko: " << from_marko.size() << "\n";
  for (const Path& p : from_marko) {
    std::cout << "  " << g.DescribeEdge(p.edge(0)) << ", "
              << g.DescribeEdge(p.edge(1)) << "\n";
  }
  std::cout << "\n";

  // --- 5. Algebraic expressions -------------------------------------------
  auto expr = PathExpr::Labeled(knows) + PathExpr::Labeled(created);
  std::cout << "Expression " << expr->ToString() << " denotes "
            << expr->Evaluate(g)->size() << " paths\n\n";

  // --- 6. The fluent engine ------------------------------------------------
  auto projects = GraphTraversal(g)
                      .V({"marko"})
                      .Out("knows")
                      .Out("created")
                      .Dedup()
                      .Cursors()
                      .value();
  std::cout << "Projects created by people marko knows:\n";
  for (VertexId v : projects) std::cout << "  " << g.VertexName(v) << "\n";
  return 0;
}
