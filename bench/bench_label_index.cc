// Experiment E13 (ablation): the label-run refinement of the out-adjacency
// index. In a multi-relational graph with |Ω| relations, a single-label
// traversal step only needs 1/|Ω| of each vertex's out-run; exploiting the
// (label, head) sort order within the run turns the per-step scan-and-test
// into a binary-searched sub-span. This bench sweeps |Ω| and compares the
// indexed inner loop (ForEachMatchingOutEdge) against the plain scan.
// Expected shape: the scan's cost per step is flat in |Ω| (it always visits
// the full run); the indexed loop's cost falls roughly as 1/|Ω|.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/traversal.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

// A fixed total edge budget so heavier label diversity doesn't change |E|.
MultiRelationalGraph Graph(uint32_t num_labels) {
  return MakeErGraph(3000, num_labels, 8.0);
}

void BM_SingleLabelStep_Indexed(benchmark::State& state) {
  auto g = Graph(static_cast<uint32_t>(state.range(0)));
  const EdgePattern step = EdgePattern::Labeled(0);
  size_t touched = 0;
  for (auto _ : state) {
    touched = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ForEachMatchingOutEdge(g, v, step,
                             [&](const Edge& e) { touched += e.head; });
    }
    benchmark::DoNotOptimize(touched);
  }
  state.counters["labels"] =
      benchmark::Counter(static_cast<double>(g.num_labels()));
}
BENCHMARK(BM_SingleLabelStep_Indexed)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SingleLabelStep_Scan(benchmark::State& state) {
  auto g = Graph(static_cast<uint32_t>(state.range(0)));
  const EdgePattern step = EdgePattern::Labeled(0);
  size_t touched = 0;
  for (auto _ : state) {
    touched = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const Edge& e : g.OutEdges(v)) {
        if (step.Matches(e)) touched += e.head;
      }
    }
    benchmark::DoNotOptimize(touched);
  }
  state.counters["labels"] =
      benchmark::Counter(static_cast<double>(g.num_labels()));
}
BENCHMARK(BM_SingleLabelStep_Scan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// End-to-end: a 3-step single-label traversal (which now rides the indexed
// loop internally) across the same |Ω| sweep.
void BM_LabeledTraversalVsLabels(benchmark::State& state) {
  auto g = Graph(static_cast<uint32_t>(state.range(0)));
  std::vector<std::vector<LabelId>> steps = {{0}, {0}, {0}};
  size_t paths = 0;
  for (auto _ : state) {
    auto result = LabeledTraversal(g, steps);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["labels"] =
      benchmark::Counter(static_cast<double>(g.num_labels()));
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_LabeledTraversalVsLabels)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
