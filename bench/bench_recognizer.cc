// Experiment E5 (§IV-A + Figure 1): regular path recognition. Compares the
// three membership engines on the Figure 1 expression:
//   * NfaRecognizer           — general simulation,
//   * DfaRecognizer           — lazily determinized, amortized per-edge O(1),
//   * evaluate-then-lookup    — materialize the language with the algebra
//                               and test set membership (only viable when
//                               the language is small).
// Expected shape: DFA < NFA per query once warm; evaluate-then-lookup pays
// a large setup cost but O(log n) queries afterwards.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/traversal.h"
#include "regex/figure1.h"
#include "regex/generator.h"
#include "regex/dfa_minimizer.h"
#include "regex/recognizer.h"
#include "util/random.h"

namespace mrpa {
namespace {

// Query workload: a mix of accepted paths (generated from the language) and
// rejected paths (random joint walks), deterministic per build.
std::vector<Path> MakeWorkload(const MultiRelationalGraph& g,
                               const PathExpr& expr, size_t count) {
  GenerateOptions options;
  options.max_path_length = 8;
  auto in_language = GeneratePaths(expr, g, options);
  std::vector<Path> workload;
  workload.reserve(count);
  // Alternate members and random walks.
  Rng rng(77);
  size_t member_cursor = 0;
  while (workload.size() < count) {
    if (!in_language->paths.empty() && workload.size() % 2 == 0) {
      workload.push_back(
          in_language->paths[member_cursor % in_language->paths.size()]);
      ++member_cursor;
    } else {
      // Random joint walk of length 1..5.
      size_t len = 1 + rng.Below(5);
      VertexId v = static_cast<VertexId>(rng.Below(g.num_vertices()));
      Path walk;
      for (size_t k = 0; k < len; ++k) {
        auto out = g.OutEdges(v);
        if (out.empty()) break;
        const Edge& e = out[rng.Below(out.size())];
        walk.Append(e);
        v = e.head;
      }
      if (!walk.empty()) workload.push_back(std::move(walk));
    }
  }
  return workload;
}

void BM_NfaRecognize(benchmark::State& state) {
  auto g = BuildFigure1Graph();
  auto expr = BuildFigure1Expr();
  auto recognizer = NfaRecognizer::Compile(*expr);
  auto workload = MakeWorkload(g, *expr, 256);
  size_t accepted = 0;
  for (auto _ : state) {
    accepted = 0;
    for (const Path& p : workload) {
      if (recognizer->Recognize(p)) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * workload.size());
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted));
}
BENCHMARK(BM_NfaRecognize);

void BM_DfaRecognize(benchmark::State& state) {
  auto g = BuildFigure1Graph();
  auto expr = BuildFigure1Expr();
  auto recognizer = DfaRecognizer::Compile(*expr);
  auto workload = MakeWorkload(g, *expr, 256);
  size_t accepted = 0;
  for (auto _ : state) {
    accepted = 0;
    for (const Path& p : workload) {
      auto result = recognizer->Recognize(p);
      if (result.ok() && result.value()) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * workload.size());
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted));
  state.counters["dfa_states"] =
      benchmark::Counter(static_cast<double>(recognizer->num_dfa_states()));
}
BENCHMARK(BM_DfaRecognize);

void BM_EvaluateThenLookup(benchmark::State& state) {
  auto g = BuildFigure1Graph();
  auto expr = BuildFigure1Expr();
  auto workload = MakeWorkload(g, *expr, 256);
  size_t accepted = 0;
  for (auto _ : state) {
    // Setup cost paid every time: materialize the (bounded) language.
    EvalOptions options;
    options.max_star_expansion = 6;
    auto language = expr->Evaluate(g, options);
    accepted = 0;
    for (const Path& p : workload) {
      if (language->Contains(p)) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * workload.size());
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted));
}
BENCHMARK(BM_EvaluateThenLookup);


void BM_MinimizedDfaRecognize(benchmark::State& state) {
  auto g = BuildFigure1Graph();
  auto expr = BuildFigure1Expr();
  auto minimized = BuildMinimizedDfa(*expr, g).value();
  auto report = MeasureMinimization(*expr, g).value();
  auto workload = MakeWorkload(g, *expr, 256);
  size_t accepted = 0;
  for (auto _ : state) {
    accepted = 0;
    for (const Path& p : workload) {
      auto result = minimized.Recognize(p);
      if (result.ok() && result.value()) ++accepted;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * workload.size());
  state.counters["accepted"] =
      benchmark::Counter(static_cast<double>(accepted));
  state.counters["states_full"] =
      benchmark::Counter(static_cast<double>(report.materialized_states));
  state.counters["states_min"] =
      benchmark::Counter(static_cast<double>(report.minimized_states));
}
BENCHMARK(BM_MinimizedDfaRecognize);

// Per-query scaling with input path length: NFA is O(len · states), DFA is
// O(len) amortized.
void BM_RecognizeLongPath(benchmark::State& state) {
  auto g = BuildFigure1Graph();
  const Figure1Params p;
  // A legitimate long member: i -α-> 3 (β-cycle)^k 3 -α-> k.
  const size_t beta_pairs = static_cast<size_t>(state.range(0));
  Path path;
  path.Append(Edge(p.i, p.alpha, 3));
  for (size_t n = 0; n < beta_pairs; ++n) {
    path.Append(Edge(3, p.beta, 4));
    path.Append(Edge(4, p.beta, 3));
  }
  path.Append(Edge(3, p.alpha, p.k));

  const bool use_dfa = state.range(1) != 0;
  auto expr = BuildFigure1Expr();
  auto nfa = NfaRecognizer::Compile(*expr);
  auto dfa = DfaRecognizer::Compile(*expr);
  bool accepted = false;
  for (auto _ : state) {
    if (use_dfa) {
      accepted = dfa->Recognize(path).value_or(false);
    } else {
      accepted = nfa->Recognize(path);
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetLabel(use_dfa ? "dfa" : "nfa");
  state.counters["path_length"] =
      benchmark::Counter(static_cast<double>(path.length()));
  state.counters["accepted"] = benchmark::Counter(accepted ? 1.0 : 0.0);
}
BENCHMARK(BM_RecognizeLongPath)
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({512, 1});

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
