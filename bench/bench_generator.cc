// Experiment E6 (§IV-B + Figure 1): regular path generation. Compares the
// paper's literal single-stack machine against the index-backed
// product-graph search on the Figure 1 expression, sweeping the path-length
// bound and the graph size.
//
// Expected shape: identical outputs; the product-graph engine wins by a
// factor that grows with |E| because the stack machine joins against fully
// materialized transition edge sets while the product search only touches
// the out-edges of frontier heads.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "regex/figure1.h"
#include "regex/generator.h"

namespace mrpa {
namespace {

// Embeds the Figure-1 schema in a larger random graph so graph size can be
// swept: the fixture edges are present, plus ER noise over the same two
// labels.
MultiRelationalGraph NoisyFigure1Graph(uint32_t extra_vertices,
                                       uint64_t seed = 7) {
  auto noise = GenerateErdosRenyi({.num_vertices = 5 + extra_vertices,
                                   .num_labels = 2,
                                   .num_edges = (5 + extra_vertices) * 2,
                                   .seed = seed});
  MultiGraphBuilder builder;
  for (const Edge& e : noise->AllEdges()) builder.AddEdge(e);
  MultiRelationalGraph fixture = BuildFigure1Graph();  // Keep alive: spans.
  for (const Edge& e : fixture.AllEdges()) builder.AddEdge(e);
  return builder.Build();
}

void BM_StackMachineGenerate(benchmark::State& state) {
  auto g = NoisyFigure1Graph(static_cast<uint32_t>(state.range(0)));
  auto generator = StackMachineGenerator::Compile(*BuildFigure1Expr());
  GenerateOptions options;
  options.max_path_length = static_cast<size_t>(state.range(1));
  size_t paths = 0;
  for (auto _ : state) {
    auto result = generator->Generate(g, options);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
  state.counters["edges"] =
      benchmark::Counter(static_cast<double>(g.num_edges()));
}
BENCHMARK(BM_StackMachineGenerate)
    ->Args({0, 6})
    ->Args({100, 6})
    ->Args({1000, 6})
    ->Args({10000, 6})
    ->Args({1000, 4})
    ->Args({1000, 8});

void BM_ProductGraphGenerate(benchmark::State& state) {
  auto g = NoisyFigure1Graph(static_cast<uint32_t>(state.range(0)));
  auto generator = ProductGraphGenerator::Compile(*BuildFigure1Expr());
  GenerateOptions options;
  options.max_path_length = static_cast<size_t>(state.range(1));
  size_t paths = 0;
  for (auto _ : state) {
    auto result = generator->Generate(g, options);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
  state.counters["edges"] =
      benchmark::Counter(static_cast<double>(g.num_edges()));
}
BENCHMARK(BM_ProductGraphGenerate)
    ->Args({0, 6})
    ->Args({100, 6})
    ->Args({1000, 6})
    ->Args({10000, 6})
    ->Args({1000, 4})
    ->Args({1000, 8});

// Output-equality audit at bench scale (a counter, not an assertion, so the
// harness reports it in the table).
void BM_EnginesAgree(benchmark::State& state) {
  auto g = NoisyFigure1Graph(500);
  auto stack = StackMachineGenerator::Compile(*BuildFigure1Expr());
  auto product = ProductGraphGenerator::Compile(*BuildFigure1Expr());
  GenerateOptions options;
  options.max_path_length = 6;
  bool agree = true;
  for (auto _ : state) {
    auto a = stack->Generate(g, options);
    auto b = product->Generate(g, options);
    agree = agree && a->paths == b->paths;
    benchmark::DoNotOptimize(agree);
  }
  state.counters["engines_agree"] = benchmark::Counter(agree ? 1.0 : 0.0);
}
BENCHMARK(BM_EnginesAgree);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
