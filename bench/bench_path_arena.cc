// Experiment E17: the prefix-sharing PathArena vs the materialized fold.
//
// The arena fold (TraverseGoverned) extends a path with one 16-byte node
// push; the materialized fold (TraverseGovernedMaterialized, the retained
// pre-arena loop) copies the whole k-edge prefix to emit a (k+1)-edge path.
// Both engines are byte-identical in output and governance (see
// tests/arena_differential_test.cc), so this bench isolates the cost model:
//
//   * wall-clock at traversal depths 2–8 on the E16 substrates,
//   * heap allocation count and peak live heap per run (global operator
//     new/delete hooks + malloc_usable_size),
//   * edge writes, modeled exactly from the level-size recurrence —
//     materialized writes Σ_k n_k·k, the arena writes Σ_k n_k nodes plus
//     n_d·d at final materialization.
//
// Run: build/bench/bench_path_arena --benchmark_min_time=1s [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E17). Acceptance: allocation
// count and peak heap strictly lower at depth ≥ 4; wall-clock no worse at
// depth 2.

#include <malloc.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "core/path_arena.h"
#include "core/traversal.h"
#include "generators/generators.h"
#include "graph/multi_graph.h"
#include "util/exec_context.h"

namespace {

// Heap instrumentation. Tracking is off until a bench arms it, so graph
// construction and benchmark bookkeeping stay out of the counts.
std::atomic<bool> g_tracking{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_peak_bytes{0};

void RecordAlloc(void* p) {
  if (!g_tracking.load(std::memory_order_relaxed)) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const uint64_t size = malloc_usable_size(p);
  const uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void RecordFree(void* p) {
  if (p == nullptr || !g_tracking.load(std::memory_order_relaxed)) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

struct HeapSnapshot {
  uint64_t allocs;
  uint64_t peak_bytes;
};

void ArmHeapTracking() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_live_bytes.store(0, std::memory_order_relaxed);
  g_peak_bytes.store(0, std::memory_order_relaxed);
  g_tracking.store(true, std::memory_order_relaxed);
}

HeapSnapshot DisarmHeapTracking() {
  g_tracking.store(false, std::memory_order_relaxed);
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_peak_bytes.load(std::memory_order_relaxed)};
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  RecordAlloc(p);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  RecordFree(p);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

namespace mrpa {
namespace {

// The E16 substrates (≈ 100k edges each): heavy-tailed preferential
// attachment and a uniform-degree ring lattice.
const MultiRelationalGraph& HeavyTailGraph() {
  static const MultiRelationalGraph* graph =
      new MultiRelationalGraph(bench::MakeBaGraph(34'000, 4, 3, /*seed=*/42));
  return *graph;
}

const MultiRelationalGraph& UniformGraph() {
  static const MultiRelationalGraph* graph = [] {
    auto g = GenerateWattsStrogatz({.num_vertices = 25'000,
                                    .num_labels = 4,
                                    .neighbors_each_side = 2,
                                    .rewire_prob = 0.1,
                                    .seed = 42});
    return new MultiRelationalGraph(std::move(g).value());
  }();
  return *graph;
}

const MultiRelationalGraph& PickGraph(int64_t ws) {
  return ws == 0 ? HeavyTailGraph() : UniformGraph();
}

// An alternating label chain: with 4 labels the per-step branching factor
// is ≈ out-degree/4 ≈ 1, so the frontier neither explodes nor dies and the
// sweep can reach depth 8 with a stable population.
TraversalSpec ChainSpec(size_t depth) {
  TraversalSpec spec;
  for (size_t k = 0; k < depth; ++k) {
    spec.steps.push_back(EdgePattern::Labeled(static_cast<LabelId>(k % 2)));
  }
  return spec;
}

// The exact edge-write model, from the level-size recurrence: n_1 = seed
// matches, n_{k+1} = Σ_v paths_at[v] · |OutEdgesWithLabel(v, step_k)|.
// Emitting a k-edge path costs the materialized fold k edge writes (copy
// the prefix, append one); the arena fold one node write, plus d writes
// per surviving path at the final materialization.
struct EdgeWriteModel {
  uint64_t materialized = 0;
  uint64_t arena = 0;
  uint64_t paths = 0;
};

EdgeWriteModel ModelEdgeWrites(const EdgeUniverse& g, size_t depth) {
  const uint32_t V = g.num_vertices();
  std::vector<uint64_t> at(V, 0);
  uint64_t level_size = 0;
  for (uint32_t v = 0; v < V; ++v) {
    const size_t matches = g.OutEdgesWithLabel(v, 0).size();
    for (const Edge& e : g.OutEdgesWithLabel(v, 0)) at[e.head] += 1;
    level_size += matches;
  }
  EdgeWriteModel model;
  model.materialized = level_size;  // Seed paths: one edge write each.
  model.arena = level_size;         // Seed roots: one node each.
  for (size_t k = 1; k < depth; ++k) {
    const LabelId label = static_cast<LabelId>(k % 2);
    std::vector<uint64_t> next(V, 0);
    uint64_t emitted = 0;
    for (uint32_t v = 0; v < V; ++v) {
      if (at[v] == 0) continue;
      const auto run = g.OutEdgesWithLabel(v, label);
      if (run.empty()) continue;
      emitted += at[v] * run.size();
      for (const Edge& e : run) next[e.head] += at[v];
    }
    model.materialized += emitted * (k + 1);
    model.arena += emitted;
    at.swap(next);
    level_size = emitted;
  }
  model.arena += level_size * depth;  // Final materialization.
  model.paths = level_size;
  return model;
}

template <typename Fold>
void RunFoldBench(benchmark::State& state, Fold fold) {
  const MultiRelationalGraph& graph = PickGraph(state.range(1));
  const TraversalSpec spec = ChainSpec(static_cast<size_t>(state.range(0)));
  uint64_t paths = 0;
  HeapSnapshot heap{0, 0};
  for (auto _ : state) {
    ArmHeapTracking();
    ExecContext ctx;
    // Null unless --trace=FILE was passed, so the heap counts below stay
    // span-free on ordinary runs.
    ctx.AttachObs(bench::TraceRegistry());
    Result<GovernedPathSet> result = fold(graph, spec, ctx);
    heap = DisarmHeapTracking();
    paths = result.ok() ? result->paths.size() : 0;
    benchmark::DoNotOptimize(result);
  }
  const EdgeWriteModel model =
      ModelEdgeWrites(graph, static_cast<size_t>(state.range(0)));
  state.counters["paths"] = static_cast<double>(paths);
  state.counters["allocs"] = static_cast<double>(heap.allocs);
  state.counters["peak_bytes"] = static_cast<double>(heap.peak_bytes);
  state.counters["edge_writes_arena"] = static_cast<double>(model.arena);
  state.counters["edge_writes_materialized"] =
      static_cast<double>(model.materialized);
}

void BM_ArenaFold(benchmark::State& state) {
  RunFoldBench(state, [](const EdgeUniverse& g, const TraversalSpec& s,
                         ExecContext& ctx) { return TraverseGoverned(g, s, ctx); });
}
BENCHMARK(BM_ArenaFold)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7, 8}, {0, 1}})
    ->ArgNames({"depth", "ws_graph"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_MaterializedFold(benchmark::State& state) {
  RunFoldBench(state,
               [](const EdgeUniverse& g, const TraversalSpec& s,
                  ExecContext& ctx) {
                 return TraverseGovernedMaterialized(g, s, ctx);
               });
}
BENCHMARK(BM_MaterializedFold)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7, 8}, {0, 1}})
    ->ArgNames({"depth", "ws_graph"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
