// Experiment E2 (§II footnote 7): "R ⋈◦ Q ⊆ R ×◦ Q" and the practical
// claim behind it — when only joint paths are wanted, the join is the more
// efficient use of resources. This bench sweeps the adjacency selectivity
// (by varying the vertex-space size the path endpoints draw from) and
// reports both runtimes and output sizes. Expected shape: the join's cost
// tracks its (much smaller) output; the product's cost is Θ(|A|·|B|)
// regardless of selectivity.

#include <benchmark/benchmark.h>

#include "core/path_set.h"
#include "util/random.h"

namespace mrpa {
namespace {

PathSet MakeSet(Rng& rng, size_t count, uint32_t vertex_space) {
  std::vector<Path> paths;
  paths.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    VertexId tail = static_cast<VertexId>(rng.Below(vertex_space));
    VertexId mid = static_cast<VertexId>(rng.Below(vertex_space));
    VertexId head = static_cast<VertexId>(rng.Below(vertex_space));
    paths.push_back(Path({Edge(tail, 0, mid), Edge(mid, 0, head)}));
  }
  return PathSet(std::move(paths));
}

// range(0): set size; range(1): vertex-space size (selectivity knob —
// expected matches per left path ≈ |B| / vertex_space).
void BM_Join(benchmark::State& state) {
  Rng rng(42);
  const size_t count = static_cast<size_t>(state.range(0));
  const uint32_t space = static_cast<uint32_t>(state.range(1));
  PathSet a = MakeSet(rng, count, space);
  PathSet b = MakeSet(rng, count, space);
  size_t output = 0;
  for (auto _ : state) {
    auto joined = ConcatenativeJoin(a, b);
    output = joined->size();
    benchmark::DoNotOptimize(joined);
  }
  state.counters["output_paths"] =
      benchmark::Counter(static_cast<double>(output));
  state.counters["input_paths"] =
      benchmark::Counter(static_cast<double>(a.size() + b.size()));
}
BENCHMARK(BM_Join)
    ->Args({256, 8})
    ->Args({256, 64})
    ->Args({256, 512})
    ->Args({1024, 8})
    ->Args({1024, 64})
    ->Args({1024, 512})
    ->Args({1024, 4096});

void BM_Product(benchmark::State& state) {
  Rng rng(42);  // Identical inputs to BM_Join.
  const size_t count = static_cast<size_t>(state.range(0));
  const uint32_t space = static_cast<uint32_t>(state.range(1));
  PathSet a = MakeSet(rng, count, space);
  PathSet b = MakeSet(rng, count, space);
  size_t output = 0;
  for (auto _ : state) {
    auto product = ConcatenativeProduct(a, b);
    output = product->size();
    benchmark::DoNotOptimize(product);
  }
  state.counters["output_paths"] =
      benchmark::Counter(static_cast<double>(output));
  state.counters["input_paths"] =
      benchmark::Counter(static_cast<double>(a.size() + b.size()));
}
BENCHMARK(BM_Product)
    ->Args({256, 8})
    ->Args({256, 64})
    ->Args({256, 512})
    ->Args({1024, 8})
    ->Args({1024, 64})
    ->Args({1024, 512})
    ->Args({1024, 4096});

// The subset claim, verified at benchmark scale on every configuration.
void BM_SubsetInvariantCheck(benchmark::State& state) {
  Rng rng(43);
  PathSet a = MakeSet(rng, 512, 32);
  PathSet b = MakeSet(rng, 512, 32);
  bool holds = true;
  for (auto _ : state) {
    auto joined = ConcatenativeJoin(a, b);
    auto product = ConcatenativeProduct(a, b);
    holds = holds && joined->IsSubsetOf(product.value());
    benchmark::DoNotOptimize(holds);
  }
  state.counters["subset_holds"] = benchmark::Counter(holds ? 1.0 : 0.0);
}
BENCHMARK(BM_SubsetInvariantCheck);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
