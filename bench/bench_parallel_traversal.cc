// Experiment E16: speedup of the parallel §III fold (TraverseParallel /
// TraverseParallelGoverned) over the sequential one, as a function of pool
// width, on a 100k-edge Barabási–Albert graph (heavy-tailed — the case
// work-stealing exists for) and a Watts–Strogatz graph (uniform degrees —
// the embarrassing-parallel best case). Also measures the price of the
// governed replay ledger relative to the ungoverned merge.
//
// Run: build/bench/bench_parallel_traversal --benchmark_min_time=1s
// Results are recorded in EXPERIMENTS.md (E16). Wall-clock speedup is
// meaningful only on a machine with that many physical cores; the
// differential tests, not this bench, are the correctness story.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "core/traversal.h"
#include "generators/generators.h"
#include "graph/multi_graph.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace mrpa {
namespace {

// ≈ 100k edges: 34k vertices × 3 edges each, preferential attachment.
const MultiRelationalGraph& HeavyTailGraph() {
  static const MultiRelationalGraph* graph =
      new MultiRelationalGraph(bench::MakeBaGraph(34'000, 4, 3, /*seed=*/42));
  return *graph;
}

const MultiRelationalGraph& UniformGraph() {
  static const MultiRelationalGraph* graph = [] {
    auto g = GenerateWattsStrogatz({.num_vertices = 25'000,
                                    .num_labels = 4,
                                    .neighbors_each_side = 2,
                                    .rewire_prob = 0.1,
                                    .seed = 42});
    return new MultiRelationalGraph(std::move(g).value());
  }();
  return *graph;
}

// A label-restricted 3-step chain: selective enough to keep the result set
// in the hundreds of thousands, deep enough that level expansion (not the
// seed scan) dominates.
TraversalSpec LabeledChain() {
  TraversalSpec spec;
  spec.steps = {EdgePattern::Labeled(0), EdgePattern::Any(),
                EdgePattern::Labeled(1)};
  return spec;
}

void BM_SequentialFold(benchmark::State& state) {
  const MultiRelationalGraph& graph =
      state.range(0) == 0 ? HeavyTailGraph() : UniformGraph();
  const TraversalSpec spec = LabeledChain();
  size_t paths = 0;
  for (auto _ : state) {
    Result<PathSet> result = Traverse(graph, spec);
    paths = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_SequentialFold)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"ws_graph"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelFold(benchmark::State& state) {
  const MultiRelationalGraph& graph =
      state.range(1) == 0 ? HeavyTailGraph() : UniformGraph();
  const TraversalSpec spec = LabeledChain();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  ParallelTraversalOptions options;
  options.pool = &pool;
  size_t paths = 0;
  for (auto _ : state) {
    Result<PathSet> result = TraverseParallel(graph, spec, options);
    paths = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_ParallelFold)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"threads", "ws_graph"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The governed parallel fold pays for the replay ledger: every shard's
// accounting is re-driven through the caller's ExecContext after the
// expansion. This measures that tax at full budget (no truncation).
void BM_ParallelGovernedFold(benchmark::State& state) {
  const MultiRelationalGraph& graph = HeavyTailGraph();
  const TraversalSpec spec = LabeledChain();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  ParallelTraversalOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    Result<GovernedPathSet> result =
        TraverseParallelGoverned(graph, spec, ctx, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ParallelGovernedFold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
