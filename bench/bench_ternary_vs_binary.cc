// Experiment E10 (§II closing paragraph): the ternary-edge algebra vs the
// binary-relation algebra of ref [4]. The binary algebra joins faster and
// stores less — but it cannot recover path labels, which the test suite
// demonstrates (binary_algebra_test.cc) and this bench quantifies:
//   * join cost ternary vs binary on the same logical relation,
//   * payload bytes per stored path set,
//   * label-distinct path counts the binary image collapses.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/binary_algebra.h"
#include "core/path_set.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

// Ternary: length-1 path set per label-layer; Binary: pair set forgetting
// labels. Both joined twice (3-hop composition).
void BM_TernaryJoinChain(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 3.0);
  PathSet E = PathSet::FromEdges(
      std::vector<Edge>(g.AllEdges().begin(), g.AllEdges().end()));
  size_t paths = 0;
  for (auto _ : state) {
    auto two = ConcatenativeJoin(E, E);
    auto three = ConcatenativeJoin(two.value(), E);
    paths = three->size();
    benchmark::DoNotOptimize(three);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_TernaryJoinChain)->Arg(500)->Arg(1000)->Arg(2000);

void BM_BinaryJoinChain(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 3.0);
  std::vector<std::pair<VertexId, VertexId>> relation;
  relation.reserve(g.num_edges());
  for (const Edge& e : g.AllEdges()) relation.emplace_back(e.tail, e.head);
  binary::VertexPathSet E =
      binary::VertexPathSet::FromBinaryRelation(relation);
  size_t paths = 0;
  for (auto _ : state) {
    auto two = binary::Join(E, E);
    auto three = binary::Join(two, E);
    paths = three.size();
    benchmark::DoNotOptimize(three);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_BinaryJoinChain)->Arg(500)->Arg(1000)->Arg(2000);

// The information-loss ratio: how many label-distinct ternary paths the
// binary representation collapses into one vertex string. Reported as a
// counter on a fixed workload.
void BM_LabelCollapseRatio(benchmark::State& state) {
  auto g = MakeErGraph(500, 4, 3.0);
  PathSet E = PathSet::FromEdges(
      std::vector<Edge>(g.AllEdges().begin(), g.AllEdges().end()));

  std::vector<std::pair<VertexId, VertexId>> relation;
  for (const Edge& e : g.AllEdges()) relation.emplace_back(e.tail, e.head);
  binary::VertexPathSet B =
      binary::VertexPathSet::FromBinaryRelation(relation);

  size_t ternary_paths = 0, binary_paths = 0;
  for (auto _ : state) {
    auto t = ConcatenativeJoin(E, E);
    auto b = binary::Join(B, B);
    ternary_paths = t->size();
    binary_paths = b.size();
    benchmark::DoNotOptimize(t);
    benchmark::DoNotOptimize(b);
  }
  state.counters["ternary_paths"] =
      benchmark::Counter(static_cast<double>(ternary_paths));
  state.counters["binary_paths"] =
      benchmark::Counter(static_cast<double>(binary_paths));
  state.counters["collapse_ratio"] = benchmark::Counter(
      binary_paths == 0
          ? 0.0
          : static_cast<double>(ternary_paths) / binary_paths);
}
BENCHMARK(BM_LabelCollapseRatio);

// Storage comparison on equal logical content.
void BM_PayloadFootprint(benchmark::State& state) {
  auto g = MakeErGraph(1000, 4, 3.0);
  PathSet E = PathSet::FromEdges(
      std::vector<Edge>(g.AllEdges().begin(), g.AllEdges().end()));
  auto ternary = ConcatenativeJoin(E, E).value();

  std::vector<std::pair<VertexId, VertexId>> relation;
  for (const Edge& e : g.AllEdges()) relation.emplace_back(e.tail, e.head);
  binary::VertexPathSet B =
      binary::VertexPathSet::FromBinaryRelation(relation);
  auto binary_join = binary::Join(B, B);

  for (auto _ : state) {
    size_t ternary_bytes = 0;
    for (const Path& p : ternary) ternary_bytes += p.length() * sizeof(Edge);
    size_t binary_bytes = binary::PayloadBytes(binary_join);
    benchmark::DoNotOptimize(ternary_bytes);
    benchmark::DoNotOptimize(binary_bytes);
    state.counters["ternary_bytes"] =
        benchmark::Counter(static_cast<double>(ternary_bytes));
    state.counters["binary_bytes"] =
        benchmark::Counter(static_cast<double>(binary_bytes));
  }
}
BENCHMARK(BM_PayloadFootprint);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
