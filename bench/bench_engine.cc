// Experiment E9 (§I/§V): abstraction overhead of the traversal engine. The
// same 2-hop and 3-hop queries executed four ways:
//   * hand-rolled algebra fold        (core/traversal.h Traverse),
//   * algebraic expression evaluation (core/expr.h),
//   * lazy iterator                   (engine/path_iterator.h),
//   * fluent engine                   (engine/traversal_builder.h).
// Expected shape: all within a small constant factor; the iterator wins
// when only a prefix of results is consumed (the Limit rows).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/expr.h"
#include "core/traversal.h"
#include "engine/path_iterator.h"
#include "engine/traversal_builder.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeSocialGraph;

// knows ⋈ created: "projects created by people X knows".
std::vector<EdgePattern> QuerySteps() {
  return {EdgePattern::Labeled(kSocialKnows),
          EdgePattern::Labeled(kSocialCreated)};
}

void BM_AlgebraFold(benchmark::State& state) {
  auto g = MakeSocialGraph(static_cast<uint32_t>(state.range(0)));
  TraversalSpec spec{QuerySteps(), {}};
  size_t paths = 0;
  for (auto _ : state) {
    auto result = Traverse(g, spec);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_AlgebraFold)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_ExpressionEvaluate(benchmark::State& state) {
  auto g = MakeSocialGraph(static_cast<uint32_t>(state.range(0)));
  auto expr = PathExpr::Labeled(kSocialKnows) +
              PathExpr::Labeled(kSocialCreated);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = expr->Evaluate(g);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_ExpressionEvaluate)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_LazyIteratorDrain(benchmark::State& state) {
  auto g = MakeSocialGraph(static_cast<uint32_t>(state.range(0)));
  size_t paths = 0;
  for (auto _ : state) {
    StepPathIterator it(g, QuerySteps());
    paths = 0;
    for (; it.Valid(); it.Next()) ++paths;
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_LazyIteratorDrain)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_FluentEngine(benchmark::State& state) {
  auto g = MakeSocialGraph(static_cast<uint32_t>(state.range(0)));
  size_t paths = 0;
  for (auto _ : state) {
    auto result =
        GraphTraversal(g).V().Out(kSocialKnows).Out(kSocialCreated).Count();
    paths = result.value();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_FluentEngine)->Arg(1000)->Arg(5000)->Arg(20000);

// First-k consumption: the lazy iterator stops after k results; the eager
// engines must materialize everything.
void BM_FirstK_Lazy(benchmark::State& state) {
  auto g = MakeSocialGraph(5000);
  const size_t k = static_cast<size_t>(state.range(0));
  size_t taken = 0;
  for (auto _ : state) {
    StepPathIterator it(g, QuerySteps());
    taken = 0;
    for (; it.Valid() && taken < k; it.Next()) ++taken;
    benchmark::DoNotOptimize(taken);
  }
  state.counters["taken"] = benchmark::Counter(static_cast<double>(taken));
}
BENCHMARK(BM_FirstK_Lazy)->Arg(1)->Arg(10)->Arg(100);

void BM_FirstK_Eager(benchmark::State& state) {
  auto g = MakeSocialGraph(5000);
  const size_t k = static_cast<size_t>(state.range(0));
  TraversalSpec spec{QuerySteps(), {}};
  size_t taken = 0;
  for (auto _ : state) {
    auto result = Traverse(g, spec);
    taken = std::min(k, result->size());
    benchmark::DoNotOptimize(result);
  }
  state.counters["taken"] = benchmark::Counter(static_cast<double>(taken));
}
BENCHMARK(BM_FirstK_Eager)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
