// Experiment E12 (ablation): the chain planner's direction choice. The
// same destination-selective query — all 3-hop paths arriving at one
// vertex — evaluated forward (the naive §III fold) and backward (seeded at
// the selective end). Expected shape: forward cost tracks the complete
// 3-hop path count (grows with |V|·d̄³); backward cost tracks the answer
// size. Source-selective queries show the mirror image, and the planner
// picks the right end on both.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "engine/chain_planner.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

std::vector<EdgePattern> DestinationSelective(VertexId sink) {
  return {EdgePattern::Any(), EdgePattern::Any(), EdgePattern::Into(sink)};
}

std::vector<EdgePattern> SourceSelective(VertexId source) {
  return {EdgePattern::From(source), EdgePattern::Any(), EdgePattern::Any()};
}

void BM_DestSelective_Forward(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 2.0);
  auto steps = DestinationSelective(0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = EvaluateChain(g, steps, ChainDirection::kForward);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_DestSelective_Forward)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_DestSelective_Backward(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 2.0);
  auto steps = DestinationSelective(0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = EvaluateChain(g, steps, ChainDirection::kBackward);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_DestSelective_Backward)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SourceSelective_Forward(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 2.0);
  auto steps = SourceSelective(0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = EvaluateChain(g, steps, ChainDirection::kForward);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_SourceSelective_Forward)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SourceSelective_Backward(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 2.0);
  auto steps = SourceSelective(0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = EvaluateChain(g, steps, ChainDirection::kBackward);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_SourceSelective_Backward)->Arg(1000)->Arg(4000)->Arg(16000);

// The planner end-to-end: extraction + estimation + the chosen direction.
// Compare against the worst direction to see what the plan buys net of
// planning overhead.
void BM_Planned(benchmark::State& state) {
  auto g = MakeErGraph(4000, 4, 2.0);
  const bool dest_selective = state.range(0) != 0;
  auto expr = dest_selective
                  ? PathExpr::AnyEdge() + PathExpr::AnyEdge() +
                        PathExpr::Into(0)
                  : PathExpr::From(0) + PathExpr::AnyEdge() +
                        PathExpr::AnyEdge();
  size_t paths = 0;
  for (auto _ : state) {
    auto result = EvaluatePlanned(*expr, g);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(dest_selective ? "dest_selective" : "source_selective");
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_Planned)->Arg(0)->Arg(1);

// Planning overhead in isolation (estimation only, no evaluation).
void BM_PlanOnly(benchmark::State& state) {
  auto g = MakeErGraph(4000, 4, 2.0);
  auto steps = DestinationSelective(0);
  for (auto _ : state) {
    ChainPlan plan = PlanChain(g, steps);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanOnly);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
