// Experiment E24: the network front door under open-loop load (src/net/).
//
// The E20 open-loop harness, moved across real sockets: issuer threads —
// each owning one QueryClient connection to a loopback QueryServer — offer
// queries at a fixed arrival rate (scheduled on a clock, independent of
// completions, so overload cannot throttle itself), and admitted-query
// latency is measured from the scheduled arrival, queueing delay and the
// whole wire round trip included. Two configurations face the same
// offered load:
//
//   * admission=1 — fail-fast tenant quota (in-flight cap, no queue):
//     overload is shed at the service's front door and ships back over the
//     wire as the truncated-empty degradation (snapshot_version == 0); the
//     p99 of admitted queries should hold near the uncontended p99;
//   * admission=0 — every cap beyond the batch size: the backlog piles
//     into the dispatch queue and every query's latency grows with it.
//
// The load axis is load_x10, tenths of the measured uncontended capacity
// of the full socket path (5 = half load, 10 = saturation, 20 = 2x).
// Acceptance (EXPERIMENTS.md E24): at load_x10=20 with admission on,
// p99_us within 3x of uncontended_p99_us and every shed a well-formed
// degradation — while admission=0 shows the collapse. BM_WireRoundTrip
// isolates the codec cost so the open-loop numbers can be read as
// serving overhead, not serialization overhead.
//
// Run: build/bench/bench_net --benchmark_min_time=0.5 [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E24).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "graph/multi_graph.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "service/snapshot_registry.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/thread_pool.h"

namespace mrpa {
namespace {

using service::QueryService;
using service::SnapshotRegistry;
using service::TenantQuota;

inline size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
const size_t kPoolThreads = HardwareThreads();
const size_t kInFlightCap = std::max<size_t>(1, kPoolThreads / 2);
// Each issuer is one connection; they spend their lives asleep or blocked
// on a socket, so a handful per hardware thread keeps the schedule honest.
const size_t kIssuers = std::max<size_t>(8, 2 * kPoolThreads);
constexpr size_t kBatch = 500;

storage::SnapshotUniverse LoadSnapshot(const MultiRelationalGraph& graph) {
  auto bytes = storage::SnapshotWriter().Serialize(graph);
  auto universe = storage::SnapshotReader().FromBuffer(std::move(*bytes));
  return std::move(*universe);
}

net::WireRequest MakeRequest() {
  net::WireRequest request;
  request.tenant = "load";
  request.mode = net::AnswerMode::kPaths;
  request.steps = {EdgePattern::Any(), EdgePattern::Any()};
  request.limits.max_steps = 4000;
  request.limits.max_paths = 512;
  return request;
}

struct LoadOutcome {
  std::vector<double> admitted_us;
  size_t shed = 0;
  size_t errors = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(std::min<double>(
      values.size() - 1, std::ceil(p * values.size()) - 1));
  return values[idx];
}

LoadOutcome RunOpenLoop(uint16_t port, double offered_qps, size_t n) {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration<double>(1.0 / offered_qps);
  const net::WireRequest prototype = MakeRequest();

  std::atomic<size_t> next{0};
  std::vector<double> latency_us(n, 0);
  std::vector<uint8_t> kind(n, 0);  // 0 = admitted, 1 = shed, 2 = error
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(2);

  auto issuer = [&] {
    // One connection per issuer, reused across its whole slice of the
    // schedule — the client reconnects by itself if the server drops it.
    net::QueryClient::Options client_options;
    client_options.retry.max_attempts = 1;  // Sheds must return instantly.
    net::QueryClient client("127.0.0.1", port, client_options);
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const Clock::time_point arrival =
          start + std::chrono::duration_cast<Clock::duration>(interval * i);
      std::this_thread::sleep_until(arrival);
      auto response = client.Execute(prototype);
      const Clock::time_point done = Clock::now();
      if (!response.ok() || !response->outcome.ok()) {
        kind[i] = 2;
      } else if (response->snapshot_version == 0) {
        kind[i] = 1;  // Shed at the front door, shipped as a degradation.
      } else {
        latency_us[i] =
            std::chrono::duration<double, std::micro>(done - arrival)
                .count();
      }
    }
  };

  std::vector<std::thread> issuers;
  issuers.reserve(kIssuers);
  for (size_t t = 0; t < kIssuers; ++t) issuers.emplace_back(issuer);
  for (std::thread& t : issuers) t.join();

  LoadOutcome outcome;
  for (size_t i = 0; i < n; ++i) {
    if (kind[i] == 0) {
      outcome.admitted_us.push_back(latency_us[i]);
    } else if (kind[i] == 1) {
      ++outcome.shed;
    } else {
      ++outcome.errors;
    }
  }
  return outcome;
}

// Args: {admission on/off, offered load in tenths of capacity}.
void BM_NetOpenLoop(benchmark::State& state) {
  const bool admission = state.range(0) != 0;
  const double load = static_cast<double>(state.range(1)) / 10.0;

  const MultiRelationalGraph& graph = []() -> const MultiRelationalGraph& {
    static MultiRelationalGraph g = bench::MakeErGraph(256, 3, 4.0, 19);
    return g;
  }();

  SnapshotRegistry registry;
  if (!registry.HotSwap(LoadSnapshot(graph)).ok()) {
    state.SkipWithError("snapshot publish failed");
    return;
  }
  ThreadPool pool(kPoolThreads);

  QueryService::Options options;
  options.pool = &pool;
  options.obs = bench::TraceRegistry();
  options.retry.max_attempts = 1;
  TenantQuota quota;
  if (admission) {
    quota.max_in_flight = kInFlightCap;
    quota.max_queued = 0;  // Fail fast: shed rather than queue.
  } else {
    quota.max_in_flight = kBatch;
    quota.max_queued = kBatch;
    options.admission.global_max_in_flight = kBatch;
    options.admission.global_max_queued = kBatch;
  }
  QueryService service(registry, options);
  if (!service.RegisterTenant("load", quota).ok()) {
    state.SkipWithError("tenant registration failed");
    return;
  }

  net::QueryServer::Options server_options;
  server_options.obs = bench::TraceRegistry();
  server_options.max_connections = kIssuers + 4;
  server_options.max_pending_requests = admission ? 1 : kBatch;
  server_options.dispatch_threads = std::max<size_t>(2, kPoolThreads);
  net::QueryServer server(service, server_options);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  // Uncontended reference over the full socket path: one connection,
  // sequential requests. The mean sets the capacity scale.
  std::vector<double> solo_us;
  {
    net::QueryClient client("127.0.0.1", server.port());
    for (int i = 0; i < 64; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto response = client.Execute(MakeRequest());
      const auto t1 = std::chrono::steady_clock::now();
      if (!response.ok() || !response->outcome.ok()) {
        state.SkipWithError("uncontended query failed");
        server.Shutdown();
        return;
      }
      solo_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  const double solo_mean_us =
      std::accumulate(solo_us.begin(), solo_us.end(), 0.0) / solo_us.size();
  const double capacity_qps = 1e6 / std::max(1.0, solo_mean_us);
  const double offered_qps = load * capacity_qps;

  LoadOutcome outcome;
  for (auto _ : state) {
    outcome = RunOpenLoop(server.port(), offered_qps, kBatch);
  }
  server.Shutdown();

  state.counters["offered_qps"] = offered_qps;
  state.counters["admitted"] = static_cast<double>(outcome.admitted_us.size());
  state.counters["shed_pct"] = 100.0 * static_cast<double>(outcome.shed) /
                               static_cast<double>(kBatch);
  state.counters["errors"] = static_cast<double>(outcome.errors);
  state.counters["p50_us"] = Percentile(outcome.admitted_us, 0.50);
  state.counters["p99_us"] = Percentile(outcome.admitted_us, 0.99);
  state.counters["uncontended_p99_us"] = Percentile(solo_us, 0.99);
}

BENCHMARK(BM_NetOpenLoop)
    ->ArgNames({"admission", "load_x10"})
    ->Args({1, 5})
    ->Args({1, 10})
    ->Args({1, 20})
    ->Args({0, 5})
    ->Args({0, 10})
    ->Args({0, 20})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The codec alone: encode request + extract + decode, then the same for a
// response carrying `paths` one-edge paths — the serialization floor under
// every wire round trip above.
void BM_WireRoundTrip(benchmark::State& state) {
  const size_t paths = static_cast<size_t>(state.range(0));
  net::WireResponse response;
  response.snapshot_version = 3;
  response.attempts = 1;
  response.mode = net::AnswerMode::kPaths;
  {
    std::vector<Path> content;
    for (size_t i = 0; i < paths; ++i) {
      content.emplace_back(std::vector<Edge>{
          Edge(static_cast<VertexId>(i), 0, static_cast<VertexId>(i + 1))});
    }
    response.paths = PathSet(std::move(content));
    response.count = response.paths.size();
    response.exists = paths > 0;
  }
  const net::WireRequest request = MakeRequest();

  size_t bytes = 0;
  for (auto _ : state) {
    auto request_frame = net::EncodeRequestFrame(request);
    auto extracted_request = net::ExtractFrame(*request_frame);
    auto decoded_request = net::DecodeRequestPayload(
        std::span<const uint8_t>(*request_frame)
            .subspan(net::kFrameHeaderBytes,
                     extracted_request.frame_bytes - net::kFrameHeaderBytes));
    benchmark::DoNotOptimize(decoded_request);
    auto response_frame = net::EncodeResponseFrame(response);
    auto extracted_response = net::ExtractFrame(*response_frame);
    auto decoded_response = net::DecodeResponsePayload(
        std::span<const uint8_t>(*response_frame)
            .subspan(net::kFrameHeaderBytes,
                     extracted_response.frame_bytes - net::kFrameHeaderBytes));
    benchmark::DoNotOptimize(decoded_response);
    bytes = request_frame->size() + response_frame->size();
  }
  state.counters["frame_bytes"] = static_cast<double>(bytes);
}

BENCHMARK(BM_WireRoundTrip)
    ->ArgNames({"paths"})
    ->Arg(0)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
