// Experiments E3 and E4 (§III): complete traversal cost vs path length n
// and graph size, and the payoff of restricting the traversal (source /
// destination / labeled) relative to the complete traversal.
//
// Expected shape: complete-traversal cost grows with the joint-path count
// (≈ |V|·d̄ⁿ); source restriction divides it by ≈ |V|/|Vs|; label
// restriction divides it by ≈ |Ω| per restricted step; destination
// restriction alone saves output but not intermediate work (it restricts
// the last step only).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/traversal.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

// E3: complete traversal, sweeping path length n at fixed graph shape.
void BM_CompleteTraversalVsN(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  const size_t n = static_cast<size_t>(state.range(0));
  size_t paths = 0;
  for (auto _ : state) {
    auto result = CompleteTraversal(g, n);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_CompleteTraversalVsN)->DenseRange(1, 4);

// E3: complete traversal, sweeping graph size at fixed n = 3.
void BM_CompleteTraversalVsV(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 2.0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = CompleteTraversal(g, 3);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_CompleteTraversalVsV)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000);

// E4: source restriction — |Vs| sweeps from 1 vertex to all of V.
void BM_SourceTraversal(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  const size_t num_sources = static_cast<size_t>(state.range(0));
  std::vector<VertexId> sources;
  for (size_t v = 0; v < num_sources; ++v) {
    sources.push_back(static_cast<VertexId>(v));
  }
  size_t paths = 0;
  for (auto _ : state) {
    auto result = SourceTraversal(g, sources, 3);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_SourceTraversal)->Arg(1)->Arg(20)->Arg(200)->Arg(2000);

// E4: destination restriction (same sweep for comparison).
void BM_DestinationTraversal(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  const size_t num_destinations = static_cast<size_t>(state.range(0));
  std::vector<VertexId> destinations;
  for (size_t v = 0; v < num_destinations; ++v) {
    destinations.push_back(static_cast<VertexId>(v));
  }
  size_t paths = 0;
  for (auto _ : state) {
    auto result = DestinationTraversal(g, destinations, 3);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_DestinationTraversal)->Arg(1)->Arg(20)->Arg(200)->Arg(2000);

// E4: labeled restriction — 1 of 4 labels per step vs unrestricted.
void BM_LabeledTraversal(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  const bool restricted = state.range(0) != 0;
  std::vector<std::vector<LabelId>> steps;
  for (int k = 0; k < 3; ++k) {
    steps.push_back(restricted ? std::vector<LabelId>{0}
                               : std::vector<LabelId>{});
  }
  size_t paths = 0;
  for (auto _ : state) {
    auto result = LabeledTraversal(g, steps);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
  state.SetLabel(restricted ? "one_label_per_step" : "all_labels");
}
BENCHMARK(BM_LabeledTraversal)->Arg(0)->Arg(1);

// E4 combined: source + destination + label, the fully restricted idiom.
void BM_CombinedRestriction(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  TraversalSpec spec;
  spec.steps = {
      EdgePattern(IdConstraint({0, 1, 2, 3, 4}), IdConstraint::Exactly(0),
                  IdConstraint()),
      EdgePattern::Labeled(1),
      EdgePattern(IdConstraint(), IdConstraint::Exactly(2),
                  IdConstraint({10, 11, 12})),
  };
  size_t paths = 0;
  for (auto _ : state) {
    auto result = Traverse(g, spec);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_CombinedRestriction);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
