// Experiment E8 (§IV-C): the "loss of meaning" comparison. Runs the same
// single-relational algorithms (PageRank, closeness, betweenness) over the
// three §IV-C derivations of one social multi-relational graph:
//   * flatten   — ignore labels (the paper's problematic method 1),
//   * extract   — E_knows only (method 2),
//   * derive    — E_{knows,knows} friend-of-a-friend paths (method 3),
// and reports both runtime and how much the rankings disagree (Spearman
// footrule distance between orderings) — the executable form of the
// paper's argument that the three methods answer different questions.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "algorithms/centrality.h"
#include "bench/bench_common.h"
#include "generators/generators.h"
#include "graph/projection.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeSocialGraph;

BinaryGraph DeriveView(const MultiRelationalGraph& g, int method) {
  switch (method) {
    case 0:
      return FlattenIgnoringLabels(g);
    case 1:
      return ExtractLabelRelation(g, kSocialKnows);
    default:
      return DeriveLabelSequenceRelation(g, {kSocialKnows, kSocialKnows})
          .value();
  }
}

const char* MethodName(int method) {
  switch (method) {
    case 0:
      return "flatten";
    case 1:
      return "extract_knows";
    default:
      return "derive_knows2";
  }
}

// Normalized footrule distance between two rankings in [0, 1].
double FootruleDistance(const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b) {
  std::vector<size_t> pos_a(a.size()), pos_b(b.size());
  for (size_t n = 0; n < a.size(); ++n) pos_a[a[n]] = n;
  for (size_t n = 0; n < b.size(); ++n) pos_b[b[n]] = n;
  double total = 0;
  for (size_t v = 0; v < a.size(); ++v) {
    total += std::abs(static_cast<double>(pos_a[v]) -
                      static_cast<double>(pos_b[v]));
  }
  const double worst = a.size() * a.size() / 2.0;
  return worst == 0 ? 0 : total / worst;
}

void BM_PageRankOverViews(benchmark::State& state) {
  auto g = MakeSocialGraph(1000);
  const int method = static_cast<int>(state.range(0));
  BinaryGraph view = DeriveView(g, method);
  std::vector<double> scores;
  for (auto _ : state) {
    scores = PageRank(view).value();
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(MethodName(method));
  state.counters["arcs"] =
      benchmark::Counter(static_cast<double>(view.num_arcs()));

  // Ranking disagreement vs the flattened view (computed once).
  auto flat_scores = PageRank(DeriveView(g, 0)).value();
  state.counters["footrule_vs_flatten"] = benchmark::Counter(
      FootruleDistance(RankByScore(scores), RankByScore(flat_scores)));
}
BENCHMARK(BM_PageRankOverViews)->Arg(0)->Arg(1)->Arg(2);

void BM_ClosenessOverViews(benchmark::State& state) {
  auto g = MakeSocialGraph(300);  // Closeness is O(V·E): keep V modest.
  const int method = static_cast<int>(state.range(0));
  BinaryGraph view = DeriveView(g, method);
  std::vector<double> scores;
  for (auto _ : state) {
    scores = ClosenessCentrality(view);
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(MethodName(method));
  state.counters["arcs"] =
      benchmark::Counter(static_cast<double>(view.num_arcs()));
}
BENCHMARK(BM_ClosenessOverViews)->Arg(0)->Arg(1)->Arg(2);

void BM_BetweennessOverViews(benchmark::State& state) {
  auto g = MakeSocialGraph(300);
  const int method = static_cast<int>(state.range(0));
  BinaryGraph view = DeriveView(g, method);
  std::vector<double> scores;
  for (auto _ : state) {
    scores = BetweennessCentrality(view);
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(MethodName(method));
  state.counters["arcs"] =
      benchmark::Counter(static_cast<double>(view.num_arcs()));
}
BENCHMARK(BM_BetweennessOverViews)->Arg(0)->Arg(1)->Arg(2);

// End-to-end: derivation + algorithm, the full §IV-C pipeline per method.
void BM_EndToEndPipeline(benchmark::State& state) {
  auto g = MakeSocialGraph(1000);
  const int method = static_cast<int>(state.range(0));
  std::vector<double> scores;
  for (auto _ : state) {
    BinaryGraph view = DeriveView(g, method);
    scores = PageRank(view).value();
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(MethodName(method));
}
BENCHMARK(BM_EndToEndPipeline)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
