// Experiment E19: the snapshot storage engine (src/storage/).
//
// Four questions, all on the deterministic E16-style substrates:
//
//   * build cost  — SnapshotWriter::Serialize vs WriteGraphText (what does
//     the checksummed binary image cost to produce relative to MRG-TSV?);
//   * cold load   — SnapshotReader::ReadFile (owned) and MapFile
//     (zero-copy mmap) vs ReadGraphFile's TSV parse, same graph, same
//     file-system state. Acceptance: snapshot cold load ≥ 5x faster than
//     the TSV parse;
//   * traversal   — governed traversal throughput over the loaded
//     SnapshotUniverse vs the in-memory MultiRelationalGraph. Acceptance:
//     within 10% (the snapshot serves the identical CSR through the same
//     EdgeUniverse virtual surface — see tests/snapshot_differential_test.cc
//     for the byte-identity proof);
//   * validation  — the integrity tax in isolation: FromBuffer over an
//     already-resident image (CRC32C + structural + semantic checks, no
//     I/O).
//
// Run: build/bench/bench_snapshot --benchmark_min_time=1s [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E19).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "core/traversal.h"
#include "graph/io.h"
#include "graph/multi_graph.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace mrpa {
namespace {

// The benchmark substrate, scaled by the |V| argument: heavy-tailed with 4
// relation types, mean degree ~8.
const MultiRelationalGraph& SubstrateGraph(uint32_t num_vertices) {
  static std::vector<std::pair<uint32_t, MultiRelationalGraph>> cache;
  for (auto& [v, g] : cache) {
    if (v == num_vertices) return g;
  }
  cache.emplace_back(num_vertices,
                     bench::MakeBaGraph(num_vertices, 4, 8, /*seed=*/19));
  return cache.back().second;
}

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("mrpa_bench_snapshot_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

// Shared on-disk artifacts per graph size, built once.
struct Artifacts {
  std::string snapshot_path;
  std::string tsv_path;
  std::vector<uint8_t> image;

  Artifacts() = default;
  // Moved-from paths become empty, so only the cached copy removes files.
  Artifacts(Artifacts&&) = default;
  Artifacts& operator=(Artifacts&&) = default;
  ~Artifacts() {
    if (!snapshot_path.empty()) std::remove(snapshot_path.c_str());
    if (!tsv_path.empty()) std::remove(tsv_path.c_str());
  }
};

const Artifacts& ArtifactsFor(uint32_t num_vertices) {
  static std::vector<std::pair<uint32_t, Artifacts>> cache;
  for (auto& [v, a] : cache) {
    if (v == num_vertices) return a;
  }
  const MultiRelationalGraph& g = SubstrateGraph(num_vertices);
  Artifacts a;
  a.snapshot_path = TempPath(std::to_string(num_vertices) + ".mrgs");
  a.tsv_path = TempPath(std::to_string(num_vertices) + ".tsv");
  storage::SnapshotWriter writer;
  a.image = writer.Serialize(g).value();
  if (!writer.WriteFile(g, a.snapshot_path).ok() ||
      !WriteGraphFile(g, a.tsv_path).ok()) {
    std::fprintf(stderr, "bench_snapshot: artifact setup failed\n");
    std::abort();
  }
  cache.emplace_back(num_vertices, std::move(a));
  return cache.back().second;
}

// A governed 3-step labeled chain — the E16 traversal shape.
TraversalSpec ChainSpec() {
  TraversalSpec spec;
  spec.steps = {EdgePattern::Labeled(0), EdgePattern::Labeled(1),
                EdgePattern::Any()};
  return spec;
}

// --- Build: serialize vs TSV write -----------------------------------------

void BM_SnapshotSerialize(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto image = storage::SnapshotWriter().Serialize(g);
    bytes = image->size();
    benchmark::DoNotOptimize(image);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_SnapshotSerialize)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

void BM_TsvWrite(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  const std::string path = TempPath("write_probe.tsv");
  for (auto _ : state) {
    Status status = WriteGraphFile(g, path);
    benchmark::DoNotOptimize(status);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_TsvWrite)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

// --- Cold load: snapshot (owned / mmap) vs TSV parse ------------------------
//
// "Cold" here means process-cold (fresh read + validate per iteration);
// the OS page cache stays warm for every contender equally, so the
// comparison isolates parse/validate cost, not disk latency.

void BM_ColdLoadSnapshotOwned(benchmark::State& state) {
  const Artifacts& a = ArtifactsFor(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto u = storage::SnapshotReader().ReadFile(a.snapshot_path);
    if (!u.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_ColdLoadSnapshotOwned)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

void BM_ColdLoadSnapshotMapped(benchmark::State& state) {
  const Artifacts& a = ArtifactsFor(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto u = storage::SnapshotReader().MapFile(a.snapshot_path);
    if (!u.ok()) state.SkipWithError("map failed");
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_ColdLoadSnapshotMapped)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

void BM_ColdLoadTsvParse(benchmark::State& state) {
  const Artifacts& a = ArtifactsFor(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto g = ReadGraphFile(a.tsv_path);
    if (!g.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ColdLoadTsvParse)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

// Validation tax in isolation: the image is already resident; each
// iteration pays CRC32C + structural + semantic validation only.
void BM_ValidateResidentImage(benchmark::State& state) {
  const Artifacts& a = ArtifactsFor(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<uint8_t> copy = a.image;
    auto u = storage::SnapshotReader().FromBuffer(std::move(copy));
    if (!u.ok()) state.SkipWithError("validate failed");
    benchmark::DoNotOptimize(u);
  }
  state.counters["bytes"] = static_cast<double>(a.image.size());
}
BENCHMARK(BM_ValidateResidentImage)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

// --- Traversal throughput: snapshot vs in-memory ----------------------------

void BM_TraverseInMemory(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  const TraversalSpec spec = ChainSpec();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    auto result = TraverseGoverned(g, spec, ctx);
    paths = result->stats.paths_yielded;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_TraverseInMemory)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

void BM_TraverseSnapshotMapped(benchmark::State& state) {
  const Artifacts& a = ArtifactsFor(static_cast<uint32_t>(state.range(0)));
  auto u = storage::SnapshotReader().MapFile(a.snapshot_path);
  if (!u.ok()) {
    state.SkipWithError("map failed");
    return;
  }
  const TraversalSpec spec = ChainSpec();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    auto result = TraverseGoverned(*u, spec, ctx);
    paths = result->stats.paths_yielded;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_TraverseSnapshotMapped)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
