// Experiment E23: the live-graph delta pipeline (src/delta/).
//
// Three questions on the E16-style heavy-tailed substrate:
//
//   * overlay read overhead — governed traversal over the merge view at
//     0% / 1% / 10% delta fill (half fresh inserts, half tombstones of
//     base edges) vs the bare base graph. Acceptance: 0% fill is
//     passthrough (within noise of the base — the view delegates to the
//     base arrays without copying), and the 1%/10% views stay within a
//     small constant factor (the merged view is the SAME CSR layout, so
//     per-step traversal cost is unchanged; the overhead is paid once at
//     View() time);
//   * view build + compaction throughput — View() materialization cost at
//     each fill, and the full mutate→seal→compact pipeline (merge +
//     serialize + fail-closed validation) in edges/second;
//   * swap latency — SnapshotRegistry::HotSwap of a compacted image,
//     manual-timed so the per-iteration image load stays off the clock.
//
// Run: build/bench/bench_delta --benchmark_min_time=1s [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E23).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "core/traversal.h"
#include "delta/compactor.h"
#include "delta/delta_overlay.h"
#include "graph/multi_graph.h"
#include "service/snapshot_registry.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "util/status.h"

namespace mrpa {
namespace {

using delta::Compactor;
using delta::CompactorOptions;
using delta::DeltaOverlay;
using delta::OverlayUniverse;

const MultiRelationalGraph& SubstrateGraph(uint32_t num_vertices) {
  static std::vector<std::pair<uint32_t, MultiRelationalGraph>> cache;
  for (auto& [v, g] : cache) {
    if (v == num_vertices) return g;
  }
  cache.emplace_back(num_vertices,
                     bench::MakeBaGraph(num_vertices, 4, 8, /*seed=*/23));
  return cache.back().second;
}

// Fills the overlay to `fill_percent` of the base edge count — half fresh
// inserts, half tombstones of existing base edges — and seals one
// generation. Returns the number of mutations applied.
size_t Churn(const MultiRelationalGraph& base, DeltaOverlay& overlay,
             int64_t fill_percent, uint64_t seed) {
  const size_t target = base.num_edges() * static_cast<size_t>(fill_percent) /
                        100;
  Rng rng(seed);
  auto all = base.AllEdges();
  size_t applied = 0;
  while (applied < target) {
    if ((applied & 1) == 0) {
      Edge e(static_cast<VertexId>(rng.Below(base.num_vertices())),
             static_cast<LabelId>(rng.Below(base.num_labels())),
             static_cast<VertexId>(rng.Below(base.num_vertices())));
      if (overlay.AddEdge(base, e).ok()) ++applied;
    } else {
      const Edge& e = all[rng.Below(all.size())];
      if (overlay.RemoveEdge(base, e).ok()) ++applied;
    }
  }
  overlay.Seal();
  return applied;
}

// A governed 3-step labeled chain — the E16/E19 traversal shape.
TraversalSpec ChainSpec() {
  TraversalSpec spec;
  spec.steps = {EdgePattern::Labeled(0), EdgePattern::Labeled(1),
                EdgePattern::Any()};
  return spec;
}

// --- Overlay read overhead ---------------------------------------------------

void BM_TraverseBase(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  const TraversalSpec spec = ChainSpec();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    auto result = TraverseGoverned(g, spec, ctx);
    paths = result->stats.paths_yielded;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_TraverseBase)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

void BM_TraverseOverlayView(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  DeltaOverlay overlay;
  const size_t churn = Churn(g, overlay, state.range(1), /*seed=*/31);
  auto view = overlay.View(g);
  if (!view.ok()) {
    state.SkipWithError("view failed");
    return;
  }
  const TraversalSpec spec = ChainSpec();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    auto result = TraverseGoverned(*view, spec, ctx);
    paths = result->stats.paths_yielded;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
  state.counters["delta_ops"] = static_cast<double>(churn);
  state.counters["passthrough"] = view->passthrough() ? 1.0 : 0.0;
}
BENCHMARK(BM_TraverseOverlayView)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({10'000, 10})
    ->Args({50'000, 0})
    ->Args({50'000, 1})
    ->Args({50'000, 10})
    ->ArgNames({"V", "fill_pct"})
    ->Unit(benchmark::kMillisecond);

void BM_OverlayViewBuild(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  DeltaOverlay overlay;
  Churn(g, overlay, state.range(1), /*seed=*/37);
  size_t merged = 0;
  for (auto _ : state) {
    auto view = overlay.View(g);
    if (!view.ok()) state.SkipWithError("view failed");
    merged = view->num_edges();
    benchmark::DoNotOptimize(view);
  }
  state.counters["merged_edges"] = static_cast<double>(merged);
}
BENCHMARK(BM_OverlayViewBuild)
    ->Args({10'000, 0})
    ->Args({10'000, 1})
    ->Args({10'000, 10})
    ->Args({50'000, 1})
    ->Args({50'000, 10})
    ->ArgNames({"V", "fill_pct"})
    ->Unit(benchmark::kMillisecond);

// --- Compaction throughput ---------------------------------------------------
//
// The full pipeline per iteration: mutate to 1% fill, seal, merge, write
// the MRGS image, and run it back through the fail-closed validator
// (validate-only mode — no registry, so the number is pure pipeline cost).
void BM_CompactionPipeline(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  size_t edges = 0;
  uint64_t seed = 41;
  for (auto _ : state) {
    DeltaOverlay overlay;
    Churn(g, overlay, /*fill_percent=*/1, seed++);
    Compactor compactor(/*registry=*/nullptr);
    auto result = compactor.Compact(g, overlay);
    if (!result.ok()) state.SkipWithError("compact failed");
    edges = result->edges;
    benchmark::DoNotOptimize(result);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CompactionPipeline)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->Unit(benchmark::kMillisecond);

// --- Swap latency ------------------------------------------------------------
//
// Manual timing: each iteration loads a fresh SnapshotUniverse off the
// clock, then times HotSwap alone — retire of the previous image, version
// bump, and publication to the lock-free read path.
void BM_HotSwapLatency(benchmark::State& state) {
  const MultiRelationalGraph& g =
      SubstrateGraph(static_cast<uint32_t>(state.range(0)));
  DeltaOverlay overlay;
  Churn(g, overlay, /*fill_percent=*/1, /*seed=*/43);
  CompactorOptions options;
  options.keep_image = true;
  Compactor compactor(/*registry=*/nullptr, options);
  auto compacted = compactor.Compact(g, overlay);
  if (!compacted.ok()) {
    state.SkipWithError("compact failed");
    return;
  }
  service::SnapshotRegistry registry;
  for (auto _ : state) {
    auto universe = storage::SnapshotReader().FromBuffer(compacted->image);
    if (!universe.ok()) state.SkipWithError("load failed");
    const auto start = std::chrono::steady_clock::now();
    auto version = registry.HotSwap(std::move(*universe));
    const auto end = std::chrono::steady_clock::now();
    if (!version.ok()) state.SkipWithError("swap failed");
    benchmark::DoNotOptimize(version);
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
    registry.ReclaimNow();
  }
  state.counters["image_bytes"] =
      static_cast<double>(compacted->image_bytes);
}
// Iterations is pinned: with manual timing the framework would otherwise
// run until the *measured* µs-scale swaps sum to min_time, paying the
// off-clock multi-ms deserialize hundreds of thousands of times (minutes
// of wall clock per arg). 2000 swaps give a stable median and bounded runtime.
BENCHMARK(BM_HotSwapLatency)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"V"})
    ->UseManualTime()
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
