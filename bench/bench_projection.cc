// Experiment E7 (§IV-C): deriving single-relational graphs. Compares the
// three methods' costs:
//   * FlattenIgnoringLabels — O(|E|),
//   * ExtractLabelRelation  — O(|E_α|) via the label index,
//   * DeriveLabelSequenceRelation (E_αβ...) — join-then-project, cost
//     driven by the intermediate joint-path count.
// Sweeps the sequence length k and the graph size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "graph/projection.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeBaGraph;
using mrpa::bench::MakeErGraph;

void BM_Flatten(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 3.0);
  size_t arcs = 0;
  for (auto _ : state) {
    BinaryGraph flat = FlattenIgnoringLabels(g);
    arcs = flat.num_arcs();
    benchmark::DoNotOptimize(flat);
  }
  state.counters["arcs"] = benchmark::Counter(static_cast<double>(arcs));
}
BENCHMARK(BM_Flatten)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExtractLabel(benchmark::State& state) {
  auto g = MakeErGraph(static_cast<uint32_t>(state.range(0)), 4, 3.0);
  size_t arcs = 0;
  for (auto _ : state) {
    BinaryGraph ea = ExtractLabelRelation(g, 0);
    arcs = ea.num_arcs();
    benchmark::DoNotOptimize(ea);
  }
  state.counters["arcs"] = benchmark::Counter(static_cast<double>(arcs));
}
BENCHMARK(BM_ExtractLabel)->Arg(1000)->Arg(10000)->Arg(100000);

// E_{α β ...}: derivation cost vs label-sequence length k.
void BM_DeriveSequence(benchmark::State& state) {
  auto g = MakeErGraph(5000, 4, 3.0);
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<LabelId> labels;
  for (size_t n = 0; n < k; ++n) {
    labels.push_back(static_cast<LabelId>(n % g.num_labels()));
  }
  size_t arcs = 0;
  for (auto _ : state) {
    auto derived = DeriveLabelSequenceRelation(g, labels);
    arcs = derived->num_arcs();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["arcs"] = benchmark::Counter(static_cast<double>(arcs));
}
BENCHMARK(BM_DeriveSequence)->DenseRange(1, 4);

// Derivation on a hub-heavy graph (worst case for join fan-out).
void BM_DeriveSequenceOnHubs(benchmark::State& state) {
  auto g = MakeBaGraph(5000, 4, 3);
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<LabelId> labels;
  for (size_t n = 0; n < k; ++n) {
    labels.push_back(static_cast<LabelId>(n % g.num_labels()));
  }
  size_t arcs = 0;
  for (auto _ : state) {
    auto derived = DeriveLabelSequenceRelation(g, labels);
    arcs = derived->num_arcs();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["arcs"] = benchmark::Counter(static_cast<double>(arcs));
}
BENCHMARK(BM_DeriveSequenceOnHubs)->DenseRange(1, 3);

// Expression-driven derivation (method 3b): (α ∪ β) ⋈ γ.
void BM_DeriveViaExpression(benchmark::State& state) {
  auto g = MakeErGraph(5000, 4, 3.0);
  auto expr =
      (PathExpr::Labeled(0) | PathExpr::Labeled(1)) + PathExpr::Labeled(2);
  size_t arcs = 0;
  for (auto _ : state) {
    auto derived = DeriveRelation(g, *expr);
    arcs = derived->num_arcs();
    benchmark::DoNotOptimize(derived);
  }
  state.counters["arcs"] = benchmark::Counter(static_cast<double>(arcs));
}
BENCHMARK(BM_DeriveViaExpression);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
