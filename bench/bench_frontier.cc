// Experiment E22: the dense-frontier fast path vs the sparse per-path walk.
//
// Three questions, one per benchmark family:
//
//   * Crossover — where does the dense strategy (per-level allow-set built
//     once by the SIMD kernels, replayed per path) overtake the sparse
//     per-path pattern walk, as the frontier widens with depth? Forced
//     modes give the two pure curves; kAuto must track the winner on both
//     sides of the crossing.
//   * Projection — §IV-C derivation by bitmap reachability (never touches a
//     PathArena) vs the path-enumeration route it replaced.
//   * Kernel tiers — the same dense workload with dispatch pinned to the
//     scalar fallback, isolating the SIMD speedup from the strategy change.
//
// All three run on heavy-tailed substrates: hubs concentrate frontier heads
// onto few distinct vertices, which is exactly the reuse the per-vertex
// memoization exploits (and what the auto policy's reuse test detects).
//
// Run: build/bench/bench_frontier --benchmark_min_time=1s [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E22). Acceptance: forced-dense
// ≥ 2x forced-sparse on the wide-frontier points, and kAuto within noise
// of forced-sparse on the narrow points (no regression where dense loses).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "core/traversal.h"
#include "engine/chain_planner.h"
#include "frontier/bitmap.h"
#include "frontier/kernels.h"
#include "frontier/policy.h"
#include "graph/multi_graph.h"
#include "graph/projection.h"
#include "obs/obs.h"
#include "util/exec_context.h"

namespace mrpa {
namespace {

using frontier::DensityMode;
using frontier::DensityPolicy;
using frontier::SimdTier;

DensityPolicy PolicyForMode(int64_t mode) {
  DensityPolicy policy;
  switch (mode) {
    case 0: policy.mode = DensityMode::kForceSparse; break;
    case 1: policy.mode = DensityMode::kForceDense; break;
    default: policy.mode = DensityMode::kAuto; break;
  }
  return policy;
}

// Hub-heavy substrate: ≈ 60k edges, 3 labels. Preferential attachment
// keeps the head-reuse ratio high at every depth.
const MultiRelationalGraph& HubGraph() {
  static const MultiRelationalGraph* graph =
      new MultiRelationalGraph(bench::MakeBaGraph(20'000, 3, 3, /*seed=*/42));
  return *graph;
}

// Set-valued constraints on every step, sized like the §III vertex sets
// (Vd is a set of thousands of vertices, not a handful): a two-label Ωe
// set plus a |V|/4-id negated head set. The sparse walk pays a binary
// search over the id set PER CANDIDATE EDGE PER PATH; the dense mode
// lowers the whole constraint to a bitmap once per level and tests one
// bit per edge per DISTINCT head vertex. This is the workload class the
// fast path exists for.
TraversalSpec CrossoverSpec(const MultiRelationalGraph& graph, size_t depth) {
  const uint32_t n = graph.num_vertices();
  TraversalSpec spec;
  spec.steps.push_back(EdgePattern::Labeled(0));
  for (size_t k = 1; k < depth; ++k) {
    std::vector<uint32_t> blocked;
    for (uint32_t v = static_cast<uint32_t>(k % 4); v < n; v += 4) {
      blocked.push_back(v);
    }
    spec.steps.push_back(EdgePattern(
        IdConstraint(), IdConstraint({0, 1}),
        IdConstraint(std::move(blocked), /*negated=*/true)));
  }
  return spec;
}

// E22a: the crossover curve. depth sweeps the frontier from hundreds of
// paths (sparse territory) to hundreds of thousands (dense territory);
// mode ∈ {0: forced sparse, 1: forced dense, 2: auto}.
void BM_DenseCrossover(benchmark::State& state) {
  const MultiRelationalGraph& graph = HubGraph();
  TraversalSpec spec =
      CrossoverSpec(graph, static_cast<size_t>(state.range(0)));
  spec.density = PolicyForMode(state.range(1));
  uint64_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    Result<GovernedPathSet> result = TraverseGoverned(graph, spec, ctx);
    paths = result.ok() ? result->paths.size() : 0;
    benchmark::DoNotOptimize(result);
  }
  // One instrumented run outside the timed loop: which strategy did each
  // level actually pick (the kAuto rows' decision trace)?
  obs::ObsRegistry reg;
  ExecContext ctx;
  ctx.AttachObs(&reg);
  benchmark::DoNotOptimize(TraverseGoverned(graph, spec, ctx));
  state.counters["paths"] = static_cast<double>(paths);
  state.counters["dense_levels"] = static_cast<double>(
      reg.Value(obs::Metric::kFrontierDenseLevels));
  state.counters["sparse_levels"] = static_cast<double>(
      reg.Value(obs::Metric::kFrontierSparseLevels));
  state.SetItemsProcessed(static_cast<int64_t>(paths) * state.iterations());
}
BENCHMARK(BM_DenseCrossover)
    ->ArgsProduct({{2, 3, 4, 5}, {0, 1, 2}})
    ->ArgNames({"depth", "mode"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// E22a': the same sweep through the backward evaluator (suffix-chained
// arena, in-index dense replay).
void BM_BackwardCrossover(benchmark::State& state) {
  const MultiRelationalGraph& graph = HubGraph();
  const TraversalSpec spec =
      CrossoverSpec(graph, static_cast<size_t>(state.range(0)));
  const DensityPolicy policy = PolicyForMode(state.range(1));
  uint64_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    Result<GovernedPathSet> result =
        EvaluateChainGoverned(graph, spec.steps, ChainDirection::kBackward,
                              ctx, /*limits=*/{}, policy);
    paths = result.ok() ? result->paths.size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = static_cast<double>(paths);
  state.SetItemsProcessed(static_cast<int64_t>(paths) * state.iterations());
}
BENCHMARK(BM_BackwardCrossover)
    ->ArgsProduct({{2, 3, 4}, {0, 1, 2}})
    ->ArgNames({"depth", "mode"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// E22b: §IV-C projection throughput. The reachability fast path visits each
// (vertex, level) once per source; the enumeration route walks every joint
// path. `length` is the label-sequence length.
const MultiRelationalGraph& ProjectionGraph() {
  static const MultiRelationalGraph* graph = new MultiRelationalGraph(
      bench::MakeErGraph(4'000, 3, 8.0, /*seed=*/42));
  return *graph;
}

std::vector<LabelId> ProjectionLabels(size_t length) {
  std::vector<LabelId> labels;
  for (size_t i = 0; i < length; ++i) {
    labels.push_back(static_cast<LabelId>(i % 2));
  }
  return labels;
}

void BM_ProjectionReachability(benchmark::State& state) {
  const MultiRelationalGraph& graph = ProjectionGraph();
  const std::vector<LabelId> labels =
      ProjectionLabels(static_cast<size_t>(state.range(0)));
  uint64_t arcs = 0;
  for (auto _ : state) {
    Result<BinaryGraph> rel = DeriveLabelSequenceRelation(graph, labels);
    arcs = rel.ok() ? rel->num_arcs() : 0;
    benchmark::DoNotOptimize(rel);
  }
  state.counters["arcs"] = static_cast<double>(arcs);
  state.SetItemsProcessed(static_cast<int64_t>(arcs) * state.iterations());
}
BENCHMARK(BM_ProjectionReachability)
    ->Arg(2)->Arg(3)->Arg(4)
    ->ArgNames({"length"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ProjectionEnumeration(benchmark::State& state) {
  const MultiRelationalGraph& graph = ProjectionGraph();
  const std::vector<LabelId> labels =
      ProjectionLabels(static_cast<size_t>(state.range(0)));
  std::vector<std::vector<LabelId>> steps;
  for (LabelId l : labels) steps.push_back({l});
  uint64_t arcs = 0;
  for (auto _ : state) {
    Result<PathSet> paths = LabeledTraversal(graph, steps);
    BinaryGraph rel = ProjectPaths(paths.value(), graph.num_vertices());
    arcs = rel.num_arcs();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["arcs"] = static_cast<double>(arcs);
  state.SetItemsProcessed(static_cast<int64_t>(arcs) * state.iterations());
}
BENCHMARK(BM_ProjectionEnumeration)
    ->Arg(2)->Arg(3)->Arg(4)
    ->ArgNames({"length"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// E22c: the kernel-tier ratio. The forced-dense crossover workload with
// dispatch pinned to the scalar fallback vs the CPU's best tier — the SIMD
// contribution isolated from the strategy change. tier ∈ {0: native,
// 1: forced scalar}.
void BM_KernelTier(benchmark::State& state) {
  const MultiRelationalGraph& graph = HubGraph();
  TraversalSpec spec = CrossoverSpec(graph, 4);
  spec.density = PolicyForMode(1);  // Forced dense: kernels on every level.
  if (state.range(0) == 1) {
    frontier::ForceTierForTesting(SimdTier::kScalar);
  }
  uint64_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    Result<GovernedPathSet> result = TraverseGoverned(graph, spec, ctx);
    paths = result.ok() ? result->paths.size() : 0;
    benchmark::DoNotOptimize(result);
  }
  frontier::ForceTierForTesting(std::nullopt);
  state.counters["paths"] = static_cast<double>(paths);
  state.SetItemsProcessed(static_cast<int64_t>(paths) * state.iterations());
}
BENCHMARK(BM_KernelTier)
    ->Arg(0)->Arg(1)
    ->ArgNames({"forced_scalar"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// E22c': the kernels in isolation, where run length is not bounded by the
// graph's out-degree. End-to-end the tiers tie (mean out-run ≈ 3 edges, so
// per-call setup cancels the vector win); this is the per-kernel ratio on
// the long runs the backward cache ctor and the projection sweep actually
// feed them. kernel ∈ {0: filter_edges over the full 60k-edge run,
// 1: bitmap AND+popcount over 1M-bit frontiers}.
void BM_KernelMicro(benchmark::State& state) {
  const MultiRelationalGraph& graph = HubGraph();
  if (state.range(1) == 1) {
    frontier::ForceTierForTesting(SimdTier::kScalar);
  }
  const frontier::Kernels& k = frontier::Active();
  uint64_t processed = 0;
  if (state.range(0) == 0) {
    const std::span<const Edge> all = graph.AllEdges();
    frontier::BitmapFrontier label_bits(graph.num_labels());
    label_bits.Set(0);
    label_bits.Set(1);
    frontier::BitmapFrontier head_bits(graph.num_vertices());
    head_bits.SetAll();
    for (uint32_t v = 1; v < graph.num_vertices(); v += 4) head_bits.Clear(v);
    std::vector<uint32_t> out(all.size());
    for (auto _ : state) {
      const size_t matched =
          k.filter_edges(all.data(), all.size(), nullptr, label_bits.words(),
                         head_bits.words(), out.data());
      benchmark::DoNotOptimize(matched);
      processed += all.size();
    }
  } else {
    constexpr uint32_t kBits = 1u << 20;
    frontier::BitmapFrontier a(kBits);
    frontier::BitmapFrontier b(kBits);
    for (uint32_t i = 0; i < kBits; i += 3) a.Set(i);
    for (uint32_t i = 0; i < kBits; i += 5) b.Set(i);
    for (auto _ : state) {
      k.bitmap_and(a.words(), b.words(), a.num_words());
      const uint64_t count = k.bitmap_popcount(a.words(), a.num_words());
      benchmark::DoNotOptimize(count);
      processed += kBits;
    }
  }
  frontier::ForceTierForTesting(std::nullopt);
  state.SetItemsProcessed(static_cast<int64_t>(processed));
}
BENCHMARK(BM_KernelMicro)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"kernel", "forced_scalar"})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
