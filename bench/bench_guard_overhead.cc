// Experiment E15: the price of execution governance on the hot traversal
// loop. The claim under test: an attached-but-unlimited ExecContext (and
// the disarmed fault-injector probe inside it) costs < 2% over a hand-
// rolled ungoverned fold, so governance can stay on by default.
//
// Three angles:
//   * the materializing fold — hand-rolled ungoverned loop vs
//     TraverseGoverned under an unlimited context;
//   * the lazy iterator — StepPathIterator with null vs unlimited context;
//   * the raw check — ns per CheckStep/ChargeBytes call, and the same with
//     a disarmed vs armed-elsewhere fault injector.

#include <benchmark/benchmark.h>

#include <limits>

#include "bench/bench_common.h"
#include "core/traversal.h"
#include "engine/path_iterator.h"
#include "obs/obs.h"
#include "util/exec_context.h"
#include "util/fault_injector.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

constexpr size_t kSteps = 3;

std::vector<EdgePattern> AnySteps() {
  return std::vector<EdgePattern>(kSteps, EdgePattern::Any());
}

// The pre-governance fold, reproduced guard-free: the baseline the <2%
// claim is measured against. It keeps the max_paths hard-limit check the
// fold always had (that cost predates governance and is not attributed to
// it) but carries no ExecContext.
PathSet UngovernedFold(const EdgeUniverse& universe,
                       const std::vector<EdgePattern>& steps) {
  constexpr size_t kHardLimit = std::numeric_limits<size_t>::max();
  Status overflow;
  PathSetBuilder builder;
  for (const Edge& e : CollectMatchingEdges(universe, steps.front())) {
    builder.Add(Path(e));
  }
  PathSet acc = builder.Build();
  for (size_t k = 1; k < steps.size() && !acc.empty(); ++k) {
    for (const Path& p : acc) {
      ForEachMatchingOutEdge(universe, p.Head(), steps[k],
                             [&](const Edge& e) {
                               if (!overflow.ok()) return;
                               if (builder.staged_size() >= kHardLimit) {
                                 overflow = Status::ResourceExhausted("cap");
                                 return;
                               }
                               Path extended = p;
                               extended.Append(e);
                               builder.Add(std::move(extended));
                             });
    }
    acc = builder.Build();
  }
  return acc;
}

void BM_FoldUngoverned(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  auto steps = AnySteps();
  size_t paths = 0;
  for (auto _ : state) {
    PathSet result = UngovernedFold(g, steps);
    paths = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_FoldUngoverned);

void BM_FoldGovernedUnlimited(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  auto steps = AnySteps();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    auto result = TraverseGoverned(g, {steps, {}}, ctx);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_FoldGovernedUnlimited);

// The enabled-mode cost: same fold with an ObsRegistry always attached.
// The gap to BM_FoldGovernedUnlimited is what a traversal pays for live
// counters and spans; the gap between BM_FoldGovernedUnlimited and
// BM_FoldUngoverned is the disabled-mode (≤2%) claim E18 records.
void BM_FoldGovernedObserved(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  auto steps = AnySteps();
  obs::ObsRegistry registry;
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(&registry);
    auto result = TraverseGoverned(g, {steps, {}}, ctx);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_FoldGovernedObserved);

void BM_IteratorUngoverned(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  auto steps = AnySteps();
  size_t paths = 0;
  for (auto _ : state) {
    StepPathIterator it(g, steps);
    paths = 0;
    for (; it.Valid(); it.Next()) ++paths;
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_IteratorUngoverned);

void BM_IteratorGovernedUnlimited(benchmark::State& state) {
  auto g = MakeErGraph(2000, 4, 2.0);
  auto steps = AnySteps();
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx;
    ctx.AttachObs(bench::TraceRegistry());
    StepPathIterator it(g, steps, &ctx);
    paths = 0;
    for (; it.Valid(); it.Next()) ++paths;
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_IteratorGovernedUnlimited);

// Raw per-check cost: the add + compare on the hot path, amortizing the
// strided deadline poll.
void BM_CheckStep(benchmark::State& state) {
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.CheckStep());
  }
}
BENCHMARK(BM_CheckStep);

void BM_ChargeBytes(benchmark::State& state) {
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ChargeBytes(64));
  }
}
BENCHMARK(BM_ChargeBytes);

// The disarmed-injector guard is a single relaxed atomic load; arming a
// site the loop never probes shows the locked slow-path cost it avoids.
void BM_CheckStepInjectorArmedElsewhere(benchmark::State& state) {
  FaultInjector::Global().Arm("bench.unrelated_site", 1,
                              Status::IOError("never fires here"));
  ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.CheckStep());
  }
  FaultInjector::Global().Disarm();
}
BENCHMARK(BM_CheckStepInjectorArmedElsewhere);

// A deadline-limited (but generous) context: the poll every kPollStride
// steps adds a clock read per stride.
void BM_CheckStepWithDeadline(benchmark::State& state) {
  ExecContext ctx = ExecContext::WithTimeout(std::chrono::hours(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.CheckStep());
  }
}
BENCHMARK(BM_CheckStepWithDeadline);

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
