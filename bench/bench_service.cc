// Experiment E20: the serving substrate under open-loop load
// (src/service/).
//
// An open-loop generator offers queries to a QueryService at a fixed
// arrival rate — arrivals are scheduled on a clock, independent of
// completions, so overload cannot throttle itself the way a closed loop
// does — and measures the latency of admitted queries from their
// *scheduled arrival* (queueing delay included) plus the shed rate. Two
// configurations face the same offered load:
//
//   * admission=1 — the tenant runs under a fail-fast quota (in-flight cap
//     sized to the pool, no wait queue): overload is shed at the front
//     door as well-formed truncated-empty degradations, and the p99 of
//     what IS admitted stays near the uncontended p99;
//   * admission=0 — every cap is set beyond the batch size, so nothing is
//     ever refused: overload piles onto the evaluation pool and the
//     latency of every query grows with the backlog.
//
// The load axis is load_x10 (offered rate as tenths of the measured
// uncontended capacity): 5 = half load, 10 = saturation, 20 = 2x
// overload. Acceptance (EXPERIMENTS.md E20): at load_x10=20 with
// admission on, p99_us stays within 3x of uncontended_p99_us and every
// rejected request came back as the truncated-partial-result shape —
// while the admission=0 row shows the queueing collapse the controller
// exists to prevent.
//
// Run: build/bench/bench_service --benchmark_min_time=0.5 [--json=FILE]
// Results are recorded in EXPERIMENTS.md (E20).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/edge_pattern.h"
#include "graph/multi_graph.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "service/snapshot_registry.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_universe.h"
#include "storage/snapshot_writer.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace mrpa {
namespace {

using service::QueryRequest;
using service::QueryService;
using service::SnapshotRegistry;
using service::TenantQuota;

// Size the serving side to the machine: an evaluation pool as wide as the
// hardware, and an in-flight cap of half that (each admitted query keeps
// real parallel speedup instead of time-slicing the pool). The issuer pool
// only needs enough threads to keep the arrival schedule honest — issuers
// spend their lives asleep or blocked in Execute.
inline size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
const size_t kPoolThreads = HardwareThreads();
const size_t kInFlightCap = std::max<size_t>(1, kPoolThreads / 2);
const size_t kIssuers = std::max<size_t>(8, 2 * kPoolThreads);
constexpr size_t kBatch = 600;

storage::SnapshotUniverse LoadSnapshot(const MultiRelationalGraph& graph) {
  auto bytes = storage::SnapshotWriter().Serialize(graph);
  auto universe = storage::SnapshotReader().FromBuffer(std::move(*bytes));
  return std::move(*universe);
}

// The per-query workload: a governed two-hop fold with a step budget, so
// one query costs tens of microseconds — large enough to measure, small
// enough that a batch saturates via rate, not via one giant query.
QueryRequest MakeRequest() {
  QueryRequest request;
  request.steps = {EdgePattern::Any(), EdgePattern::Any()};
  request.limits.max_steps = 4000;
  request.limits.max_paths = 512;
  return request;
}

struct LoadOutcome {
  std::vector<double> admitted_us;  // latency from scheduled arrival
  size_t shed = 0;
  size_t errors = 0;
  double elapsed_seconds = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(values.size() - 1,
                       std::ceil(p * values.size()) - 1));
  return values[idx];
}

// Offers `n` queries at `offered_qps` from an issuer pool large enough
// that lateness only sets in when the *service* falls behind; latency is
// measured from the scheduled arrival, so a backlog shows up as queueing
// delay exactly like a real client's timeout clock.
LoadOutcome RunOpenLoop(QueryService& service, double offered_qps,
                        size_t n) {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration<double>(1.0 / offered_qps);
  const QueryRequest prototype = MakeRequest();

  std::atomic<size_t> next{0};
  std::vector<double> latency_us(n, 0);
  std::vector<uint8_t> kind(n, 0);  // 0 = admitted, 1 = shed, 2 = error
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(2);

  auto issuer = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const Clock::time_point arrival =
          start + std::chrono::duration_cast<Clock::duration>(interval * i);
      std::this_thread::sleep_until(arrival);
      QueryRequest request = prototype;
      auto response = service.Execute("load", request);
      const Clock::time_point done = Clock::now();
      if (!response.ok()) {
        kind[i] = 2;
      } else if (response->snapshot_version == 0) {
        kind[i] = 1;  // shed at the front door: truncated-empty degradation
      } else {
        latency_us[i] =
            std::chrono::duration<double, std::micro>(done - arrival)
                .count();
      }
    }
  };

  std::vector<std::thread> issuers;
  issuers.reserve(kIssuers);
  for (size_t t = 0; t < kIssuers; ++t) issuers.emplace_back(issuer);
  for (std::thread& t : issuers) t.join();

  LoadOutcome outcome;
  outcome.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (size_t i = 0; i < n; ++i) {
    if (kind[i] == 0) {
      outcome.admitted_us.push_back(latency_us[i]);
    } else if (kind[i] == 1) {
      ++outcome.shed;
    } else {
      ++outcome.errors;
    }
  }
  return outcome;
}

// Args: {admission on/off, offered load in tenths of capacity}.
void BM_ServiceOpenLoop(benchmark::State& state) {
  const bool admission = state.range(0) != 0;
  const double load = static_cast<double>(state.range(1)) / 10.0;

  const MultiRelationalGraph& graph =
      [] () -> const MultiRelationalGraph& {
        static MultiRelationalGraph g = bench::MakeErGraph(256, 3, 4.0, 19);
        return g;
      }();

  SnapshotRegistry registry;
  if (!registry.HotSwap(LoadSnapshot(graph)).ok()) {
    state.SkipWithError("snapshot publish failed");
    return;
  }
  ThreadPool pool(kPoolThreads);

  QueryService::Options options;
  options.pool = &pool;
  options.obs = bench::TraceRegistry();
  // Sheds must come back instantly as degradations — retry backoff would
  // turn the shed path into a sleep and poison the latency axis.
  options.retry.max_attempts = 1;
  TenantQuota quota;
  if (admission) {
    quota.max_in_flight = kInFlightCap;
    quota.max_queued = 0;  // fail fast: shed rather than queue
  } else {
    quota.max_in_flight = kBatch;
    quota.max_queued = kBatch;
    options.admission.global_max_in_flight = kBatch;
    options.admission.global_max_queued = kBatch;
  }
  QueryService service(registry, options);
  if (!service.RegisterTenant("load", quota).ok()) {
    state.SkipWithError("tenant registration failed");
    return;
  }

  // Uncontended reference: sequential queries, no competing load. The mean
  // sets the capacity scale; the p99 is the acceptance baseline.
  std::vector<double> solo_us;
  for (int i = 0; i < 64; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto response = service.Execute("load", MakeRequest());
    const auto t1 = std::chrono::steady_clock::now();
    if (!response.ok()) {
      state.SkipWithError("uncontended query failed");
      return;
    }
    solo_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double solo_mean_us =
      std::accumulate(solo_us.begin(), solo_us.end(), 0.0) / solo_us.size();
  const double capacity_qps = 1e6 / std::max(1.0, solo_mean_us);
  const double offered_qps = load * capacity_qps;

  LoadOutcome outcome;
  for (auto _ : state) {
    outcome = RunOpenLoop(service, offered_qps, kBatch);
  }

  const size_t n = kBatch;
  state.counters["offered_qps"] = offered_qps;
  state.counters["admitted"] =
      static_cast<double>(outcome.admitted_us.size());
  state.counters["shed_pct"] = 100.0 * static_cast<double>(outcome.shed) /
                               static_cast<double>(n);
  state.counters["errors"] = static_cast<double>(outcome.errors);
  state.counters["p50_us"] = Percentile(outcome.admitted_us, 0.50);
  state.counters["p99_us"] = Percentile(outcome.admitted_us, 0.99);
  state.counters["uncontended_p99_us"] = Percentile(solo_us, 0.99);
}

BENCHMARK(BM_ServiceOpenLoop)
    ->ArgNames({"admission", "load_x10"})
    ->Args({1, 5})
    ->Args({1, 10})
    ->Args({1, 20})
    ->Args({0, 5})
    ->Args({0, 10})
    ->Args({0, 20})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
