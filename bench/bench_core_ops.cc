// Experiment E1 (§II): cost of the core algebra operations as a function of
// path length and path-set size — ◦, σ, γ±, ω′, jointness, ∪, ⋈◦, ×◦.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/path_set.h"
#include "core/traversal.h"
#include "util/random.h"

namespace mrpa {
namespace {

Path RandomJointPath(Rng& rng, size_t length, uint32_t num_vertices,
                     uint32_t num_labels) {
  std::vector<Edge> edges;
  edges.reserve(length);
  VertexId current = static_cast<VertexId>(rng.Below(num_vertices));
  for (size_t n = 0; n < length; ++n) {
    VertexId next = static_cast<VertexId>(rng.Below(num_vertices));
    edges.emplace_back(current, static_cast<LabelId>(rng.Below(num_labels)),
                       next);
    current = next;
  }
  return Path(std::move(edges));
}

PathSet RandomJointPathSet(Rng& rng, size_t count, size_t length,
                           uint32_t num_vertices = 64,
                           uint32_t num_labels = 4) {
  std::vector<Path> paths;
  paths.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    paths.push_back(RandomJointPath(rng, length, num_vertices, num_labels));
  }
  return PathSet(std::move(paths));
}

// ◦: concatenation cost vs path length.
void BM_Concat(benchmark::State& state) {
  Rng rng(1);
  const size_t length = static_cast<size_t>(state.range(0));
  Path a = RandomJointPath(rng, length, 64, 4);
  Path b = RandomJointPath(rng, length, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Concat(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Concat)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// σ / γ− / γ+ / ω: projections are O(1) regardless of length.
void BM_Projections(benchmark::State& state) {
  Rng rng(2);
  Path a = RandomJointPath(rng, static_cast<size_t>(state.range(0)), 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.EdgeAt(a.length() / 2 + 1));
    benchmark::DoNotOptimize(a.Tail());
    benchmark::DoNotOptimize(a.Head());
  }
}
BENCHMARK(BM_Projections)->Arg(4)->Arg(64)->Arg(1024);

// ω′: path label extraction is O(‖a‖).
void BM_PathLabel(benchmark::State& state) {
  Rng rng(3);
  Path a = RandomJointPath(rng, static_cast<size_t>(state.range(0)), 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.PathLabel());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PathLabel)->Arg(4)->Arg(64)->Arg(1024);

// Definition 3 jointness check is O(‖a‖).
void BM_IsJoint(benchmark::State& state) {
  Rng rng(4);
  Path a = RandomJointPath(rng, static_cast<size_t>(state.range(0)), 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IsJoint());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsJoint)->Arg(4)->Arg(64)->Arg(1024);

// ∪ over sets of equal size.
void BM_Union(benchmark::State& state) {
  Rng rng(5);
  const size_t count = static_cast<size_t>(state.range(0));
  PathSet a = RandomJointPathSet(rng, count, 3);
  PathSet b = RandomJointPathSet(rng, count, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(a, b));
  }
  state.SetItemsProcessed(state.iterations() * count * 2);
}
BENCHMARK(BM_Union)->Arg(16)->Arg(256)->Arg(4096);

// ⋈◦ over sets of equal size (16 vertices so joins actually match).
void BM_ConcatenativeJoin(benchmark::State& state) {
  Rng rng(6);
  const size_t count = static_cast<size_t>(state.range(0));
  PathSet a = RandomJointPathSet(rng, count, 2, /*num_vertices=*/16);
  PathSet b = RandomJointPathSet(rng, count, 2, /*num_vertices=*/16);
  size_t output = 0;
  for (auto _ : state) {
    auto joined = ConcatenativeJoin(a, b);
    output = joined->size();
    benchmark::DoNotOptimize(joined);
  }
  state.counters["output_paths"] =
      benchmark::Counter(static_cast<double>(output));
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ConcatenativeJoin)->Arg(16)->Arg(128)->Arg(1024);

// ×◦ over the same inputs (output is |A|·|B|).
void BM_ConcatenativeProduct(benchmark::State& state) {
  Rng rng(6);  // Same seed as the join bench: identical inputs.
  const size_t count = static_cast<size_t>(state.range(0));
  PathSet a = RandomJointPathSet(rng, count, 2, /*num_vertices=*/16);
  PathSet b = RandomJointPathSet(rng, count, 2, /*num_vertices=*/16);
  size_t output = 0;
  for (auto _ : state) {
    auto product = ConcatenativeProduct(a, b);
    output = product->size();
    benchmark::DoNotOptimize(product);
  }
  state.counters["output_paths"] =
      benchmark::Counter(static_cast<double>(output));
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ConcatenativeProduct)->Arg(16)->Arg(128)->Arg(1024);

// Join-power on a real graph edge set: E^n growth.
void BM_JoinPower(benchmark::State& state) {
  auto g = mrpa::bench::MakeErGraph(200, 3, 3.0);
  PathSet E = PathSet::FromEdges(
      std::vector<Edge>(g.AllEdges().begin(), g.AllEdges().end()));
  const size_t n = static_cast<size_t>(state.range(0));
  size_t output = 0;
  for (auto _ : state) {
    auto power = JoinPower(E, n);
    output = power->size();
    benchmark::DoNotOptimize(power);
  }
  state.counters["output_paths"] =
      benchmark::Counter(static_cast<double>(output));
}
BENCHMARK(BM_JoinPower)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
