// Experiment E11 (extension; §IV footnote 6): semiring path analysis vs
// explicit enumeration. Counting corner-to-corner lattice paths pits the
// DP over the automaton×graph product (polynomial) against materializing
// the path set (the count itself is C(2k, k), i.e. exponential in the
// lattice side). Expected shape: enumeration explodes with the lattice
// side; the analyzer's cost grows polynomially, so the gap widens without
// bound — the case for a traversal engine carrying a counting/boolean
// fast path.

#include <benchmark/benchmark.h>

#include <set>

#include "bench/bench_common.h"
#include "core/traversal.h"
#include "regex/path_analysis.h"

namespace mrpa {
namespace {

PathExprPtr CornerToCorner(uint32_t side) {
  const VertexId corner = 0;
  const VertexId opposite = side * side - 1;
  const size_t length = 2 * (side - 1);
  return PathExpr::From(corner) +
         PathExpr::MakePower(PathExpr::AnyEdge(), length - 2) +
         PathExpr::Into(opposite);
}

void BM_CountByEnumeration(benchmark::State& state) {
  const uint32_t side = static_cast<uint32_t>(state.range(0));
  auto lattice = GenerateLattice({.width = side, .height = side});
  const size_t length = 2 * (side - 1);
  size_t count = 0;
  for (auto _ : state) {
    auto paths = SourceDestinationTraversal(
        *lattice, {0}, {side * side - 1}, length);
    count = paths->size();
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(count));
}
BENCHMARK(BM_CountByEnumeration)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_CountByAnalysis(benchmark::State& state) {
  const uint32_t side = static_cast<uint32_t>(state.range(0));
  auto lattice = GenerateLattice({.width = side, .height = side});
  auto analyzer = PathCounter::Compile(*CornerToCorner(side));
  AnalysisOptions options;
  options.max_path_length = 2 * (side - 1) + 2;
  uint64_t count = 0;
  for (auto _ : state) {
    auto result = analyzer->AnalyzePairs(*lattice, options);
    count = result->pairs.empty() ? 0 : result->pairs.begin()->second;
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(count));
}
BENCHMARK(BM_CountByAnalysis)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(16);

// Reachability (boolean semiring) over a labeled constraint on a random
// graph, vs generating and projecting.
void BM_ReachabilityByAnalysis(benchmark::State& state) {
  auto g = mrpa::bench::MakeErGraph(
      static_cast<uint32_t>(state.range(0)), 3, 2.0);
  auto expr = PathExpr::Labeled(0) + PathExpr::MakeStar(PathExpr::Labeled(1)) +
              PathExpr::Labeled(2);
  auto analyzer = PathReachability::Compile(*expr);
  AnalysisOptions options;
  options.max_path_length = 8;
  size_t pairs = 0;
  for (auto _ : state) {
    auto result = analyzer->AnalyzePairs(g, options);
    pairs = result->pairs.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["reachable_pairs"] =
      benchmark::Counter(static_cast<double>(pairs));
}
BENCHMARK(BM_ReachabilityByAnalysis)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ReachabilityByGeneration(benchmark::State& state) {
  auto g = mrpa::bench::MakeErGraph(
      static_cast<uint32_t>(state.range(0)), 3, 2.0);
  auto expr = PathExpr::Labeled(0) + PathExpr::MakeStar(PathExpr::Labeled(1)) +
              PathExpr::Labeled(2);
  EvalOptions options;
  options.max_star_expansion = 6;
  size_t pairs = 0;
  for (auto _ : state) {
    auto paths = expr->Evaluate(g, options);
    std::set<std::pair<VertexId, VertexId>> endpoints;
    for (const Path& p : paths.value()) {
      if (!p.empty()) endpoints.emplace(p.Tail(), p.Head());
    }
    pairs = endpoints.size();
    benchmark::DoNotOptimize(endpoints);
  }
  state.counters["reachable_pairs"] =
      benchmark::Counter(static_cast<double>(pairs));
}
BENCHMARK(BM_ReachabilityByGeneration)->Arg(500)->Arg(2000)->Arg(8000);

// Constrained shortest path (tropical) — no enumeration-based counterpart
// is feasible at this size; reported for the record.
void BM_TropicalShortest(benchmark::State& state) {
  auto g = mrpa::bench::MakeErGraph(2000, 3, 2.0);
  auto expr = PathExpr::Labeled(0) +
              PathExpr::MakeStar(PathExpr::Labeled(1)) +
              PathExpr::Labeled(2);
  auto analyzer = ShortestPathAnalyzer::Compile(*expr);
  AnalysisOptions options;
  options.max_path_length = 10;
  size_t pairs = 0;
  for (auto _ : state) {
    auto result = analyzer->AnalyzePairs(g, options);
    pairs = result->pairs.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = benchmark::Counter(static_cast<double>(pairs));
}
BENCHMARK(BM_TropicalShortest);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
