// Experiment E21: the query compiler. What does the pass pipeline cost at
// compile time, and what does it buy at run time? Three workload shapes on
// deterministic ER graphs:
//
//   * `redundant` — a union of chains sharing a common prefix plus a
//     provably dead branch: simplify, dead-branch elimination, and
//     common-prefix factoring all fire. Optimized evaluation skips the
//     dead work and evaluates the shared prefix once.
//   * `chain` — a pure label chain: the optimizer is a no-op on the tree,
//     but emission picks the traversal direction (cost model or seed
//     heuristic), so optimized-vs-not isolates the EMISSION win.
//   * compile-time benchmarks on both, optimize on and off, to price the
//     pipeline itself (it must stay trivially cheap next to evaluation).
//
// Expected shape: compile cost is microseconds and flat; run speedup on
// `redundant` tracks the share of dead + duplicated work; `chain` shows
// direction sensitivity on skewed graphs.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "compiler/compiler.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;
using mrpa::bench::TraceRegistry;

// (A ⋈ X) ∪ (A ⋈ Y) ∪ (dead ⋈ anything): prefix-factorable, one dead arm.
PathExprPtr RedundantWorkload(uint32_t num_vertices) {
  const PathExprPtr shared = PathExpr::Labeled(0);
  const PathExprPtr left = shared + PathExpr::Labeled(1);
  const PathExprPtr right = shared + PathExpr::Labeled(2);
  // A source vertex beyond the graph: the dead-branch pass proves this arm
  // empty against the universe; without it the evaluator scans for it.
  const PathExprPtr dead =
      PathExpr::From(num_vertices + 1) + PathExpr::AnyEdge();
  return (left | right) | dead;
}

PathExprPtr ChainWorkload() {
  return PathExpr::Labeled(0) + PathExpr::Labeled(1) + PathExpr::Labeled(2);
}

void BM_Compile(benchmark::State& state) {
  auto g = MakeErGraph(4000, 4, 2.0);
  const bool optimize = state.range(0) != 0;
  const PathExprPtr expr = RedundantWorkload(4000);
  CompileOptions options;
  options.optimize = optimize;
  options.registry = TraceRegistry();
  for (auto _ : state) {
    auto query = CompileQuery(expr, g, options);
    benchmark::DoNotOptimize(query);
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
}
BENCHMARK(BM_Compile)->Arg(0)->Arg(1);

void BM_CompileChain(benchmark::State& state) {
  auto g = MakeErGraph(4000, 4, 2.0);
  const bool optimize = state.range(0) != 0;
  const PathExprPtr expr = ChainWorkload();
  CompileOptions options;
  options.optimize = optimize;
  options.registry = TraceRegistry();
  for (auto _ : state) {
    auto query = CompileQuery(expr, g, options);
    benchmark::DoNotOptimize(query);
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
}
BENCHMARK(BM_CompileChain)->Arg(0)->Arg(1);

void BM_RunRedundant(benchmark::State& state) {
  const uint32_t num_vertices = static_cast<uint32_t>(state.range(0));
  auto g = MakeErGraph(num_vertices, 4, 2.0);
  const bool optimize = state.range(1) != 0;
  CompileOptions options;
  options.optimize = optimize;
  options.registry = TraceRegistry();
  auto query = CompileQuery(RedundantWorkload(num_vertices), g, options);
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx(ExecLimits::Unlimited());
    auto result = query->Run(ctx);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_RunRedundant)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1});

void BM_RunChain(benchmark::State& state) {
  const uint32_t num_vertices = static_cast<uint32_t>(state.range(0));
  auto g = MakeErGraph(num_vertices, 4, 2.0);
  const bool optimize = state.range(1) != 0;
  CompileOptions options;
  options.optimize = optimize;
  options.registry = TraceRegistry();
  auto query = CompileQuery(ChainWorkload(), g, options);
  size_t paths = 0;
  for (auto _ : state) {
    ExecContext ctx(ExecLimits::Unlimited());
    auto result = query->Run(ctx);
    paths = result->paths.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(optimize ? "optimized" : "unoptimized");
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_RunChain)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({4000, 0})
    ->Args({4000, 1});

// ExplainPlan rendering: documentation claims it is cheap enough to log on
// every admission-controlled request.
void BM_ExplainPlan(benchmark::State& state) {
  auto g = MakeErGraph(4000, 4, 2.0);
  auto query = CompileQuery(RedundantWorkload(4000), g, {});
  for (auto _ : state) {
    std::string plan = query->ExplainPlan();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExplainPlan);

}  // namespace
}  // namespace mrpa

MRPA_BENCH_MAIN();
