// Experiment E14 (ablation): the dynamic substrate's cost model. Compares
//   * mutation throughput: DynamicMultiGraph::AddEdge vs rebuilding an
//     immutable snapshot per edge,
//   * first-query-after-mutation latency (the lazy rebuild bill) vs the
//     always-fresh OutEdges path,
//   * steady-state query speed dynamic vs frozen.
// Expected shape: per-edge mutation O(deg) vs O(|E| log |E|) rebuilds
// (orders of magnitude apart); OutEdges-based traversals identical on both;
// index-dependent queries pay one rebuild after a burst, then match.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/traversal.h"
#include "graph/dynamic_graph.h"
#include "util/random.h"

namespace mrpa {
namespace {

using mrpa::bench::MakeErGraph;

std::vector<Edge> MutationStream(uint32_t num_vertices, size_t count,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    edges.emplace_back(static_cast<VertexId>(rng.Below(num_vertices)), 0,
                       static_cast<VertexId>(rng.Below(num_vertices)));
  }
  return edges;
}

void BM_MutateDynamic(benchmark::State& state) {
  auto base = MakeErGraph(static_cast<uint32_t>(state.range(0)), 2, 3.0);
  auto stream = MutationStream(base.num_vertices(), 1000, 5);
  for (auto _ : state) {
    DynamicMultiGraph g(base);
    for (const Edge& e : stream) {
      // Toggle: add if absent, remove if present — a steady churn.
      if (!g.AddEdge(e).ok()) {
        benchmark::DoNotOptimize(g.RemoveEdge(e));
      }
    }
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_MutateDynamic)->Arg(1000)->Arg(10000);

void BM_MutateByRebuild(benchmark::State& state) {
  auto base = MakeErGraph(static_cast<uint32_t>(state.range(0)), 2, 3.0);
  // Rebuilding per edge is quadratic; use a 20-edge slice so the bench
  // finishes, and compare per-item rates.
  auto stream = MutationStream(base.num_vertices(), 20, 5);
  for (auto _ : state) {
    MultiGraphBuilder builder;
    for (const Edge& e : base.AllEdges()) builder.AddEdge(e);
    MultiRelationalGraph g = base;
    for (const Edge& e : stream) {
      builder.AddEdge(e);
      g = builder.Build();  // Full snapshot per mutation.
    }
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_MutateByRebuild)->Arg(1000)->Arg(10000);

// First index-dependent query after a mutation burst: pays the rebuild.
void BM_QueryAfterBurst(benchmark::State& state) {
  auto base = MakeErGraph(5000, 2, 3.0);
  auto stream = MutationStream(base.num_vertices(), 100, 9);
  size_t in_degree = 0;
  for (auto _ : state) {
    DynamicMultiGraph g(base);
    for (const Edge& e : stream) benchmark::DoNotOptimize(g.AddEdge(e));
    in_degree = g.InEdgeIndices(0).size();  // Triggers the lazy rebuild.
    benchmark::DoNotOptimize(in_degree);
  }
}
BENCHMARK(BM_QueryAfterBurst);

// Steady-state traversal: dynamic vs frozen on identical content. OutEdges
// never goes stale, so forward traversals skip the rebuild entirely.
void BM_TraverseDynamic(benchmark::State& state) {
  DynamicMultiGraph g(MakeErGraph(5000, 2, 3.0));
  size_t paths = 0;
  for (auto _ : state) {
    auto result = SourceTraversal(g, {0, 1, 2, 3}, 3);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_TraverseDynamic);

void BM_TraverseFrozen(benchmark::State& state) {
  auto g = MakeErGraph(5000, 2, 3.0);
  size_t paths = 0;
  for (auto _ : state) {
    auto result = SourceTraversal(g, {0, 1, 2, 3}, 3);
    paths = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["paths"] = benchmark::Counter(static_cast<double>(paths));
}
BENCHMARK(BM_TraverseFrozen);

}  // namespace
}  // namespace mrpa

BENCHMARK_MAIN();
