// Shared fixtures for the experiment harnesses (see DESIGN.md's experiment
// index and EXPERIMENTS.md for the recorded results).
//
// All benchmarks run on deterministic generated graphs so that re-running
// `build/bench/bench_*` reproduces EXPERIMENTS.md exactly (modulo machine
// speed).

#ifndef MRPA_BENCH_BENCH_COMMON_H_
#define MRPA_BENCH_BENCH_COMMON_H_

#include <cstdint>

#include "generators/generators.h"
#include "graph/multi_graph.h"

namespace mrpa::bench {

// The default experiment substrate: a multi-relational Erdős–Rényi graph
// with mean out-degree `mean_degree` and `num_labels` relation types.
inline MultiRelationalGraph MakeErGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        double mean_degree,
                                        uint64_t seed = 7) {
  auto g = GenerateErdosRenyi(
      {.num_vertices = num_vertices,
       .num_labels = num_labels,
       .num_edges = static_cast<size_t>(num_vertices * mean_degree),
       .seed = seed});
  return std::move(g).value();
}

// A heavy-tailed substrate for hub-sensitive experiments.
inline MultiRelationalGraph MakeBaGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        uint32_t edges_per_vertex,
                                        uint64_t seed = 7) {
  auto g = GenerateBarabasiAlbert({.num_vertices = num_vertices,
                                   .num_labels = num_labels,
                                   .edges_per_vertex = edges_per_vertex,
                                   .seed = seed});
  return std::move(g).value();
}

inline MultiRelationalGraph MakeSocialGraph(uint32_t num_people,
                                            uint64_t seed = 7) {
  auto g = GenerateSocialNetwork({.num_people = num_people,
                                  .num_items = num_people / 2,
                                  .knows_per_person = 3,
                                  .num_likes = num_people * 2,
                                  .seed = seed});
  return std::move(g).value();
}

}  // namespace mrpa::bench

#endif  // MRPA_BENCH_BENCH_COMMON_H_
