// Shared fixtures for the experiment harnesses (see DESIGN.md's experiment
// index and EXPERIMENTS.md for the recorded results).
//
// All benchmarks run on deterministic generated graphs so that re-running
// `build/bench/bench_*` reproduces EXPERIMENTS.md exactly (modulo machine
// speed).

#ifndef MRPA_BENCH_BENCH_COMMON_H_
#define MRPA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "generators/generators.h"
#include "graph/multi_graph.h"

namespace mrpa::bench {

// Entry point used by MRPA_BENCH_MAIN(). Identical to BENCHMARK_MAIN()
// except that the CI shorthand `--json=FILE` is expanded into the library's
// `--benchmark_out=FILE --benchmark_out_format=json` pair, so
// scripts/ci_bench.sh can emit machine-readable BENCH_<n>.json files with
// one uniform flag. All other arguments pass through untouched.
inline int RunBenchmarks(int argc, char** argv) {
  std::vector<std::string> expanded;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + arg.substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else {
      expanded.push_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(expanded.size());
  for (std::string& s : expanded) args.push_back(s.data());
  int translated_argc = static_cast<int>(args.size());
  benchmark::Initialize(&translated_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(translated_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// The default experiment substrate: a multi-relational Erdős–Rényi graph
// with mean out-degree `mean_degree` and `num_labels` relation types.
inline MultiRelationalGraph MakeErGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        double mean_degree,
                                        uint64_t seed = 7) {
  auto g = GenerateErdosRenyi(
      {.num_vertices = num_vertices,
       .num_labels = num_labels,
       .num_edges = static_cast<size_t>(num_vertices * mean_degree),
       .seed = seed});
  return std::move(g).value();
}

// A heavy-tailed substrate for hub-sensitive experiments.
inline MultiRelationalGraph MakeBaGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        uint32_t edges_per_vertex,
                                        uint64_t seed = 7) {
  auto g = GenerateBarabasiAlbert({.num_vertices = num_vertices,
                                   .num_labels = num_labels,
                                   .edges_per_vertex = edges_per_vertex,
                                   .seed = seed});
  return std::move(g).value();
}

inline MultiRelationalGraph MakeSocialGraph(uint32_t num_people,
                                            uint64_t seed = 7) {
  auto g = GenerateSocialNetwork({.num_people = num_people,
                                  .num_items = num_people / 2,
                                  .knows_per_person = 3,
                                  .num_likes = num_people * 2,
                                  .seed = seed});
  return std::move(g).value();
}

}  // namespace mrpa::bench

// Drop-in replacement for BENCHMARK_MAIN() with --json support.
#define MRPA_BENCH_MAIN()                           \
  int main(int argc, char** argv) {                 \
    return ::mrpa::bench::RunBenchmarks(argc, argv); \
  }                                                 \
  static_assert(true, "require a trailing semicolon")

#endif  // MRPA_BENCH_BENCH_COMMON_H_
