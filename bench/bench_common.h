// Shared fixtures for the experiment harnesses (see DESIGN.md's experiment
// index and EXPERIMENTS.md for the recorded results).
//
// All benchmarks run on deterministic generated graphs so that re-running
// `build/bench/bench_*` reproduces EXPERIMENTS.md exactly (modulo machine
// speed).

#ifndef MRPA_BENCH_BENCH_COMMON_H_
#define MRPA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "generators/generators.h"
#include "graph/multi_graph.h"
#include "obs/json_writer.h"
#include "obs/obs.h"

namespace mrpa::bench {

// The registry behind `--trace=FILE`. Null unless the flag was passed —
// governed benchmarks attach it unconditionally (AttachObs(nullptr) is the
// no-op default), so a plain run measures the disabled-mode cost and a
// --trace run emits the span/counter breakdown.
inline obs::ObsRegistry*& TraceRegistrySlot() {
  static obs::ObsRegistry* slot = nullptr;
  return slot;
}
inline obs::ObsRegistry* TraceRegistry() { return TraceRegistrySlot(); }

// Entry point used by MRPA_BENCH_MAIN(). Identical to BENCHMARK_MAIN()
// except for two CI shorthands:
//   * `--json=FILE` expands into the library's `--benchmark_out=FILE
//     --benchmark_out_format=json` pair, so scripts/ci_bench.sh can emit
//     machine-readable BENCH_<n>.json files with one uniform flag;
//   * `--trace=FILE` attaches a process-wide ObsRegistry (see
//     TraceRegistry()) and writes its ToJson() to FILE after the run, so
//     E15–E17 can emit span breakdowns next to their timing JSON.
// All other arguments pass through untouched. FILE paths are escaped with
// the obs JSON writer when embedded in output, never spliced raw.
inline int RunBenchmarks(int argc, char** argv) {
  std::string trace_path;
  std::vector<std::string> expanded;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + arg.substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else {
      expanded.push_back(arg);
    }
  }
  static obs::ObsRegistry trace_registry;
  if (!trace_path.empty()) TraceRegistrySlot() = &trace_registry;
  std::vector<char*> args;
  args.reserve(expanded.size());
  for (std::string& s : expanded) args.push_back(s.data());
  int translated_argc = static_cast<int>(args.size());
  benchmark::Initialize(&translated_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(translated_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) return 1;
    // Wrap the registry dump with the emitting binary's name so a directory
    // of trace files stays self-describing. argv[0] is user-controlled
    // text: quote it through the shared escaper.
    out << "{\"binary\":" << obs::JsonQuote(argc > 0 ? argv[0] : "")
        << ",\"obs\":" << trace_registry.ToJson() << "}\n";
    if (!out.good()) return 1;
  }
  return 0;
}

// The default experiment substrate: a multi-relational Erdős–Rényi graph
// with mean out-degree `mean_degree` and `num_labels` relation types.
inline MultiRelationalGraph MakeErGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        double mean_degree,
                                        uint64_t seed = 7) {
  auto g = GenerateErdosRenyi(
      {.num_vertices = num_vertices,
       .num_labels = num_labels,
       .num_edges = static_cast<size_t>(num_vertices * mean_degree),
       .seed = seed});
  return std::move(g).value();
}

// A heavy-tailed substrate for hub-sensitive experiments.
inline MultiRelationalGraph MakeBaGraph(uint32_t num_vertices,
                                        uint32_t num_labels,
                                        uint32_t edges_per_vertex,
                                        uint64_t seed = 7) {
  auto g = GenerateBarabasiAlbert({.num_vertices = num_vertices,
                                   .num_labels = num_labels,
                                   .edges_per_vertex = edges_per_vertex,
                                   .seed = seed});
  return std::move(g).value();
}

inline MultiRelationalGraph MakeSocialGraph(uint32_t num_people,
                                            uint64_t seed = 7) {
  auto g = GenerateSocialNetwork({.num_people = num_people,
                                  .num_items = num_people / 2,
                                  .knows_per_person = 3,
                                  .num_likes = num_people * 2,
                                  .seed = seed});
  return std::move(g).value();
}

}  // namespace mrpa::bench

// Drop-in replacement for BENCHMARK_MAIN() with --json support.
#define MRPA_BENCH_MAIN()                           \
  int main(int argc, char** argv) {                 \
    return ::mrpa::bench::RunBenchmarks(argc, argv); \
  }                                                 \
  static_assert(true, "require a trailing semicolon")

#endif  // MRPA_BENCH_BENCH_COMMON_H_
